"""repro — reproduction of "Ranking Commercial Machines through Data Transposition".

Piccart, Georges, Blockeel and Eeckhout, IISWC 2011.

The package is organised as a small stack:

* :mod:`repro.stats` and :mod:`repro.ml` — self-contained statistics and
  machine-learning substrates (no SciPy/sklearn dependency at runtime).
* :mod:`repro.simulator` — a mechanistic machine-performance simulator that
  stands in for the published SPEC CPU2006 results the paper uses.
* :mod:`repro.data` — the 117-machine catalogue, the 29 SPEC CPU2006
  benchmark definitions, the performance-matrix container and the
  cross-validation splitters.
* :mod:`repro.core` — the paper's contribution: data transposition with the
  NNᵀ (linear-regression) and MLPᵀ (multi-layer perceptron) predictors plus
  predictive-machine selection.
* :mod:`repro.baselines` — the GA-kNN prior art and naive baselines.
* :mod:`repro.experiments` — one module per paper table/figure.
* :mod:`repro.applications` — the use cases sketched in Section 4.
* :mod:`repro.service` — the online prediction service over the batched
  engine (``repro-serve``), with split-state caching and micro-batching.

``docs/architecture.md`` maps the layers in detail; ``docs/serving.md``
and ``docs/api.md`` cover the serving stack.
"""

from repro.data import SpecDataset, build_default_dataset
from repro.core import (
    DataTransposition,
    LinearTranspositionPredictor,
    MLPTranspositionPredictor,
)

__version__ = "1.0.0"

__all__ = [
    "DataTransposition",
    "LinearTranspositionPredictor",
    "MLPTranspositionPredictor",
    "SpecDataset",
    "build_default_dataset",
    "__version__",
]
