"""Baselines: the GA-kNN prior art and naive purchasing heuristics."""

from repro.baselines.ga_knn import BatchedGAKNN, GAKNNBaseline
from repro.baselines.naive import DomainMeanBaseline, SuiteMeanBaseline
from repro.baselines.proxy import MostSimilarBenchmarkBaseline

__all__ = [
    "BatchedGAKNN",
    "DomainMeanBaseline",
    "GAKNNBaseline",
    "MostSimilarBenchmarkBaseline",
    "SuiteMeanBaseline",
]
