"""GA-kNN — the prior-art baseline of Hoste et al. [4].

The method the paper compares against ("Performance prediction based on
inherent program similarity", PACT 2006):

1. every benchmark and the application of interest are characterised by a
   vector of microarchitecture-independent characteristics (MICA; this
   reproduction uses the simulator's workload characteristics, which play
   the same role — see DESIGN.md);
2. a genetic algorithm learns one non-negative weight per characteristic so
   that weighted distances in the characteristic space predict performance
   differences well — the fitness is the leave-one-out k-NN prediction
   error over the training benchmarks on the machines with published
   scores; and
3. the application's score on a target machine is predicted as the
   distance-weighted average of the scores of its k = 10 nearest benchmarks
   on that machine.

Unlike data transposition, GA-kNN never uses measurements from predictive
machines: it relies purely on workload similarity, which is exactly why it
struggles when the application of interest is an outlier with respect to
the benchmark suite (Section 6.2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.spec_dataset import SpecDataset
from repro.data.splits import MachineSplit
from repro.ml.genetic import GAConfig, GeneticAlgorithm
from repro.ml.preprocessing import StandardScaler

__all__ = ["GAKNNBaseline"]


class GAKNNBaseline:
    """GA-weighted k-nearest-neighbour performance prediction (GA-kNN).

    Parameters
    ----------
    k:
        Number of benchmark neighbours (the paper uses 10).
    ga_config:
        Genetic-algorithm hyper-parameters; the default is sized so that a
        full Table-2 sweep stays laptop-fast while still converging on the
        ~10-gene weight vectors involved.
    seed:
        Seed for the genetic algorithm.
    learn_weights:
        Set to False to skip the GA and use uniform weights (an ablation
        that isolates how much the learned weighting matters).
    """

    def __init__(
        self,
        k: int = 10,
        ga_config: GAConfig | None = None,
        seed: int = 0,
        learn_weights: bool = True,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = int(k)
        self.ga_config = ga_config or GAConfig(population_size=24, generations=12)
        self.seed = int(seed)
        self.learn_weights = bool(learn_weights)
        self.learned_weights_: np.ndarray | None = None

    # ----------------------------------------------------------- internals
    @staticmethod
    def _standardised_features(dataset: SpecDataset, names: Sequence[str]) -> np.ndarray:
        features = dataset.benchmark_feature_matrix(list(names))
        return StandardScaler().fit_transform(features)

    def _knn_predict(
        self,
        query_features: np.ndarray,
        candidate_features: np.ndarray,
        candidate_scores: np.ndarray,
        weights: np.ndarray,
    ) -> np.ndarray:
        """Distance-weighted k-NN prediction of one workload's machine scores.

        ``candidate_scores`` is (candidates x machines); the return value is
        (machines,).
        """
        diff = candidate_features - query_features
        distances = np.sqrt(np.clip((weights * diff**2).sum(axis=1), 0.0, None))
        k = min(self.k, distances.size)
        neighbour_idx = np.argsort(distances, kind="mergesort")[:k]
        neighbour_dist = distances[neighbour_idx]
        if np.any(neighbour_dist == 0.0):
            exact = neighbour_idx[neighbour_dist == 0.0]
            return candidate_scores[exact].mean(axis=0)
        inverse = 1.0 / neighbour_dist
        return (inverse[:, None] * candidate_scores[neighbour_idx]).sum(axis=0) / inverse.sum()

    def _loo_fitness(
        self,
        weights: np.ndarray,
        pairwise_sq: np.ndarray,
        scores: np.ndarray,
        scratch: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> float:
        """Leave-one-out k-NN error of the training benchmarks under *weights*.

        Vectorised over all left-out benchmarks at once: *pairwise_sq* holds
        the precomputed ``(characteristics x benchmarks x benchmarks)``
        squared feature differences, so each GA fitness evaluation is a
        weighted reduction plus one batched k-neighbour selection instead of
        one :meth:`_knn_predict` call per benchmark.  It matches that
        per-benchmark loop (the equivalence suite enforces it): the weighted
        distance accumulates characteristic by characteristic in index
        order, which reproduces the per-row ``(weights * diff**2).sum``
        exactly while the reduction stays below NumPy's pairwise-summation
        block (true for the study's 7 MICA-style characteristics, where the
        GA's evolution trajectory and learned weights are bit-for-bit
        unchanged) and to ~1e-15 relative beyond that; every other
        gather/reduction below preserves the original operation order.
        """
        n_characteristics, n_benchmarks, _ = pairwise_sq.shape
        if scratch is not None:
            distances, term = scratch
        else:
            distances = np.empty((n_benchmarks, n_benchmarks))
            term = np.empty_like(distances)
        np.multiply(pairwise_sq[0], weights[0], out=distances)
        for f in range(1, n_characteristics):
            np.multiply(pairwise_sq[f], weights[f], out=term)
            distances += term
        np.sqrt(distances, out=distances)
        # A benchmark is never its own neighbour candidate.
        np.fill_diagonal(distances, np.inf)
        k = min(self.k, n_benchmarks - 1)
        order = np.argsort(distances, axis=1, kind="mergesort")[:, :k]
        neighbour_dist = distances[np.arange(n_benchmarks)[:, None], order]
        zero_rows = (neighbour_dist == 0.0).any(axis=1)
        inverse = 1.0 / np.where(neighbour_dist == 0.0, 1.0, neighbour_dist)
        predicted = np.einsum("nk,nkm->nm", inverse, scores[order]) / inverse.sum(
            axis=1
        )[:, None]
        for i in np.nonzero(zero_rows)[0]:
            exact = order[i][neighbour_dist[i] == 0.0]
            predicted[i] = scores[exact].mean(axis=0)
        errors = np.ascontiguousarray(np.abs(predicted - scores) / scores)
        return float(errors.mean(axis=1).mean())

    def learn_characteristic_weights(
        self,
        dataset: SpecDataset,
        split: MachineSplit,
        training_benchmarks: Sequence[str],
    ) -> np.ndarray:
        """Run the GA and return the learned per-characteristic weights."""
        features = self._standardised_features(dataset, training_benchmarks)
        train_matrix = dataset.matrix.select_benchmarks(list(training_benchmarks))
        scores = np.ascontiguousarray(
            train_matrix.select_machines(split.target_ids).scores
        )
        pairwise_sq = np.ascontiguousarray(
            ((features[:, None, :] - features[None, :, :]) ** 2).transpose(2, 0, 1)
        )
        n_benchmarks = features.shape[0]
        scratch = (
            np.empty((n_benchmarks, n_benchmarks)),
            np.empty((n_benchmarks, n_benchmarks)),
        )
        ga = GeneticAlgorithm(
            genome_length=features.shape[1],
            fitness=lambda genome: self._loo_fitness(genome, pairwise_sq, scores, scratch),
            config=self.ga_config,
            seed=self.seed,
        )
        best = ga.run()
        # An all-zero genome would make every distance zero; fall back to uniform.
        if not np.any(best > 0):
            best = np.ones_like(best)
        self.learned_weights_ = best
        return best

    # -------------------------------------------------------------- pipeline
    def predict_application_scores(
        self,
        dataset: SpecDataset,
        split: MachineSplit,
        application: str,
        training_benchmarks: Sequence[str],
    ) -> np.ndarray:
        """Predict the application's score on every target machine of *split*."""
        training = [name for name in training_benchmarks if name != application]
        if not training:
            raise ValueError("GA-kNN needs at least one training benchmark")

        if self.learn_weights:
            weights = self.learn_characteristic_weights(dataset, split, training)
        else:
            weights = np.ones(dataset.benchmark_feature_matrix([training[0]]).shape[1])
            self.learned_weights_ = weights

        # Standardise application + training benchmarks in a common space.
        all_names = training + [application]
        features = self._standardised_features(dataset, all_names)
        candidate_features = features[:-1]
        query_features = features[-1]

        train_matrix = dataset.matrix.select_benchmarks(training)
        candidate_scores = train_matrix.select_machines(split.target_ids).scores
        return self._knn_predict(query_features, candidate_features, candidate_scores, weights)
