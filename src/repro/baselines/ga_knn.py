"""GA-kNN — the prior-art baseline of Hoste et al. [4].

The method the paper compares against ("Performance prediction based on
inherent program similarity", PACT 2006):

1. every benchmark and the application of interest are characterised by a
   vector of microarchitecture-independent characteristics (MICA; this
   reproduction uses the simulator's workload characteristics, which play
   the same role — see DESIGN.md);
2. a genetic algorithm learns one non-negative weight per characteristic so
   that weighted distances in the characteristic space predict performance
   differences well — the fitness is the leave-one-out k-NN prediction
   error over the training benchmarks on the machines with published
   scores; and
3. the application's score on a target machine is predicted as the
   distance-weighted average of the scores of its k = 10 nearest benchmarks
   on that machine.

Unlike data transposition, GA-kNN never uses measurements from predictive
machines: it relies purely on workload similarity, which is exactly why it
struggles when the application of interest is an outlier with respect to
the benchmark suite (Section 6.2).

Batched split-level evaluation
------------------------------
:class:`BatchedGAKNN` adds the engine's one-pass-per-split entry point
(:meth:`~BatchedGAKNN.predict_all_applications`).  Every leave-one-out cell
of a split historically ran its own identically-seeded GA over a
28-benchmark working set that differs from its neighbours' by a single row.
The batched path exploits both redundancies:

* the per-cell working sets (standardised features, pairwise squared
  differences, target score tables) are built once per split and stacked
  into shared ``(cells, ...)`` tensors instead of being rebuilt inside
  every GA; and
* the 29 per-cell GAs collapse into one
  :class:`~repro.ml.genetic.LockstepGeneticAlgorithm` whose fitness is a
  single stacked ``(cells x population x benchmarks x benchmarks)`` tensor
  pass per generation, with elite fitnesses deduplicated across
  generations.

Results are **bit-identical** to the sequential per-cell path — the
lockstep GA consumes the same seeded random stream every sequential cell
consumed, and the stacked fitness kernel preserves the sequential
reduction order element for element (``tests/test_batched_gaknn.py`` pins
this across all 17 family splits).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.data.spec_dataset import SpecDataset
from repro.data.splits import MachineSplit
from repro.ml.genetic import GAConfig, GeneticAlgorithm, LockstepGeneticAlgorithm
from repro.ml.preprocessing import StandardScaler

__all__ = ["BatchedGAKNN", "GAKNNBaseline"]


class GAKNNBaseline:
    """GA-weighted k-nearest-neighbour performance prediction (GA-kNN).

    Parameters
    ----------
    k:
        Number of benchmark neighbours (the paper uses 10).
    ga_config:
        Genetic-algorithm hyper-parameters; the default is sized so that a
        full Table-2 sweep stays laptop-fast while still converging on the
        ~10-gene weight vectors involved.
    seed:
        Seed for the genetic algorithm.
    learn_weights:
        Set to False to skip the GA and use uniform weights (an ablation
        that isolates how much the learned weighting matters).
    """

    def __init__(
        self,
        k: int = 10,
        ga_config: GAConfig | None = None,
        seed: int = 0,
        learn_weights: bool = True,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = int(k)
        self.ga_config = ga_config or GAConfig(population_size=24, generations=12)
        self.seed = int(seed)
        self.learn_weights = bool(learn_weights)
        self.learned_weights_: np.ndarray | None = None

    # ----------------------------------------------------------- internals
    @staticmethod
    def _standardised_features(dataset: SpecDataset, names: Sequence[str]) -> np.ndarray:
        features = dataset.benchmark_feature_matrix(list(names))
        return StandardScaler().fit_transform(features)

    def _knn_predict(
        self,
        query_features: np.ndarray,
        candidate_features: np.ndarray,
        candidate_scores: np.ndarray,
        weights: np.ndarray,
    ) -> np.ndarray:
        """Distance-weighted k-NN prediction of one workload's machine scores.

        ``candidate_scores`` is (candidates x machines); the return value is
        (machines,).
        """
        diff = candidate_features - query_features
        distances = np.sqrt(np.clip((weights * diff**2).sum(axis=1), 0.0, None))
        k = min(self.k, distances.size)
        neighbour_idx = np.argsort(distances, kind="mergesort")[:k]
        neighbour_dist = distances[neighbour_idx]
        if np.any(neighbour_dist == 0.0):
            exact = neighbour_idx[neighbour_dist == 0.0]
            return candidate_scores[exact].mean(axis=0)
        inverse = 1.0 / neighbour_dist
        return (inverse[:, None] * candidate_scores[neighbour_idx]).sum(axis=0) / inverse.sum()

    def _loo_fitness(
        self,
        weights: np.ndarray,
        pairwise_sq: np.ndarray,
        scores: np.ndarray,
        scratch: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> float:
        """Leave-one-out k-NN error of the training benchmarks under *weights*.

        Vectorised over all left-out benchmarks at once: *pairwise_sq* holds
        the precomputed ``(characteristics x benchmarks x benchmarks)``
        squared feature differences, so each GA fitness evaluation is a
        weighted reduction plus one batched k-neighbour selection instead of
        one :meth:`_knn_predict` call per benchmark.  It matches that
        per-benchmark loop (the equivalence suite enforces it): the weighted
        distance accumulates characteristic by characteristic in index
        order, which reproduces the per-row ``(weights * diff**2).sum``
        exactly while the reduction stays below NumPy's pairwise-summation
        block (true for the study's 7 MICA-style characteristics, where the
        GA's evolution trajectory and learned weights are bit-for-bit
        unchanged) and to ~1e-15 relative beyond that; every other
        gather/reduction below preserves the original operation order.
        """
        n_characteristics, n_benchmarks, _ = pairwise_sq.shape
        if scratch is not None:
            distances, term = scratch
        else:
            distances = np.empty((n_benchmarks, n_benchmarks))
            term = np.empty_like(distances)
        np.multiply(pairwise_sq[0], weights[0], out=distances)
        for f in range(1, n_characteristics):
            np.multiply(pairwise_sq[f], weights[f], out=term)
            distances += term
        np.sqrt(distances, out=distances)
        # A benchmark is never its own neighbour candidate.
        np.fill_diagonal(distances, np.inf)
        k = min(self.k, n_benchmarks - 1)
        order = np.argsort(distances, axis=1, kind="mergesort")[:, :k]
        neighbour_dist = distances[np.arange(n_benchmarks)[:, None], order]
        zero_rows = (neighbour_dist == 0.0).any(axis=1)
        inverse = 1.0 / np.where(neighbour_dist == 0.0, 1.0, neighbour_dist)
        predicted = np.einsum("nk,nkm->nm", inverse, scores[order]) / inverse.sum(
            axis=1
        )[:, None]
        for i in np.nonzero(zero_rows)[0]:
            exact = order[i][neighbour_dist[i] == 0.0]
            predicted[i] = scores[exact].mean(axis=0)
        errors = np.ascontiguousarray(np.abs(predicted - scores) / scores)
        return float(errors.mean(axis=1).mean())

    def learn_characteristic_weights(
        self,
        dataset: SpecDataset,
        split: MachineSplit,
        training_benchmarks: Sequence[str],
    ) -> np.ndarray:
        """Run the GA and return the learned per-characteristic weights."""
        features = self._standardised_features(dataset, training_benchmarks)
        train_matrix = dataset.matrix.select_benchmarks(list(training_benchmarks))
        scores = np.ascontiguousarray(
            train_matrix.select_machines(split.target_ids).scores
        )
        pairwise_sq = np.ascontiguousarray(
            ((features[:, None, :] - features[None, :, :]) ** 2).transpose(2, 0, 1)
        )
        n_benchmarks = features.shape[0]
        scratch = (
            np.empty((n_benchmarks, n_benchmarks)),
            np.empty((n_benchmarks, n_benchmarks)),
        )
        ga = GeneticAlgorithm(
            genome_length=features.shape[1],
            fitness=lambda genome: self._loo_fitness(genome, pairwise_sq, scores, scratch),
            config=self.ga_config,
            seed=self.seed,
        )
        best = ga.run()
        # An all-zero genome would make every distance zero; fall back to uniform.
        if not np.any(best > 0):
            best = np.ones_like(best)
        self.learned_weights_ = best
        return best

    # -------------------------------------------------------------- pipeline
    def predict_application_scores(
        self,
        dataset: SpecDataset,
        split: MachineSplit,
        application: str,
        training_benchmarks: Sequence[str],
    ) -> np.ndarray:
        """Predict the application's score on every target machine of *split*."""
        training = [name for name in training_benchmarks if name != application]
        if not training:
            raise ValueError("GA-kNN needs at least one training benchmark")

        if self.learn_weights:
            weights = self.learn_characteristic_weights(dataset, split, training)
        else:
            weights = np.ones(dataset.benchmark_feature_matrix([training[0]]).shape[1])
            self.learned_weights_ = weights

        # Standardise application + training benchmarks in a common space.
        all_names = training + [application]
        features = self._standardised_features(dataset, all_names)
        candidate_features = features[:-1]
        query_features = features[-1]

        train_matrix = dataset.matrix.select_benchmarks(training)
        candidate_scores = train_matrix.select_machines(split.target_ids).scores
        return self._knn_predict(query_features, candidate_features, candidate_scores, weights)


class BatchedGAKNN(GAKNNBaseline):
    """GA-kNN with a split-level batched entry point.

    Implements the engine's ``BatchedRankingMethod`` protocol on top of the
    per-cell :class:`GAKNNBaseline`: one call covers every leave-one-out
    application of a split, running all per-cell GAs in lockstep (see the
    module docstring).  Per-cell results are bit-identical to
    :meth:`GAKNNBaseline.predict_application_scores`.

    After a batched call, :attr:`learned_weights_by_application_` maps each
    application to its learned weight vector (:attr:`learned_weights_`
    keeps the last cell's weights for drop-in compatibility).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.learned_weights_by_application_: dict[str, np.ndarray] = {}
        self._fitness_scratch: dict[tuple, np.ndarray] = {}

    # ----------------------------------------------------- stacked fitness
    def _population_loo_fitness(
        self,
        genomes: np.ndarray,
        pairwise_sq: np.ndarray,
        scores: np.ndarray,
    ) -> np.ndarray:
        """Stacked leave-one-out fitness of ``(cells, pop, genes)`` genomes.

        One tensor pass evaluates every genome of every cell's population:
        *pairwise_sq* is ``(cells, characteristics, B, B)``, *scores* is
        ``(cells, B, targets)``, and the return value is ``(cells, pop)``.
        Each entry is bit-identical to :meth:`GAKNNBaseline._loo_fitness`
        on the corresponding cell: the einsum contracts the characteristic
        axis sequentially (matching the per-characteristic accumulation),
        the neighbour selection reproduces the stable mergesort ordering
        (a k-smallest partition whose boundary-tie rows fall back to the
        full stable sort), and the k-neighbour score accumulation runs in
        the same index order as the sequential ``einsum("nk,nkm->nm")``
        contraction.
        """
        n_cells, n_pop, _ = genomes.shape
        n_benchmarks = pairwise_sq.shape[2]
        n_targets = scores.shape[2]
        n_rows = n_cells * n_pop * n_benchmarks
        k = min(self.k, n_benchmarks - 1)

        distances = np.einsum(
            "cpf,cfij->cpij",
            genomes,
            pairwise_sq,
            out=self._scratch(("dist", n_cells, n_pop, n_benchmarks, n_benchmarks)),
        )
        np.sqrt(distances, out=distances)
        diagonal = np.arange(n_benchmarks)
        # A benchmark is never its own neighbour candidate.
        distances[:, :, diagonal, diagonal] = np.inf

        # Stable k-smallest selection: partition out the k nearest, then
        # mergesort just those candidates.  Index-sorting the candidate set
        # first makes the mergesort tie-break (lowest index wins) match a
        # full stable sort.
        candidates = np.ascontiguousarray(
            np.argpartition(distances, k - 1, axis=-1)[..., :k]
        ).reshape(-1, k)
        candidates.sort(axis=-1)
        flat_dist = distances.reshape(n_rows * n_benchmarks)
        row_base = self._index_base(n_rows, n_benchmarks)
        sub_base = self._index_base(n_rows, k)
        candidates += row_base
        candidate_dist = flat_dist.take(candidates)
        candidates -= row_base
        suborder = np.argsort(candidate_dist, axis=-1, kind="mergesort")
        suborder += sub_base
        order = candidates.take(suborder)
        neighbour_dist = candidate_dist.take(suborder)
        # The candidate *set* is ambiguous exactly when distances tying the
        # k-th smallest straddle the partition boundary; those rare rows
        # fall back to the full stable sort.
        boundary = neighbour_dist[:, -1].reshape(n_cells, n_pop, n_benchmarks, 1)
        ambiguous = ((distances <= boundary).sum(axis=-1) > k).reshape(-1)
        if ambiguous.any():
            dist_rows = distances.reshape(-1, n_benchmarks)
            for row in np.nonzero(ambiguous)[0]:
                full = np.argsort(dist_rows[row], kind="mergesort")[:k]
                order[row] = full
                neighbour_dist[row] = dist_rows[row][full]
        order = order.reshape(n_cells, n_pop, n_benchmarks, k)
        neighbour_dist = neighbour_dist.reshape(n_cells, n_pop, n_benchmarks, k)

        # Zero distances (duplicate feature vectors) are rare: skip the
        # guard entirely when none exist — 1/x on the same values is the
        # same arithmetic the guarded path performs.
        if neighbour_dist.min() == 0.0:
            zero = neighbour_dist == 0.0
            inverse = 1.0 / np.where(zero, 1.0, neighbour_dist)
            zero_rows = zero.any(axis=-1)
        else:
            inverse = 1.0 / neighbour_dist
            zero_rows = None
        # Accumulate neighbour scores in k order — the same sequential
        # contraction order as einsum("nk,nkm->nm") in the per-cell path.
        # Neighbour-major index copy so each gather reads a contiguous
        # index row; reused scratch buffers keep the loop allocation-free.
        flat_scores = scores.reshape(n_cells * n_benchmarks, n_targets)
        cell_offset = self._index_base(n_cells, n_benchmarks).reshape(n_cells, 1, 1, 1)
        neighbour_major = np.ascontiguousarray(
            (order + cell_offset).reshape(-1, k).T
        )
        block = (n_cells, n_pop, n_benchmarks, n_targets)
        predicted = self._scratch(("acc",) + block)
        gathered = self._scratch(("gather",) + block)
        predicted_flat = predicted.reshape(-1, n_targets)
        gathered_flat = gathered.reshape(-1, n_targets)
        np.take(flat_scores, neighbour_major[0], axis=0, out=predicted_flat)
        predicted *= inverse[..., 0, None]
        for j in range(1, k):
            np.take(flat_scores, neighbour_major[j], axis=0, out=gathered_flat)
            gathered *= inverse[..., j, None]
            predicted += gathered
        predicted /= inverse.sum(axis=-1)[..., None]

        if zero_rows is not None and zero_rows.any():
            for c, p, i in zip(*np.nonzero(zero_rows)):
                exact = order[c, p, i][neighbour_dist[c, p, i] == 0.0]
                predicted[c, p, i] = scores[c][exact].mean(axis=0)

        # In-place |predicted - scores| / scores, same arithmetic chain as
        # the sequential error computation.
        np.subtract(predicted, scores[:, None], out=predicted)
        np.abs(predicted, out=predicted)
        predicted /= scores[:, None]
        return predicted.mean(axis=-1).mean(axis=-1)

    def _scratch(self, key: tuple) -> np.ndarray:
        """Reusable float buffer for the hot fitness pass.

        *key* is ``(tag, *shape)`` — the tag keeps same-shaped buffers with
        different roles from aliasing each other.
        """
        buffer = self._fitness_scratch.get(key)
        if buffer is None:
            buffer = np.empty(key[1:])
            self._fitness_scratch[key] = buffer
        return buffer

    def _index_base(self, n_rows: int, stride: int) -> np.ndarray:
        """Cached ``(n_rows, 1)`` column of flat row offsets ``i * stride``."""
        key = ("base", n_rows, stride)
        base = self._fitness_scratch.get(key)
        if base is None:
            base = (np.arange(n_rows, dtype=np.intp) * stride)[:, None]
            self._fitness_scratch[key] = base
        return base

    # ------------------------------------------------------------- batching
    def predict_all_applications(
        self,
        dataset: SpecDataset,
        split: MachineSplit,
        applications: Sequence[str],
    ) -> Mapping[str, np.ndarray]:
        """Predicted target scores for every application, in one GA pass.

        Each application is trained leave-one-out against every other
        dataset benchmark, exactly as the per-cell pipeline loop would hand
        them over; results are bit-identical to per-cell calls.
        """
        applications = list(applications)
        if not applications:
            return {}
        # One batched call = one split's results: drop any earlier split's
        # entries so the diagnostic mapping never mixes splits.
        self.learned_weights_by_application_.clear()
        benchmark_names = dataset.benchmark_names
        if len(benchmark_names) < 2:
            raise ValueError("GA-kNN needs at least one training benchmark")
        row_of = {name: row for row, name in enumerate(benchmark_names)}
        unknown = [name for name in applications if name not in row_of]
        if unknown:
            raise ValueError(f"unknown applications of interest: {unknown}")
        app_rows = np.array([row_of[name] for name in applications], dtype=np.intp)
        all_rows = np.arange(len(benchmark_names), dtype=np.intp)
        # Shared split-level statistics: the raw feature rows and the full
        # target-machine score block are built once; every cell's working
        # set is a row subset of them (the cells differ by one row), so the
        # per-cell values — and everything derived from them — stay
        # bit-identical to the sequential rebuild-per-cell path.
        full_features = dataset.benchmark_feature_matrix(benchmark_names)
        full_scores = dataset.matrix.select_machines(split.target_ids).scores

        if self.learn_weights:
            weights = self._learn_weights_lockstep(
                app_rows, all_rows, full_features, full_scores
            )
        else:
            weights = np.ones((len(applications), full_features.shape[1]))

        predictions: dict[str, np.ndarray] = {}
        for index, application in enumerate(applications):
            cell_weights = weights[index]
            self.learned_weights_by_application_[application] = cell_weights
            self.learned_weights_ = cell_weights
            # Final prediction exactly as the sequential cell computes it:
            # standardise training benchmarks + application (in that order)
            # in a common space, then distance-weighted k-NN.
            training_rows = all_rows[all_rows != app_rows[index]]
            features = StandardScaler().fit_transform(
                full_features[np.concatenate([training_rows, app_rows[index : index + 1]])]
            )
            predictions[application] = self._knn_predict(
                features[-1],
                features[:-1],
                full_scores[training_rows],
                cell_weights,
            )
        return predictions

    def _learn_weights_lockstep(
        self,
        app_rows: np.ndarray,
        all_rows: np.ndarray,
        full_features: np.ndarray,
        full_scores: np.ndarray,
    ) -> np.ndarray:
        """Learned weight vectors for all cells via one lockstep GA."""
        pairwise_blocks = []
        score_blocks = []
        for app_row in app_rows:
            # Per-cell working set, carved out of the shared split-level
            # blocks with the exact sequential arithmetic (standardisation
            # is fit on that cell's own training rows).
            training_rows = all_rows[all_rows != app_row]
            features = StandardScaler().fit_transform(full_features[training_rows])
            score_blocks.append(full_scores[training_rows])
            pairwise_blocks.append(
                ((features[:, None, :] - features[None, :, :]) ** 2).transpose(2, 0, 1)
            )
        pairwise_sq = np.ascontiguousarray(np.stack(pairwise_blocks))
        scores = np.ascontiguousarray(np.stack(score_blocks))

        ga = LockstepGeneticAlgorithm(
            n_problems=len(app_rows),
            genome_length=pairwise_sq.shape[1],
            fitness=lambda block: self._population_loo_fitness(
                block, pairwise_sq, scores
            ),
            config=self.ga_config,
            seed=self.seed,
        )
        try:
            best = ga.run()
        finally:
            # The scratch buffers only pay off across the generations of one
            # run; dropping them here keeps a long-lived instance (e.g. held
            # by the prediction service) from retaining one buffer set per
            # distinct batch shape it has ever served.
            self._fitness_scratch.clear()
        # An all-zero genome would make every distance zero; fall back to
        # uniform weights, mirroring the per-cell GA.
        degenerate = ~np.any(best > 0, axis=1)
        best[degenerate] = 1.0
        return best
