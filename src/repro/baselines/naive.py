"""Naive baselines: what purchasers do today.

Section 4 of the paper notes that purchasing decisions "are typically driven
by average performance figures across the entire benchmark suite, or ... by
presumed similarities across applications from the same application
domain".  These two heuristics are implemented here as rock-bottom baselines
for the evaluation and the examples: they need no model at all, only the
published numbers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.spec_dataset import SpecDataset
from repro.data.splits import MachineSplit

__all__ = ["SuiteMeanBaseline", "DomainMeanBaseline"]


class SuiteMeanBaseline:
    """Rank machines by their mean score across the whole benchmark suite.

    This is the "buy the machine with the best SPECint/SPECfp average"
    strategy; it ignores the application of interest entirely.
    """

    def predict_application_scores(
        self,
        dataset: SpecDataset,
        split: MachineSplit,
        application: str,
        training_benchmarks: Sequence[str],
    ) -> np.ndarray:
        """Return the suite-mean score of every target machine."""
        training = [name for name in training_benchmarks if name != application]
        matrix = dataset.matrix.select_benchmarks(training).select_machines(split.target_ids)
        return matrix.scores.mean(axis=0)


class DomainMeanBaseline:
    """Rank machines by their mean score over same-domain benchmarks.

    Uses only the integer or only the floating-point sub-suite, depending on
    the domain of the application of interest — the "presumed similarity
    across applications from the same application domain" heuristic.
    """

    def predict_application_scores(
        self,
        dataset: SpecDataset,
        split: MachineSplit,
        application: str,
        training_benchmarks: Sequence[str],
    ) -> np.ndarray:
        """Return the domain-mean score of every target machine."""
        domain = dataset.benchmark(application).domain
        training = [
            name
            for name in training_benchmarks
            if name != application and dataset.benchmark(name).domain == domain
        ]
        if not training:
            # No same-domain benchmarks available: fall back to the full suite.
            training = [name for name in training_benchmarks if name != application]
        matrix = dataset.matrix.select_benchmarks(training).select_machines(split.target_ids)
        return matrix.scores.mean(axis=0)
