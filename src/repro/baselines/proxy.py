"""Single-proxy baseline: the most similar benchmark stands in for the application.

A simplified, GA-free version of the workload-similarity idea: pick the one
training benchmark whose microarchitecture-independent characteristics are
closest to the application of interest and use its published scores on the
target machines verbatim.  It isolates the value of (a) using several
neighbours and (b) learning characteristic weights, both of which GA-kNN
adds on top of this.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.spec_dataset import SpecDataset
from repro.data.splits import MachineSplit
from repro.ml.preprocessing import StandardScaler

__all__ = ["MostSimilarBenchmarkBaseline"]


class MostSimilarBenchmarkBaseline:
    """Use the closest benchmark (in characteristic space) as a proxy."""

    def __init__(self) -> None:
        self.chosen_proxy_: str | None = None

    def predict_application_scores(
        self,
        dataset: SpecDataset,
        split: MachineSplit,
        application: str,
        training_benchmarks: Sequence[str],
    ) -> np.ndarray:
        """Return the proxy benchmark's scores on the target machines."""
        training = [name for name in training_benchmarks if name != application]
        if not training:
            raise ValueError("the proxy baseline needs at least one training benchmark")
        all_names = training + [application]
        features = StandardScaler().fit_transform(dataset.benchmark_feature_matrix(all_names))
        query = features[-1]
        candidates = features[:-1]
        distances = np.sqrt(((candidates - query) ** 2).sum(axis=1))
        proxy = training[int(np.argmin(distances))]
        self.chosen_proxy_ = proxy
        row = dataset.matrix.benchmark_scores(proxy)
        index = {mid: i for i, mid in enumerate(dataset.matrix.machines)}
        return np.array([row[index[mid]] for mid in split.target_ids], dtype=float)
