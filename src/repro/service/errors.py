"""The serving stack's error taxonomy.

Every error a front end can hand back to a client carries a stable,
machine-readable ``code`` alongside the free-text message, so clients (and
tests) branch on the code instead of string-matching messages.  The
taxonomy is deliberately small — one code per *decision* a client can
make — and :data:`RETRYABLE_CODES` marks the subset a client may safely
retry (every ranking request is idempotent by content fingerprint, so
retrying can never double-apply anything).

| code | meaning | retry? |
| --- | --- | --- |
| ``INVALID_JSON`` | the request line did not parse as JSON | no |
| ``INVALID_REQUEST`` | schema/name/shape validation failed | no |
| ``PAYLOAD_TOO_LARGE`` | the request line exceeded the line-length bound | no |
| ``DEADLINE_EXCEEDED`` | the query's ``deadline_ms`` elapsed first | client's call |
| ``OVERLOADED`` | admission control shed the request | yes, with backoff |
| ``BACKEND_FAILURE`` | the engine failed even on the degraded path | yes, with backoff |
| ``INTERNAL`` | unexpected server-side error | yes, with backoff |

Exception classes mirror the codes: raising one anywhere in the stack
makes every front end answer ``{"ok": false, "code": ..., "error": ...}``
(see ``repro.service.server``).  ``tools/check_docs.py`` keeps the table
in ``docs/api.md`` honest.

Examples::

    >>> ServiceError("bad query").code
    'INVALID_REQUEST'
    >>> OverloadedError("queue full").code in RETRYABLE_CODES
    True
    >>> DeadlineExceededError("too late").code in RETRYABLE_CODES
    False
"""

from __future__ import annotations

__all__ = [
    "BackendFailureError",
    "DeadlineExceededError",
    "ERROR_CODES",
    "OverloadedError",
    "PayloadTooLargeError",
    "RETRYABLE_CODES",
    "ServiceError",
]


class ServiceError(ValueError):
    """A query the service cannot answer (unknown names, bad shapes).

    Raised instead of assorted ``KeyError``/``ValueError`` flavours so the
    wire front ends can map every client mistake to one error reply without
    masking genuine server bugs.  Subclasses override :attr:`code` to give
    each failure mode its stable wire identity.
    """

    #: Machine-readable wire code for this error class.
    code = "INVALID_REQUEST"


class DeadlineExceededError(ServiceError):
    """The query's deadline elapsed before a reply could be produced."""

    code = "DEADLINE_EXCEEDED"


class OverloadedError(ServiceError):
    """Admission control shed the request (queue or in-flight budget full)."""

    code = "OVERLOADED"


class PayloadTooLargeError(ServiceError):
    """A request line exceeded the configured line-length bound."""

    code = "PAYLOAD_TOO_LARGE"


class BackendFailureError(ServiceError):
    """The engine failed to produce an answer even on the degraded path."""

    code = "BACKEND_FAILURE"


#: Every code a front end can emit, with its one-line meaning (the docs
#: table in ``docs/api.md`` mirrors this mapping).
ERROR_CODES: dict[str, str] = {
    "INVALID_JSON": "the request line did not parse as JSON",
    "INVALID_REQUEST": "schema/name/shape validation failed",
    "PAYLOAD_TOO_LARGE": "the request line exceeded the line-length bound",
    "DEADLINE_EXCEEDED": "the query's deadline_ms elapsed before a reply",
    "OVERLOADED": "admission control shed the request",
    "BACKEND_FAILURE": "the engine failed even on the degraded path",
    "INTERNAL": "unexpected server-side error",
}

#: Codes a client may retry with backoff (requests are idempotent).
RETRYABLE_CODES = frozenset({"OVERLOADED", "BACKEND_FAILURE", "INTERNAL"})
