"""In-process metrics and request tracing for the serving stack.

Two complementary views of a running server:

* **Metrics** — cheap aggregate counters, gauges, and fixed-bucket latency
  histograms held in a :class:`MetricsRegistry`.  Every layer of the stack
  records into the registry (`PredictionService` engine timings,
  `MicroBatcher` admission counters, `ResilientBackend` kernel latency,
  the front ends' request latency), and the ``{"op": "metrics"}`` verb
  exposes one JSON snapshot of all of it — including histogram
  p50/p95/p99 estimates — so a load generator can check its client-side
  measurements against the server's own accounting.
* **Traces** — one :class:`Trace` per request, carrying a trace id that is
  echoed on the reply and a breakdown of per-stage spans
  (:data:`TRACE_STAGES`: ``admission`` → ``queue`` → ``batch`` →
  ``engine`` → ``reply``), so a deadline miss or a degraded reply is
  attributable to the stage that spent the budget.

Histogram percentiles are estimated by linear interpolation inside fixed
buckets (:data:`DEFAULT_LATENCY_BUCKETS_MS`) and clamped to the observed
min/max, so a reported p99 can never exceed the slowest request actually
seen.  Everything is thread-safe (the engine answers batches on executor
threads) and JSON-serialisable.

Examples::

    >>> registry = MetricsRegistry()
    >>> registry.counter("server.requests").inc()
    >>> registry.counter("server.requests").value
    1
    >>> histogram = registry.histogram("server.request_ms")
    >>> for ms in (1.0, 2.0, 10.0):
    ...     histogram.observe(ms)
    >>> histogram.snapshot()["count"]
    3
    >>> ticks = iter([0.0, 0.25])
    >>> trace = Trace(trace_id="t-1", clock=lambda: next(ticks))
    >>> with trace.span("engine"):
    ...     pass
    >>> trace.to_payload()
    {'id': 't-1', 'spans': [{'stage': 'engine', 'ms': 250.0}]}
"""

from __future__ import annotations

import bisect
import itertools
import json
import sys
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PeriodicSnapshot",
    "TRACE_STAGES",
    "Trace",
    "new_trace_id",
]

#: The per-request stages a :class:`Trace` can carry, in pipeline order.
#: ``queue`` and ``batch`` only appear on requests that travelled through
#: the :class:`~repro.service.batching.MicroBatcher` (the TCP front end).
TRACE_STAGES = ("admission", "queue", "batch", "engine", "reply")

#: Default latency histogram bucket upper bounds, in milliseconds —
#: roughly geometric from 50 µs to one minute; observations past the last
#: bound land in an unbounded overflow bucket whose percentile estimate is
#: the observed maximum.
DEFAULT_LATENCY_BUCKETS_MS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0, 60000.0,
)

_TRACE_COUNTER = itertools.count(1)
_TRACE_PREFIX = uuid.uuid4().hex[:8]


def new_trace_id() -> str:
    """A process-unique trace id (random process prefix + serial).

    Examples::

        >>> first, second = new_trace_id(), new_trace_id()
        >>> first != second
        True
    """
    return f"{_TRACE_PREFIX}-{next(_TRACE_COUNTER):06x}"


class Counter:
    """A monotonically increasing integer metric.

    Examples::

        >>> requests = Counter("requests")
        >>> requests.inc(); requests.inc(2)
        >>> requests.value
        3
    """

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time numeric metric (queue depth, in-flight requests).

    Examples::

        >>> depth = Gauge("queue_depth")
        >>> depth.set(7)
        >>> depth.value
        7
    """

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value: float = 0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated percentile estimates.

    Observations are assigned to buckets by upper bound (the last bucket is
    unbounded); :meth:`percentile` linearly interpolates within the bucket
    that holds the requested rank and clamps the estimate to the observed
    min/max, so estimates are conservative: a reported p99 never exceeds
    the slowest observation actually made.

    Examples::

        >>> histogram = Histogram("latency", buckets=(1.0, 10.0, 100.0))
        >>> for value in (0.5, 2.0, 4.0, 8.0):
        ...     histogram.observe(value)
        >>> histogram.snapshot()["count"]
        4
        >>> histogram.percentile(1.0)       # clamped to the observed max
        8.0
        >>> 0.5 <= histogram.percentile(0.25) <= 2.0
        True
    """

    __slots__ = ("name", "bounds", "_lock", "_counts", "_count", "_sum", "_min", "_max", "_clock")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("at least one bucket bound is required")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +1: unbounded overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._clock = clock

    def observe(self, value: float) -> None:
        """Record one observation (same unit as the bucket bounds)."""
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager observing the elapsed wall-clock in milliseconds."""
        started = self._clock()
        try:
            yield
        finally:
            self.observe((self._clock() - started) * 1000.0)

    def percentile(self, q: float) -> float | None:
        """Estimated value at quantile *q* in ``[0, 1]`` (``None`` when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return None
            rank = q * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                previous = cumulative
                cumulative += bucket_count
                if bucket_count and cumulative >= rank:
                    lower = self.bounds[index - 1] if index > 0 else 0.0
                    upper = (
                        self.bounds[index] if index < len(self.bounds) else self._max
                    )
                    fraction = (rank - previous) / bucket_count
                    estimate = lower + fraction * (upper - lower)
                    return min(max(estimate, self._min), self._max)
            return self._max  # pragma: no cover - unreachable (counts sum to _count)

    def snapshot(self) -> dict:
        """Count, sum, mean, min/max, and p50/p95/p99 as one JSON dict."""
        with self._lock:
            count, total = self._count, self._sum
        if count == 0:
            return {
                "count": 0, "sum": 0.0, "mean": None, "min": None, "max": None,
                "p50": None, "p95": None, "p99": None,
            }
        return {
            "count": count,
            "sum": round(total, 4),
            "mean": round(total / count, 4),
            "min": round(self._min, 4),
            "max": round(self._max, 4),
            "p50": round(self.percentile(0.50), 4),
            "p95": round(self.percentile(0.95), 4),
            "p99": round(self.percentile(0.99), 4),
        }


class MetricsRegistry:
    """Thread-safe, create-on-first-use registry of named metrics.

    One registry spans a whole serving stack (``build_service`` hands the
    same instance to the service, the resilient backend, and — via the
    service — the micro-batcher and front ends).  Metric factories are
    idempotent: asking for an existing name returns the existing metric,
    so call sites never coordinate creation.

    Examples::

        >>> registry = MetricsRegistry()
        >>> registry.counter("a").inc(5)
        >>> registry.counter("a").value     # same object, not a new one
        5
        >>> registry.gauge("depth").set(2)
        >>> snap = registry.snapshot()
        >>> (snap["counters"]["a"], snap["gauges"]["depth"])
        (5, 2)
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS
    ) -> Histogram:
        """The histogram named *name* (bucket bounds apply on first creation)."""
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(
                    name, buckets=buckets, clock=self._clock
                )
            return metric

    def observe_trace(self, trace: "Trace") -> None:
        """Record every completed span of *trace* into ``stage.<name>_ms``."""
        for entry in trace.to_payload()["spans"]:
            self.histogram(f"stage.{entry['stage']}_ms").observe(entry["ms"])

    def snapshot(self) -> dict:
        """Every metric as one JSON-serialisable dict, names sorted."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: counters[name].value for name in sorted(counters)},
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "histograms": {
                name: histograms[name].snapshot() for name in sorted(histograms)
            },
        }


class Trace:
    """Per-request trace: an id plus begin/end timestamps per stage.

    Stages may be recorded from different threads (the ``engine`` span runs
    on an executor thread); begin/end are idempotent — a stage begins at
    most once and ends at most once, extra calls are ignored — so the
    pipeline layers never need to coordinate.  :meth:`to_payload` is the
    wire form echoed on every reply.

    Examples::

        >>> ticks = iter([0.0, 0.1, 0.1, 0.3])
        >>> trace = Trace(trace_id="t-2", clock=lambda: next(ticks))
        >>> with trace.span("admission"):
        ...     pass
        >>> trace.begin("engine"); trace.end("engine")
        >>> [entry["stage"] for entry in trace.to_payload()["spans"]]
        ['admission', 'engine']
        >>> trace.duration_ms("engine")
        200.0
    """

    __slots__ = ("trace_id", "_clock", "_lock", "_spans")

    def __init__(
        self,
        trace_id: str | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.trace_id = trace_id if trace_id else new_trace_id()
        self._clock = clock
        self._lock = threading.Lock()
        #: stage -> [begin timestamp, end timestamp or None], insertion order.
        self._spans: dict[str, list] = {}

    def begin(self, stage: str) -> None:
        """Open *stage* now (no-op when it was already opened)."""
        with self._lock:
            if stage not in self._spans:
                self._spans[stage] = [self._clock(), None]

    def end(self, stage: str) -> None:
        """Close *stage* now (no-op when never opened or already closed)."""
        with self._lock:
            entry = self._spans.get(stage)
            if entry is not None and entry[1] is None:
                entry[1] = self._clock()

    def close(self) -> None:
        """Close every still-open span (called once per request at reply)."""
        with self._lock:
            now = self._clock()
            for entry in self._spans.values():
                if entry[1] is None:
                    entry[1] = now

    @contextmanager
    def span(self, stage: str) -> Iterator[None]:
        """``with trace.span("engine"):`` — begin on entry, end on exit."""
        self.begin(stage)
        try:
            yield
        finally:
            self.end(stage)

    def duration_ms(self, stage: str) -> float | None:
        """Milliseconds *stage* took (``None`` when absent or still open)."""
        with self._lock:
            entry = self._spans.get(stage)
            if entry is None or entry[1] is None:
                return None
            return round((entry[1] - entry[0]) * 1000.0, 3)

    def to_payload(self) -> dict:
        """The wire form: ``{"id": ..., "spans": [{"stage", "ms"}, ...]}``."""
        with self._lock:
            spans = [
                {"stage": stage, "ms": round((entry[1] - entry[0]) * 1000.0, 3)}
                for stage, entry in self._spans.items()
                if entry[1] is not None
            ]
        return {"id": self.trace_id, "spans": spans}


class PeriodicSnapshot:
    """Emit a metrics snapshot line at most once per *interval* seconds.

    The front ends use this for the periodic snapshot log: the stdio loop
    calls :meth:`maybe_emit` after each reply, the TCP server from a timer
    task.  The default sink writes one ``repro-serve metrics {...}`` line
    to stderr (never stdout — that belongs to the reply stream).

    Examples::

        >>> now = [0.0]
        >>> lines = []
        >>> registry = MetricsRegistry()
        >>> snap = PeriodicSnapshot(
        ...     registry, interval=10.0, sink=lines.append, clock=lambda: now[0]
        ... )
        >>> snap.maybe_emit()       # interval not yet elapsed
        False
        >>> now[0] = 10.0
        >>> snap.maybe_emit()
        True
        >>> len(lines)
        1
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float,
        sink: Callable[[str], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be > 0 seconds")
        self.registry = registry
        self.interval = float(interval)
        self._sink = sink if sink is not None else self._stderr_sink
        self._clock = clock
        self._last = clock()

    @staticmethod
    def _stderr_sink(line: str) -> None:  # pragma: no cover - exercised via CLI
        print(line, file=sys.stderr, flush=True)

    def emit(self) -> dict:
        """Snapshot now, hand the JSON line to the sink, reset the timer."""
        snapshot = self.registry.snapshot()
        self._sink("repro-serve metrics " + json.dumps(snapshot, sort_keys=True))
        self._last = self._clock()
        return snapshot

    def maybe_emit(self) -> bool:
        """Emit when *interval* has elapsed since the last emission."""
        if self._clock() - self._last < self.interval:
            return False
        self.emit()
        return True
