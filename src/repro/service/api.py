"""The prediction service facade.

:class:`PredictionService` turns the offline cross-validation engine into
an online question-answering API: *"rank these target machines for
application X, given its scores on the predictive machines I own"*.  It
answers through exactly the same entry point the offline tables use —
:func:`repro.core.pipeline.predict_split_scores` — so a service reply is
bit-identical to the corresponding :func:`~repro.core.pipeline.
run_cross_validation` cell.

Serving strategy: the unit of training is the *(split, method)* pair, not
the single query.  One :class:`~repro.core.batch.BatchedRankingMethod`
tensor pass covers every application of the dataset at once, and the
resulting score table is cached in a :class:`~repro.service.cache.
SplitContextCache` keyed by :func:`~repro.core.batch.split_cache_key`.
The first query against a split pays for the pass; every later query on
that split — any application, any ``top_n`` — is a dictionary lookup.

Examples::

    >>> from repro.core import BatchedLinearTransposition
    >>> from repro.data import build_default_dataset
    >>> dataset = build_default_dataset()
    >>> service = PredictionService(dataset, {"NN^T": BatchedLinearTransposition()})
    >>> query = RankingQuery(
    ...     application="gcc",
    ...     predictive_machines=tuple(dataset.machine_ids[:5]),
    ...     top_n=3,
    ... )
    >>> reply = service.rank(query)
    >>> reply.cache_hit, len(reply.machine_ids)
    (False, 3)
    >>> service.rank(query).cache_hit
    True
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.batch import split_cache_key, split_fingerprint, supports_batched_prediction
from repro.core.engine import DEFAULT_METHOD, UnknownMethodError, method_spec, resolve_methods
from repro.core.pipeline import RankingMethod, predict_split_scores
from repro.core.ranking import MachineRanking
from repro.data.spec_dataset import SpecDataset
from repro.data.splits import MachineSplit
from repro.service.cache import CacheStats, SplitContextCache
from repro.service.errors import ServiceError
from repro.service.faults import FaultInjector
from repro.service.observability import MetricsRegistry, Trace
from repro.service.resilience import Deadline

__all__ = [
    "DEFAULT_METHOD",
    "PredictionService",
    "RankingQuery",
    "RankingReply",
    "ServiceError",
]


@dataclass(frozen=True)
class RankingQuery:
    """One ranking question for the service.

    Attributes
    ----------
    application:
        The application of interest — a dataset benchmark name (the
        leave-one-out serving model: it is excluded from its own training
        suite, exactly as in Figure 5 of the paper).
    predictive_machines:
        The machines the application has measured scores on.
    target_machines:
        The machines to rank.  ``None`` (the default) means every dataset
        machine that is not predictive.
    method:
        Ranking method name; must match a method the service was built
        with (default ``"NN^T"``).
    top_n:
        Truncate the reply to the best *n* machines (``None`` = all).
    deadline:
        Optional :class:`~repro.service.resilience.Deadline` the reply
        must beat (``deadline_ms`` on the wire).  Excluded from equality:
        two queries asking the same question are the same question however
        impatient their callers are.
    trace:
        Optional :class:`~repro.service.observability.Trace` following the
        request through the pipeline; the engine records its span on it
        and the front ends echo its id on the reply.  Excluded from
        equality for the same reason as ``deadline``.

    Examples::

        >>> query = RankingQuery("gcc", ("m001", "m002"))
        >>> query.method
        'NN^T'
    """

    application: str
    predictive_machines: tuple[str, ...]
    target_machines: tuple[str, ...] | None = None
    method: str = DEFAULT_METHOD
    top_n: int | None = None
    deadline: Deadline | None = field(default=None, compare=False)
    trace: Trace | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "predictive_machines", tuple(self.predictive_machines))
        if self.target_machines is not None:
            object.__setattr__(self, "target_machines", tuple(self.target_machines))
        if self.top_n is not None and self.top_n < 1:
            raise ServiceError("top_n must be >= 1")


@dataclass(frozen=True)
class RankingReply:
    """The service's answer to one :class:`RankingQuery`.

    Attributes
    ----------
    application / method:
        Echo of the query.
    machine_ids:
        Ranked target machines, best predicted performance first (truncated
        to the query's ``top_n``).
    scores:
        Predicted scores aligned with ``machine_ids``.
    cache_hit:
        ``True`` when the answer came from already-trained split state
        (no tensor pass was needed).
    split_fingerprint:
        Content address of the (dataset, split) pair that answered the
        query — the cache key digest, useful for tracing shard routing.
    degraded:
        ``True`` when the service answered with a cheaper fallback method
        because the requested one could not meet the query's deadline.
    served_method:
        The method that actually produced the scores (equals ``method``
        unless the reply is degraded).

    Examples::

        >>> reply = RankingReply(
        ...     application="gcc", method="NN^T",
        ...     machine_ids=("m9", "m3"), scores=(40.0, 38.5),
        ...     cache_hit=True, split_fingerprint="ab12",
        ... )
        >>> reply.top1
        'm9'
        >>> reply.ranking().score_of("m3")
        38.5
        >>> reply.served_method
        'NN^T'
    """

    application: str
    method: str
    machine_ids: tuple[str, ...]
    scores: tuple[float, ...]
    cache_hit: bool
    split_fingerprint: str
    degraded: bool = False
    served_method: str | None = None

    def __post_init__(self) -> None:
        if self.served_method is None:
            object.__setattr__(self, "served_method", self.method)

    @property
    def top1(self) -> str:
        """The purchase recommendation: the best-ranked machine."""
        return self.machine_ids[0]

    def ranking(self) -> MachineRanking:
        """The reply as a :class:`~repro.core.ranking.MachineRanking`."""
        return MachineRanking.from_scores(self.machine_ids, self.scores)


class _SplitState:
    """Trained state of one (dataset, split): per-method score tables.

    Methods are filled lazily — a query for NNᵀ never trains MLPᵀ.  For
    batch-capable methods one tensor pass covers *all* dataset applications
    (the extra applications are nearly free), which is what makes every
    later query on the split a lookup; per-cell methods (GA-kNN) are
    expensive per application, so their table fills one application at a
    time as queries ask for them.
    """

    def __init__(self, split: MachineSplit, fingerprint: str) -> None:
        self.split = split
        self.fingerprint = fingerprint
        self._lock = threading.Lock()
        self._scores: dict[str, dict[str, np.ndarray]] = {}

    def has(self, method_name: str, application: str) -> bool:
        """Is *application*'s score row already trained under *method_name*?"""
        with self._lock:
            return application in self._scores.get(method_name, {})

    def scores_for(
        self,
        dataset: SpecDataset,
        method_name: str,
        method: RankingMethod,
        application: str,
    ) -> tuple[np.ndarray, bool]:
        """``(target scores for application, answer_was_already_trained)``."""
        with self._lock:
            table = self._scores.setdefault(method_name, {})
            if application in table:
                return table[application], True
            applications = (
                dataset.benchmark_names
                if supports_batched_prediction(method)
                else [application]
            )
            table.update(
                predict_split_scores(
                    dataset, self.split, {method_name: method}, applications
                )[method_name]
            )
            return table[application], False


class PredictionService:
    """Batched, cache-backed online ranking API over the offline engine.

    Parameters
    ----------
    dataset:
        The performance dataset to answer from.
    methods:
        Mapping from method name to :class:`~repro.core.pipeline.
        RankingMethod`, or registered method name(s) resolved through
        :func:`repro.core.engine.resolve_methods` (e.g. ``["NN^T",
        "GA-kNN"]``).  Batch-capable methods (the standard NNᵀ/MLPᵀ/GA-kNN
        line-up) are trained with one tensor pass per split; per-cell
        methods work too, they just fill the split state more slowly.
    cache:
        The :class:`~repro.service.cache.SplitContextCache` holding trained
        split state (default: 64 entries, 4 shards, no TTL).
    fallbacks:
        ``{method: cheaper_method}`` degradation map used when a query's
        deadline cannot be met by its requested method.  ``None`` (the
        default) derives it from the registry's ``fallback`` declarations,
        restricted to the methods this service actually serves.
    fault_injector:
        The :class:`~repro.service.faults.FaultInjector` active in this
        stack, if any — the service only *reports* it (health payloads);
        injection itself happens at the cache and backend seams.
    metrics:
        The :class:`~repro.service.observability.MetricsRegistry` this
        stack records into.  ``None`` (the default) creates a private
        registry, so recording never needs a null check;
        :func:`~repro.service.server.build_service` passes one shared
        registry to the service and the resilient backend.

    Examples::

        >>> from repro.core import BatchedLinearTransposition
        >>> from repro.data import build_default_dataset
        >>> dataset = build_default_dataset()
        >>> service = PredictionService(dataset, {"NN^T": BatchedLinearTransposition()})
        >>> replies = service.rank_many([
        ...     RankingQuery(app, tuple(dataset.machine_ids[:4]), top_n=1)
        ...     for app in ("gcc", "mcf", "lbm")
        ... ])
        >>> [reply.cache_hit for reply in replies]   # one pass answers all three
        [False, True, True]
    """

    def __init__(
        self,
        dataset: SpecDataset,
        methods: "Mapping[str, RankingMethod] | Sequence[str] | str",
        cache: SplitContextCache | None = None,
        fallbacks: "Mapping[str, str] | None" = None,
        fault_injector: FaultInjector | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not methods:
            raise ValueError("at least one ranking method is required")
        self.dataset = dataset
        self.methods = resolve_methods(methods)
        self.cache = cache if cache is not None else SplitContextCache()
        self.fault_injector = fault_injector
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._benchmarks = set(dataset.benchmark_names)
        self._machines = set(dataset.machine_ids)
        self._fallbacks = (
            dict(fallbacks) if fallbacks is not None else self._registry_fallbacks()
        )
        #: Worst observed cold-training seconds per served method, fed by
        #: rank_many; the deadline-degradation decision consults it.
        self._cold_cost: dict[str, float] = {}
        #: Replies answered by a fallback method under deadline pressure.
        self.degraded_served = 0
        #: Cache entries found corrupted (wrong type) and rebuilt.
        self.corrupt_entries_dropped = 0

    def _registry_fallbacks(self) -> dict[str, str]:
        """Degradation map from the registry, limited to served methods."""
        fallbacks: dict[str, str] = {}
        for served in self.methods:
            try:
                fallback_name = method_spec(served).fallback
            except UnknownMethodError:
                continue  # caller-named instance, not a registry method
            if fallback_name is None:
                continue
            fallback_label = method_spec(fallback_name).label
            if fallback_label in self.methods and fallback_label != served:
                fallbacks[served] = fallback_label
        return fallbacks

    # ------------------------------------------------------------ validation
    def split_for(self, query: RankingQuery) -> MachineSplit:
        """The :class:`~repro.data.splits.MachineSplit` a query addresses.

        Defaulted target machines (every non-predictive dataset machine)
        are resolved here, in matrix column order, so equal queries map to
        equal splits and therefore the same cache entry.
        """
        self.validate(query)
        predictive = query.predictive_machines
        if query.target_machines is not None:
            targets = query.target_machines
        else:
            owned = set(predictive)
            targets = tuple(mid for mid in self.dataset.machine_ids if mid not in owned)
            if not targets:
                raise ServiceError("no target machines remain after removing predictive ones")
        try:
            return MachineSplit(
                name=f"service:{len(predictive)}p->{len(targets)}t",
                predictive_ids=predictive,
                target_ids=targets,
            )
        except ValueError as exc:
            raise ServiceError(str(exc)) from None

    def validate(self, query: RankingQuery) -> None:
        """Raise :class:`ServiceError` when a query cannot be answered."""
        if query.application not in self._benchmarks:
            raise ServiceError(f"unknown application {query.application!r}")
        if query.method not in self.methods:
            raise ServiceError(
                f"unknown method {query.method!r} (serving: {sorted(self.methods)})"
            )
        if not query.predictive_machines:
            raise ServiceError("at least one predictive machine is required")
        for label, ids in (
            ("predictive", query.predictive_machines),
            ("target", query.target_machines or ()),
        ):
            unknown = [mid for mid in ids if mid not in self._machines]
            if unknown:
                raise ServiceError(f"unknown machines: {unknown}")
            if len(set(ids)) != len(ids):
                duplicates = sorted({mid for mid in ids if ids.count(mid) > 1})
                raise ServiceError(f"duplicate {label} machines: {duplicates}")

    # --------------------------------------------------------------- serving
    def _state_for(self, split: MachineSplit) -> _SplitState:
        key = split_cache_key(self.dataset, split)

        def factory() -> _SplitState:
            return _SplitState(split, split_fingerprint(self.dataset, split))

        state, _ = self.cache.get_or_create(key, factory)
        if not isinstance(state, _SplitState):
            # A corrupted entry (wrong type) must never answer a query:
            # purge it and rebuild.  If the rebuilt entry is corrupted too
            # (injection can strike twice), serve from a private state —
            # slower, but always correct.
            self.corrupt_entries_dropped += 1
            self.cache.invalidate(key)
            state, _ = self.cache.get_or_create(key, factory)
            if not isinstance(state, _SplitState):
                self.corrupt_entries_dropped += 1
                self.cache.invalidate(key)
                state = factory()
        return state

    def _choose_method(self, state: _SplitState, query: RankingQuery) -> tuple[str, bool]:
        """``(method to serve, degraded?)`` under the query's deadline.

        Degradation walks the fallback chain only when the requested
        method's answer is cold *and* its observed cold-training cost
        exceeds the remaining budget; a warm answer is always served as
        asked (a lookup beats any deadline a training pass could).
        """
        requested = query.method
        deadline = query.deadline
        if deadline is None:
            return requested, False
        candidate = requested
        seen = {candidate}
        while True:
            if state.has(candidate, query.application):
                break  # warm: a table lookup meets any deadline
            cost = self._cold_cost.get(candidate)
            if cost is None or cost <= max(deadline.remaining(), 0.0):
                break  # unknown or affordable cold cost: attempt it
            fallback = self._fallbacks.get(candidate)
            if fallback is None or fallback in seen:
                break  # end of the chain: serve the best we reached
            candidate = fallback
            seen.add(candidate)
        return candidate, candidate != requested

    def rank(self, query: RankingQuery) -> RankingReply:
        """Answer one query (see :meth:`rank_many` for the batch form)."""
        return self.rank_many([query])[0]

    def rank_many(self, queries: Sequence[RankingQuery]) -> list[RankingReply]:
        """Answer a batch of queries, one reply per query, in order.

        Queries sharing a (split, method) pair are answered from one
        trained score table: the first of them triggers the batched tensor
        pass (or a cache hit from an earlier batch), the rest are lookups.

        A query with an expired (or tight) deadline is still answered —
        degraded to its fallback method when one is configured and the
        requested method's cold cost cannot fit the remaining budget.
        Deadline *errors* are the front ends' business: raising here would
        poison batchmates sharing the engine call.
        """
        replies: list[RankingReply] = []
        for query in queries:
            engine_span = (
                query.trace.span("engine")
                if query.trace is not None
                else contextlib.nullcontext()
            )
            with engine_span:
                split = self.split_for(query)
                state = self._state_for(split)
                served, degraded = self._choose_method(state, query)
                started = time.monotonic()
                scores, warm = state.scores_for(
                    self.dataset, served, self.methods[served], query.application
                )
            if not warm:
                elapsed = time.monotonic() - started
                if elapsed > self._cold_cost.get(served, 0.0):
                    self._cold_cost[served] = elapsed
                self.metrics.histogram("service.cold_train_ms").observe(elapsed * 1000.0)
            self.metrics.counter("service.requests").inc()
            self.metrics.counter(
                "service.warm_hits" if warm else "service.cold_passes"
            ).inc()
            if degraded:
                self.degraded_served += 1
                self.metrics.counter("service.degraded").inc()
            ranking = MachineRanking.from_scores(split.target_ids, scores)
            ordered = ranking.ordered_ids()
            if query.top_n is not None:
                ordered = ordered[: query.top_n]
            score_by_id = dict(zip(split.target_ids, (float(s) for s in scores)))
            replies.append(
                RankingReply(
                    application=query.application,
                    method=query.method,
                    machine_ids=tuple(ordered),
                    scores=tuple(score_by_id[mid] for mid in ordered),
                    cache_hit=warm,
                    split_fingerprint=state.fingerprint,
                    degraded=degraded,
                    served_method=served,
                )
            )
        return replies

    # ------------------------------------------------------------ inspection
    def cache_stats(self) -> CacheStats:
        """Counters of the underlying split-state cache."""
        return self.cache.stats()
