"""Online prediction service over the batched cross-validation engine.

The paper's question — *which machine should I buy or schedule onto for an
application the vendor never measured?* — is an online prediction problem.
This package turns the offline engine of :mod:`repro.core` into a serving
stack for it:

* :mod:`repro.service.api` — :class:`PredictionService`, the facade that
  answers single or bulk ranking queries through the same
  :func:`~repro.core.pipeline.predict_split_scores` entry point the offline
  tables use (service answers are bit-identical to
  :func:`~repro.core.pipeline.run_cross_validation` cells);
* :mod:`repro.service.cache` — :class:`SplitContextCache`, the sharded
  LRU+TTL cache holding trained split state, keyed by
  :func:`~repro.core.batch.split_cache_key`;
* :mod:`repro.service.batching` — :class:`MicroBatcher`, the asyncio
  front end coalescing concurrent requests into stacked batch calls, with
  bounded admission and load shedding;
* :mod:`repro.service.server` — the ``repro-serve`` entry point (stdio
  JSON-lines or TCP) plus the synchronous :class:`InProcessClient` and
  the reconnecting :class:`TCPClient`;
* :mod:`repro.service.resilience` — :class:`Deadline` propagation, the
  backend :class:`CircuitBreaker` with bit-exact NumPy degradation
  (:class:`ResilientBackend`), and full-jitter :class:`RetryPolicy`;
* :mod:`repro.service.errors` — the stable error-code taxonomy every
  front end answers with;
* :mod:`repro.service.faults` — the deterministic, seed-driven
  fault-injection harness (``REPRO_FAULTS``) that makes all of the above
  actually fire in tests and the CI chaos leg; and
* :mod:`repro.service.observability` — the shared
  :class:`MetricsRegistry` (counters, gauges, p50/p95/p99 latency
  histograms, the ``{"op": "metrics"}`` verb) and per-request
  :class:`Trace` spans echoed on every reply, which
  :mod:`repro.loadgen` reconciles against its client-side measurements.

Examples::

    >>> from repro.core import BatchedLinearTransposition
    >>> from repro.data import build_default_dataset
    >>> from repro.service import PredictionService, RankingQuery
    >>> dataset = build_default_dataset()
    >>> service = PredictionService(dataset, {"NN^T": BatchedLinearTransposition()})
    >>> reply = service.rank(
    ...     RankingQuery("gcc", tuple(dataset.machine_ids[:5]), top_n=1)
    ... )
    >>> reply.top1 == reply.machine_ids[0]
    True
"""

from repro.service.api import (
    PredictionService,
    RankingQuery,
    RankingReply,
    ServiceError,
)
from repro.service.batching import MicroBatcher
from repro.service.cache import CacheStats, SplitContextCache
from repro.service.errors import (
    ERROR_CODES,
    RETRYABLE_CODES,
    BackendFailureError,
    DeadlineExceededError,
    OverloadedError,
    PayloadTooLargeError,
)
from repro.service.faults import (
    FAULTS_ENV_VAR,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    injector_from_env,
)
from repro.service.observability import (
    TRACE_STAGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PeriodicSnapshot,
    Trace,
)
from repro.service.resilience import (
    CircuitBreaker,
    Deadline,
    ResilientBackend,
    RetryPolicy,
)
from repro.service.server import (
    InProcessClient,
    TCPClient,
    build_service,
    serve_stdio,
    serve_tcp,
)

__all__ = [
    "BackendFailureError",
    "CacheStats",
    "CircuitBreaker",
    "Counter",
    "Deadline",
    "DeadlineExceededError",
    "ERROR_CODES",
    "FAULTS_ENV_VAR",
    "FaultInjector",
    "FaultPlan",
    "Gauge",
    "Histogram",
    "InProcessClient",
    "InjectedFault",
    "MetricsRegistry",
    "MicroBatcher",
    "OverloadedError",
    "PayloadTooLargeError",
    "PeriodicSnapshot",
    "PredictionService",
    "RETRYABLE_CODES",
    "RankingQuery",
    "RankingReply",
    "ResilientBackend",
    "RetryPolicy",
    "ServiceError",
    "SplitContextCache",
    "TCPClient",
    "TRACE_STAGES",
    "Trace",
    "build_service",
    "serve_stdio",
    "serve_tcp",
    "injector_from_env",
]
