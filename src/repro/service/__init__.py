"""Online prediction service over the batched cross-validation engine.

The paper's question — *which machine should I buy or schedule onto for an
application the vendor never measured?* — is an online prediction problem.
This package turns the offline engine of :mod:`repro.core` into a serving
stack for it:

* :mod:`repro.service.api` — :class:`PredictionService`, the facade that
  answers single or bulk ranking queries through the same
  :func:`~repro.core.pipeline.predict_split_scores` entry point the offline
  tables use (service answers are bit-identical to
  :func:`~repro.core.pipeline.run_cross_validation` cells);
* :mod:`repro.service.cache` — :class:`SplitContextCache`, the sharded
  LRU+TTL cache holding trained split state, keyed by
  :func:`~repro.core.batch.split_cache_key`;
* :mod:`repro.service.batching` — :class:`MicroBatcher`, the asyncio
  front end coalescing concurrent requests into stacked batch calls; and
* :mod:`repro.service.server` — the ``repro-serve`` entry point (stdio
  JSON-lines or TCP) plus the synchronous :class:`InProcessClient`.

Examples::

    >>> from repro.core import BatchedLinearTransposition
    >>> from repro.data import build_default_dataset
    >>> from repro.service import PredictionService, RankingQuery
    >>> dataset = build_default_dataset()
    >>> service = PredictionService(dataset, {"NN^T": BatchedLinearTransposition()})
    >>> reply = service.rank(
    ...     RankingQuery("gcc", tuple(dataset.machine_ids[:5]), top_n=1)
    ... )
    >>> reply.top1 == reply.machine_ids[0]
    True
"""

from repro.service.api import (
    PredictionService,
    RankingQuery,
    RankingReply,
    ServiceError,
)
from repro.service.batching import MicroBatcher
from repro.service.cache import CacheStats, SplitContextCache
from repro.service.server import InProcessClient, build_service, serve_stdio, serve_tcp

__all__ = [
    "CacheStats",
    "InProcessClient",
    "MicroBatcher",
    "PredictionService",
    "RankingQuery",
    "RankingReply",
    "ServiceError",
    "SplitContextCache",
    "build_service",
    "serve_stdio",
    "serve_tcp",
]
