"""LRU+TTL cache for trained split state.

The expensive object in the serving path is the trained state of one
``(dataset, split)`` pair — the stacked leave-one-out predictions a
:class:`~repro.core.batch.BatchedRankingMethod` produces in one tensor
pass.  :class:`SplitContextCache` keeps those objects warm between queries:

* keys are the stable content addresses of
  :func:`repro.core.batch.split_cache_key` (dataset fingerprint +
  predictive/target machine ids), so two clients presenting the same
  machine sets against byte-identical scores share one entry;
* entries are held in **LRU** order with an optional **TTL**, so a serving
  process neither grows without bound nor serves stale state after the
  configured lifetime; and
* entries are distributed over independently locked **shards** (routed by a
  seed-independent CRC of the key), so concurrent queries against different
  splits never contend on one lock.

The cache is value-agnostic: the service stores its per-split state in it,
but any hashable-key/opaque-value pair works, which keeps the eviction
semantics directly testable.

For resilience testing the cache accepts a
:class:`~repro.service.faults.FaultInjector`: the ``cache_evict`` seam
drops a resident entry before a lookup (the request retrains — slower but
correct) and the ``cache_corrupt`` seam replaces a resident value with a
:class:`~repro.service.faults.CorruptedEntry` sentinel (the service
detects the wrong type, invalidates, and rebuilds).

Examples::

    >>> cache = SplitContextCache(capacity=2, n_shards=1)
    >>> cache.put("split-a", 1)
    >>> cache.put("split-b", 2)
    >>> cache.get("split-a")
    1
    >>> cache.put("split-c", 3)   # evicts the least recently used: split-b
    >>> cache.get("split-b") is None
    True
    >>> cache.stats().evictions
    1
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.service.faults import CorruptedEntry, FaultInjector

__all__ = ["CacheStats", "SplitContextCache"]


@dataclass(frozen=True)
class CacheStats:
    """Counters describing a cache's behaviour since construction.

    Attributes
    ----------
    hits / misses:
        Lookup outcomes (an expired entry counts as a miss).
    evictions:
        Entries dropped because a shard exceeded its capacity.
    expirations:
        Entries dropped because their TTL elapsed.
    entries:
        Entries currently resident across all shards.

    Examples::

        >>> SplitContextCache(capacity=4).stats()
        CacheStats(hits=0, misses=0, evictions=0, expirations=0, entries=0)
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    entries: int = 0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        """Aggregate two counters (used to sum per-shard stats)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            expirations=self.expirations + other.expirations,
            entries=self.entries + other.entries,
        )


class _Shard:
    """One independently locked LRU+TTL segment of the cache."""

    def __init__(self, capacity: int, ttl: float | None, clock: Callable[[], float]) -> None:
        self.capacity = capacity
        self.ttl = ttl
        self.clock = clock
        self.lock = threading.Lock()
        #: key -> (value, expiry timestamp or None), most recently used last.
        self.entries: "OrderedDict[Hashable, tuple[Any, float | None]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def _expiry(self) -> float | None:
        return None if self.ttl is None else self.clock() + self.ttl

    def _drop_expired(self, key: Hashable, expiry: float | None) -> bool:
        if expiry is not None and self.clock() >= expiry:
            del self.entries[key]
            self.expirations += 1
            return True
        return False

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self.lock:
            entry = self.entries.get(key)
            if entry is not None:
                value, expiry = entry
                if not self._drop_expired(key, expiry):
                    self.entries.move_to_end(key)
                    self.hits += 1
                    return value
            self.misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        with self.lock:
            self._insert(key, value)

    def _insert(self, key: Hashable, value: Any) -> None:
        if key in self.entries:
            del self.entries[key]
        while len(self.entries) >= self.capacity:
            self.entries.popitem(last=False)
            self.evictions += 1
        self.entries[key] = (value, self._expiry())

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> tuple[Any, bool]:
        with self.lock:
            entry = self.entries.get(key)
            if entry is not None:
                value, expiry = entry
                if not self._drop_expired(key, expiry):
                    self.entries.move_to_end(key)
                    self.hits += 1
                    return value, True
            self.misses += 1
            value = factory()
            self._insert(key, value)
            return value, False

    def invalidate(self, key: Hashable) -> bool:
        with self.lock:
            if key in self.entries:
                del self.entries[key]
                return True
            return False

    def corrupt(self, key: Hashable, sentinel: Any) -> bool:
        with self.lock:
            entry = self.entries.get(key)
            if entry is None:
                return False
            # Preserve expiry and LRU position: corruption replaces the
            # value in place, it is not a (re)insertion.
            self.entries[key] = (sentinel, entry[1])
            return True

    def stats(self) -> CacheStats:
        with self.lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                expirations=self.expirations,
                entries=len(self.entries),
            )

    def clear(self) -> None:
        with self.lock:
            self.entries.clear()


class SplitContextCache:
    """Sharded LRU+TTL cache keyed by split content address.

    Parameters
    ----------
    capacity:
        Maximum number of resident entries across all shards.  The budget
        is divided over the shards (the first ``capacity % n_shards``
        shards hold one extra entry), so the total can never exceed
        *capacity*; when ``capacity < n_shards`` the shard count is
        reduced to match.
    ttl:
        Entry lifetime in seconds measured from insertion; ``None`` (the
        default) disables expiry.  A lookup past the lifetime behaves as a
        miss and drops the entry.
    n_shards:
        Number of independently locked segments.  Keys are routed with a
        seed-independent CRC so placement is reproducible across processes;
        use ``n_shards=1`` when deterministic *global* LRU order matters
        (e.g. in eviction tests).
    clock:
        Monotonic time source, injectable for tests.
    fault_injector:
        Optional :class:`~repro.service.faults.FaultInjector`; when given,
        the ``cache_evict`` / ``cache_corrupt`` seams fire ahead of
        lookups (chaos testing only — ``None`` in normal operation).

    Examples::

        >>> ticks = iter(range(100))
        >>> cache = SplitContextCache(capacity=4, ttl=5.0, clock=lambda: next(ticks))
        >>> cache.put("key", "value")          # inserted at t=0, expires at t=5
        >>> cache.get("key")                   # t=1: still fresh
        'value'
        >>> [cache.get("key") for _ in range(4)][-1] is None   # t=5: expired
        True
        >>> cache.stats().expirations
        1
    """

    def __init__(
        self,
        capacity: int = 64,
        ttl: float | None = None,
        n_shards: int = 4,
        clock: Callable[[], float] = time.monotonic,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None to disable expiry)")
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.capacity = int(capacity)
        self.ttl = ttl
        self.fault_injector = fault_injector
        #: Faults actually applied to resident entries (chaos assertions).
        self.injected_evictions = 0
        self.injected_corruptions = 0
        n_shards = min(n_shards, self.capacity)
        base, extra = divmod(self.capacity, n_shards)
        self._shards = tuple(
            _Shard(base + (1 if index < extra else 0), ttl, clock)
            for index in range(n_shards)
        )

    # ------------------------------------------------------------- routing
    def shard_index(self, key: Hashable) -> int:
        """Deterministic shard routing for *key* (stable across processes).

        Uses CRC-32 of ``repr(key)`` rather than :func:`hash`, which varies
        per process under ``PYTHONHASHSEED`` randomisation.
        """
        return zlib.crc32(repr(key).encode()) % len(self._shards)

    def _shard(self, key: Hashable) -> _Shard:
        return self._shards[self.shard_index(key)]

    def _maybe_inject(self, key: Hashable) -> None:
        """Fire scheduled cache faults against *key* before a lookup."""
        injector = self.fault_injector
        if injector is None:
            return
        shard = self._shard(key)
        if injector.fires("cache_evict") and shard.invalidate(key):
            self.injected_evictions += 1
        if injector.fires("cache_corrupt") and shard.corrupt(key, CorruptedEntry(key)):
            self.injected_corruptions += 1

    # ------------------------------------------------------------- operations
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Value stored under *key*, or *default* on a miss/expiry."""
        self._maybe_inject(key)
        return self._shard(key).get(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert *value* under *key* (refreshing LRU position and TTL)."""
        self._shard(key).put(key, value)

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> tuple[Any, bool]:
        """Return ``(value, hit)``, building the value on a miss.

        The factory runs under the shard lock, so concurrent requests for
        the same key trigger exactly one build; requests for keys on other
        shards proceed unblocked in parallel.
        """
        self._maybe_inject(key)
        return self._shard(key).get_or_create(key, factory)

    def invalidate(self, key: Hashable) -> bool:
        """Drop *key* if resident; True when an entry was removed.

        Used by the service to purge an entry it detected as corrupted.

        Examples::

            >>> cache = SplitContextCache(capacity=4)
            >>> cache.put("key", "value")
            >>> cache.invalidate("key")
            True
            >>> cache.invalidate("key")
            False
        """
        return self._shard(key).invalidate(key)

    # ------------------------------------------------------------- inspection
    def stats(self) -> CacheStats:
        """Aggregated counters across all shards."""
        total = CacheStats()
        for shard in self._shards:
            total = total + shard.stats()
        return total

    def snapshot(self) -> dict:
        """The cache's full JSON accounting (the ``stats``/``metrics`` verbs).

        Aggregate counters, the derived ``hit_rate`` (``None`` before any
        lookup), the configured ``capacity``, and the per-shard breakdown —
        exactly the dict served under ``{"op": "stats"}``.

        Examples::

            >>> cache = SplitContextCache(capacity=4, n_shards=2)
            >>> cache.put("key", "value")
            >>> _ = cache.get("key"); _ = cache.get("absent")
            >>> snap = cache.snapshot()
            >>> (snap["hits"], snap["misses"], snap["hit_rate"], len(snap["shards"]))
            (1, 1, 0.5, 2)
        """
        per_shard = self.shard_stats()
        total = CacheStats()
        for stats in per_shard:
            total = total + stats
        lookups = total.hits + total.misses
        return {
            "hits": total.hits,
            "misses": total.misses,
            "evictions": total.evictions,
            "expirations": total.expirations,
            "entries": total.entries,
            "hit_rate": (total.hits / lookups) if lookups else None,
            "capacity": self.capacity,
            "shards": [
                {
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "evictions": stats.evictions,
                    "expirations": stats.expirations,
                    "entries": stats.entries,
                }
                for stats in per_shard
            ],
        }

    def shard_stats(self) -> tuple[CacheStats, ...]:
        """Per-shard counters, in shard-index order.

        The aggregate :meth:`stats` hides routing skew; this exposes it
        (``repro-serve`` reports both in its ``stats`` reply).

        Examples::

            >>> cache = SplitContextCache(capacity=4, n_shards=2)
            >>> cache.put("key", "value")
            >>> sum(stats.entries for stats in cache.shard_stats())
            1
        """
        return tuple(shard.stats() for shard in self._shards)

    def clear(self) -> None:
        """Drop every resident entry (counters are preserved)."""
        for shard in self._shards:
            shard.clear()

    def __len__(self) -> int:
        """Number of resident entries across all shards."""
        return self.stats().entries

    @property
    def n_shards(self) -> int:
        """Number of independently locked shards."""
        return len(self._shards)
