"""Asyncio micro-batching front end.

A serving process receives queries one at a time, but the engine underneath
is happiest answering them in bulk: queries that address the same machine
split share one trained score table, so handing them to
:meth:`~repro.service.api.PredictionService.rank_many` as a single batch
trains once instead of racing to train concurrently.  :class:`MicroBatcher`
provides that coalescing for asyncio front ends (the TCP server): requests
arriving within a small window are collected and dispatched as one stacked
batch call, and each caller awaits only its own reply.

Replies are position-aligned with the submitted queries, so coalescing is
invisible to callers: a batch of queries produces exactly the replies the
same queries would produce one at a time (the determinism tests pin this).

Examples::

    >>> import asyncio
    >>> from repro.core import BatchedLinearTransposition
    >>> from repro.data import build_default_dataset
    >>> from repro.service.api import PredictionService, RankingQuery
    >>> dataset = build_default_dataset()
    >>> service = PredictionService(dataset, {"NN^T": BatchedLinearTransposition()})
    >>> async def ask(apps):
    ...     batcher = MicroBatcher(service, window=0.001)
    ...     machines = tuple(dataset.machine_ids[:4])
    ...     return await asyncio.gather(
    ...         *(batcher.submit(RankingQuery(app, machines, top_n=1)) for app in apps)
    ...     )
    >>> replies = asyncio.run(ask(["gcc", "mcf", "lbm"]))
    >>> [reply.application for reply in replies]
    ['gcc', 'mcf', 'lbm']
"""

from __future__ import annotations

import asyncio

from repro.service.api import PredictionService, RankingQuery, RankingReply
from repro.service.errors import DeadlineExceededError, OverloadedError

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Coalesce concurrent ranking queries into stacked batch calls.

    Parameters
    ----------
    service:
        The :class:`~repro.service.api.PredictionService` answering the
        batches.
    window:
        Seconds to wait after the first pending request before flushing; a
        small value (default 2 ms) bounds the latency a lone request pays
        for the chance of being batched.
    max_batch:
        Flush immediately once this many requests are pending, without
        waiting for the window.
    max_queue:
        Admission bound on requests waiting for the next flush; a request
        arriving past it is shed with
        :class:`~repro.service.errors.OverloadedError` instead of queueing
        unboundedly.
    max_inflight:
        Admission bound on requests dispatched but not yet answered
        (i.e. inside engine batch calls); sheds the same way.

    Notes
    -----
    The batch is answered on the event loop's default thread-pool executor,
    so a cold training pass (seconds under the ``full`` preset) never
    freezes the loop — other connections keep being accepted and answered
    while a batch trains.  Invalid queries fail their own caller with
    :class:`~repro.service.api.ServiceError` — they never poison the other
    requests in the batch, and a caller that disappears (cancelled future)
    never prevents the rest of its batch from being answered.  A query
    whose deadline has already expired is rejected at admission (and again
    at flush time, for deadlines that expire while queued) with
    :class:`~repro.service.errors.DeadlineExceededError`; the rest of its
    batch is unaffected.
    """

    def __init__(
        self,
        service: PredictionService,
        window: float = 0.002,
        max_batch: int = 64,
        max_queue: int = 256,
        max_inflight: int = 1024,
    ) -> None:
        if window < 0:
            raise ValueError("window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.service = service
        self.window = float(window)
        self.max_batch = int(max_batch)
        self.max_queue = int(max_queue)
        self.max_inflight = int(max_inflight)
        self._pending: list[tuple[RankingQuery, asyncio.Future]] = []
        self._flush_handle: asyncio.TimerHandle | None = None
        self._inflight = 0
        self._inflight_tasks: set[asyncio.Future] = set()
        self._draining = False
        #: Number of flushes dispatched (for tests and throughput benches).
        self.batches_dispatched = 0
        #: Total requests answered across all flushes.
        self.requests_served = 0
        #: Requests refused at admission (queue/inflight budget exhausted).
        self.requests_shed = 0
        #: Requests refused because their deadline had already expired.
        self.deadline_rejections = 0

    async def submit(self, query: RankingQuery) -> RankingReply:
        """Enqueue one query and await its reply.

        The first pending request arms the flush timer; subsequent requests
        inside the window ride the same batch.  Reaching ``max_batch``
        flushes immediately.  Admission control happens here: a draining
        batcher, a full queue, or an exhausted in-flight budget sheds the
        request; an already-expired deadline rejects it.
        """
        metrics = self.service.metrics
        if self._draining:
            raise OverloadedError("service is draining; not accepting new requests")
        if len(self._pending) >= self.max_queue or self._inflight >= self.max_inflight:
            self.requests_shed += 1
            metrics.counter("batcher.shed").inc()
            raise OverloadedError(
                f"overloaded: {len(self._pending)} queued, {self._inflight} in flight"
            )
        if query.deadline is not None and query.deadline.expired:
            self.deadline_rejections += 1
            metrics.counter("batcher.deadline_rejected").inc()
            raise DeadlineExceededError("deadline expired before admission")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        if query.trace is not None:
            query.trace.begin("queue")
        self._pending.append((query, future))
        metrics.gauge("batcher.pending").set(len(self._pending))
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._flush_handle is None:
            self._flush_handle = loop.call_later(self.window, self._flush)
        return await future

    def _flush(self) -> None:
        """Dispatch every pending request as one batch call."""
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        # Weed out invalid queries individually so one bad request cannot
        # fail the whole batch (split_for covers name and shape validation);
        # likewise fail queries whose deadline expired while they queued —
        # dispatching them would waste an engine pass on an unusable reply.
        # Futures may already be done (caller gone) — never touch those.
        metrics = self.service.metrics
        valid: list[tuple[RankingQuery, asyncio.Future]] = []
        for query, future in batch:
            if query.trace is not None:
                query.trace.end("queue")
            if query.deadline is not None and query.deadline.expired:
                self.deadline_rejections += 1
                metrics.counter("batcher.deadline_rejected").inc()
                if not future.done():
                    future.set_exception(
                        DeadlineExceededError("deadline expired while queued")
                    )
                continue
            try:
                self.service.split_for(query)
            except Exception as exc:
                if not future.done():
                    future.set_exception(exc)
            else:
                valid.append((query, future))
        self.batches_dispatched += 1
        self.requests_served += len(valid)
        metrics.gauge("batcher.pending").set(len(self._pending))
        if not valid:
            return
        metrics.counter("batcher.batches").inc()
        metrics.histogram(
            "batcher.batch_size", buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256)
        ).observe(len(valid))
        for query, _ in valid:
            if query.trace is not None:
                query.trace.begin("batch")
        # Run the engine pass off the event loop: a cold split training can
        # take seconds, and other connections must stay responsive.
        loop = asyncio.get_running_loop()
        task = loop.run_in_executor(
            None, self.service.rank_many, [query for query, _ in valid]
        )
        self._inflight += len(valid)
        metrics.gauge("batcher.inflight").set(self._inflight)
        self._inflight_tasks.add(task)
        task.add_done_callback(lambda done: self._deliver(valid, done))

    def _deliver(
        self, valid: "list[tuple[RankingQuery, asyncio.Future]]", done: asyncio.Future
    ) -> None:
        """Resolve each caller's future from the finished batch call."""
        self._inflight -= len(valid)
        self.service.metrics.gauge("batcher.inflight").set(self._inflight)
        self._inflight_tasks.discard(done)
        for query, _ in valid:
            if query.trace is not None:
                query.trace.end("batch")
        try:
            replies = done.result()
        except Exception as exc:
            for _, future in valid:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), reply in zip(valid, replies):
            if not future.done():
                future.set_result(reply)

    async def drain(self, timeout: float | None = None) -> None:
        """Stop admitting, flush the queue, and await in-flight batches.

        After this returns every previously admitted request has been
        resolved (reply or error); new :meth:`submit` calls are refused
        with :class:`~repro.service.errors.OverloadedError`.  *timeout*
        bounds the wait for in-flight engine calls (``None`` = wait for
        completion).
        """
        self._draining = True
        self._flush()
        outstanding = set(self._inflight_tasks)
        if not outstanding:
            return
        await asyncio.wait(outstanding, timeout=timeout)

    @property
    def pending(self) -> int:
        """Requests currently waiting for the next flush."""
        return len(self._pending)

    @property
    def inflight(self) -> int:
        """Requests dispatched to the engine but not yet answered."""
        return self._inflight

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has begun (no new admissions)."""
        return self._draining

    def snapshot(self) -> dict:
        """Admission/throughput counters (the ``health`` verb)."""
        return {
            "pending": len(self._pending),
            "inflight": self._inflight,
            "draining": self._draining,
            "batches_dispatched": self.batches_dispatched,
            "requests_served": self.requests_served,
            "requests_shed": self.requests_shed,
            "deadline_rejections": self.deadline_rejections,
            "max_queue": self.max_queue,
            "max_inflight": self.max_inflight,
        }
