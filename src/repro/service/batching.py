"""Asyncio micro-batching front end.

A serving process receives queries one at a time, but the engine underneath
is happiest answering them in bulk: queries that address the same machine
split share one trained score table, so handing them to
:meth:`~repro.service.api.PredictionService.rank_many` as a single batch
trains once instead of racing to train concurrently.  :class:`MicroBatcher`
provides that coalescing for asyncio front ends (the TCP server): requests
arriving within a small window are collected and dispatched as one stacked
batch call, and each caller awaits only its own reply.

Replies are position-aligned with the submitted queries, so coalescing is
invisible to callers: a batch of queries produces exactly the replies the
same queries would produce one at a time (the determinism tests pin this).

Examples::

    >>> import asyncio
    >>> from repro.core import BatchedLinearTransposition
    >>> from repro.data import build_default_dataset
    >>> from repro.service.api import PredictionService, RankingQuery
    >>> dataset = build_default_dataset()
    >>> service = PredictionService(dataset, {"NN^T": BatchedLinearTransposition()})
    >>> async def ask(apps):
    ...     batcher = MicroBatcher(service, window=0.001)
    ...     machines = tuple(dataset.machine_ids[:4])
    ...     return await asyncio.gather(
    ...         *(batcher.submit(RankingQuery(app, machines, top_n=1)) for app in apps)
    ...     )
    >>> replies = asyncio.run(ask(["gcc", "mcf", "lbm"]))
    >>> [reply.application for reply in replies]
    ['gcc', 'mcf', 'lbm']
"""

from __future__ import annotations

import asyncio

from repro.service.api import PredictionService, RankingQuery, RankingReply

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Coalesce concurrent ranking queries into stacked batch calls.

    Parameters
    ----------
    service:
        The :class:`~repro.service.api.PredictionService` answering the
        batches.
    window:
        Seconds to wait after the first pending request before flushing; a
        small value (default 2 ms) bounds the latency a lone request pays
        for the chance of being batched.
    max_batch:
        Flush immediately once this many requests are pending, without
        waiting for the window.

    Notes
    -----
    The batch is answered on the event loop's default thread-pool executor,
    so a cold training pass (seconds under the ``full`` preset) never
    freezes the loop — other connections keep being accepted and answered
    while a batch trains.  Invalid queries fail their own caller with
    :class:`~repro.service.api.ServiceError` — they never poison the other
    requests in the batch, and a caller that disappears (cancelled future)
    never prevents the rest of its batch from being answered.
    """

    def __init__(
        self, service: PredictionService, window: float = 0.002, max_batch: int = 64
    ) -> None:
        if window < 0:
            raise ValueError("window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.service = service
        self.window = float(window)
        self.max_batch = int(max_batch)
        self._pending: list[tuple[RankingQuery, asyncio.Future]] = []
        self._flush_handle: asyncio.TimerHandle | None = None
        #: Number of flushes dispatched (for tests and throughput benches).
        self.batches_dispatched = 0
        #: Total requests answered across all flushes.
        self.requests_served = 0

    async def submit(self, query: RankingQuery) -> RankingReply:
        """Enqueue one query and await its reply.

        The first pending request arms the flush timer; subsequent requests
        inside the window ride the same batch.  Reaching ``max_batch``
        flushes immediately.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((query, future))
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._flush_handle is None:
            self._flush_handle = loop.call_later(self.window, self._flush)
        return await future

    def _flush(self) -> None:
        """Dispatch every pending request as one batch call."""
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        # Weed out invalid queries individually so one bad request cannot
        # fail the whole batch (split_for covers name and shape validation).
        # Futures may already be done (caller gone) — never touch those.
        valid: list[tuple[RankingQuery, asyncio.Future]] = []
        for query, future in batch:
            try:
                self.service.split_for(query)
            except Exception as exc:
                if not future.done():
                    future.set_exception(exc)
            else:
                valid.append((query, future))
        self.batches_dispatched += 1
        self.requests_served += len(valid)
        if not valid:
            return
        # Run the engine pass off the event loop: a cold split training can
        # take seconds, and other connections must stay responsive.
        loop = asyncio.get_running_loop()
        task = loop.run_in_executor(
            None, self.service.rank_many, [query for query, _ in valid]
        )
        task.add_done_callback(lambda done: self._deliver(valid, done))

    @staticmethod
    def _deliver(
        valid: "list[tuple[RankingQuery, asyncio.Future]]", done: asyncio.Future
    ) -> None:
        """Resolve each caller's future from the finished batch call."""
        try:
            replies = done.result()
        except Exception as exc:  # pragma: no cover - engine failure path
            for _, future in valid:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), reply in zip(valid, replies):
            if not future.done():
                future.set_result(reply)

    @property
    def pending(self) -> int:
        """Requests currently waiting for the next flush."""
        return len(self._pending)
