"""Resilience primitives for the serving stack.

Four small, composable pieces that the front ends, the micro-batcher and
the engine seam share:

* :class:`Deadline` — an absolute wall-clock budget attached to a query
  (``deadline_ms`` on the wire).  Enforced at micro-batch admission, at
  engine dispatch, and at reply write; carried by
  :class:`~repro.service.api.RankingQuery`.
* :class:`CircuitBreaker` — trips after N *consecutive* failures, stays
  open for a cooldown, then lets exactly one half-open probe through to
  test recovery.  Thread-safe, injectable clock.
* :class:`ResilientBackend` — wraps an :class:`~repro.core.backends.
  ArrayBackend` behind a breaker: kernel failures (real or injected) count
  against the breaker and the call degrades to the **bit-exact NumPy
  reference**, so a degraded reply is byte-identical to a healthy NumPy
  reply.  The fault injector's ``backend_error`` / ``latency`` seams live
  here.
* :class:`RetryPolicy` — exponential backoff with full jitter for the
  clients (:class:`~repro.service.server.InProcessClient`,
  :class:`~repro.service.server.TCPClient`).  Safe because every ranking
  request is idempotent by content fingerprint.

Examples::

    >>> ticks = iter([0.0, 1.0, 2.5])
    >>> deadline = Deadline.after_ms(2000, clock=lambda: next(ticks))
    >>> round(deadline.remaining(), 3)                  # t=1.0 of a 2s budget
    1.0
    >>> deadline.expired                                # t=2.5: budget elapsed
    True
    >>> breaker = CircuitBreaker(failure_threshold=2, cooldown=5.0, clock=lambda: 0.0)
    >>> breaker.record_failure(); breaker.record_failure()
    >>> breaker.state
    'open'
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Iterator

import numpy as np

from repro.core.backends import ArrayBackend, NumpyBackend, resolve_backend
from repro.service.faults import FaultInjector, InjectedFault
from repro.service.observability import MetricsRegistry

__all__ = [
    "CircuitBreaker",
    "Deadline",
    "ResilientBackend",
    "RetryPolicy",
]


# ------------------------------------------------------------------ deadlines
class Deadline:
    """An absolute point in (monotonic) time a reply must beat.

    Constructed from a relative budget at request admission
    (:meth:`after_ms`); every later layer asks the same object how much
    budget remains, so clock skew between layers cannot creep in.

    Examples::

        >>> deadline = Deadline.after_ms(500, clock=lambda: 100.0)
        >>> round(deadline.remaining_ms(), 3)
        500.0
        >>> Deadline(expires_at=0.0, clock=lambda: 1.0).expired
        True
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(self, expires_at: float, clock: Callable[[], float] = time.monotonic) -> None:
        self.expires_at = float(expires_at)
        self._clock = clock

    @classmethod
    def after_ms(
        cls, budget_ms: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """Deadline *budget_ms* milliseconds from now."""
        if budget_ms <= 0:
            raise ValueError("deadline_ms must be > 0")
        return cls(clock() + budget_ms / 1000.0, clock)

    def remaining(self) -> float:
        """Seconds left before expiry (negative once past it)."""
        return self.expires_at - self._clock()

    def remaining_ms(self) -> float:
        """Milliseconds left before expiry (negative once past it)."""
        return self.remaining() * 1000.0

    @property
    def expired(self) -> bool:
        """True once the budget has fully elapsed."""
        return self.remaining() <= 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining_ms={self.remaining_ms():.1f})"


# ------------------------------------------------------------ circuit breaker
class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    States (:attr:`state`):

    * ``closed`` — healthy; every call is allowed.  *failure_threshold*
      consecutive failures trip the breaker.
    * ``open`` — tripped; calls are refused (callers degrade to their
      fallback) until *cooldown* seconds have passed.
    * ``half-open`` — after the cooldown, exactly **one** probe call is
      allowed through.  Its success closes the breaker; its failure
      re-opens it for another cooldown.

    Thread-safe.  :meth:`allow` performs the open→half-open transition, so
    callers only ever ask "may I?" and report the outcome.

    Examples::

        >>> now = [0.0]
        >>> breaker = CircuitBreaker(failure_threshold=2, cooldown=10.0, clock=lambda: now[0])
        >>> breaker.allow()
        True
        >>> breaker.record_failure(); breaker.record_failure()   # trips
        >>> breaker.allow()                                      # open: refused
        False
        >>> now[0] = 10.0
        >>> breaker.allow()                                      # half-open probe
        True
        >>> breaker.record_success()
        >>> breaker.state
        'closed'
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be > 0")
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        #: Lifetime counters (monitoring / the ``health`` verb).
        self.failures = 0
        self.successes = 0
        self.trips = 0
        self.recoveries = 0

    @property
    def state(self) -> str:
        """Current state name (``closed`` / ``open`` / ``half-open``)."""
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May the protected call proceed right now?

        In the open state this performs the cooldown check and, once it
        has elapsed, grants a single half-open probe.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at < self.cooldown:
                    return False
                self._state = self.HALF_OPEN
                self._probe_inflight = True
                return True
            # half-open: one probe at a time
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record_success(self) -> None:
        """Report a successful protected call."""
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            if self._state == self.HALF_OPEN:
                self.recoveries += 1
            self._state = self.CLOSED
            self._probe_inflight = False

    def record_failure(self) -> None:
        """Report a failed protected call (trips after the threshold)."""
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            if self._state == self.HALF_OPEN:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.trips += 1
            elif (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.trips += 1
            self._probe_inflight = False

    def snapshot(self) -> dict:
        """Counters and state as one JSON-serialisable dict."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failures": self.failures,
                "successes": self.successes,
                "trips": self.trips,
                "recoveries": self.recoveries,
                "failure_threshold": self.failure_threshold,
                "cooldown": self.cooldown,
            }


# ------------------------------------------------------------ backend wrapper
class ResilientBackend:
    """An :class:`~repro.core.backends.ArrayBackend` behind a circuit breaker.

    Wraps a *primary* backend (the configured one — NumPy, torch, ...) and
    degrades to a *fallback* (default: a clean
    :class:`~repro.core.backends.NumpyBackend`, the bit-exact reference)
    whenever the primary fails or the breaker refuses the call.  The fault
    injector's ``backend_error`` and ``latency`` seams fire on the primary
    path only, so the degraded path stays clean — which is exactly what
    makes degraded replies bit-identical to healthy NumPy replies.

    Implements the :class:`~repro.core.backends.ArrayBackend` protocol, so
    an instance slots anywhere a backend name would
    (``MethodParams.backend``, ``standard_methods(..., backend=...)``).

    Examples::

        >>> backend = ResilientBackend()
        >>> backend.name
        'resilient:numpy'
        >>> backend.breaker.state
        'closed'
    """

    def __init__(
        self,
        primary: "str | ArrayBackend | None" = None,
        fallback: ArrayBackend | None = None,
        breaker: CircuitBreaker | None = None,
        injector: FaultInjector | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.primary = resolve_backend(primary)
        self.fallback = fallback if fallback is not None else NumpyBackend()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.injector = injector
        self.metrics = metrics
        self.name = f"resilient:{self.primary.name}"
        #: Calls answered by the primary / degraded to the fallback.
        self.primary_calls = 0
        self.fallback_calls = 0

    def _record(self, started: float, primary: bool) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(
            "backend.primary_calls" if primary else "backend.fallback_calls"
        ).inc()
        self.metrics.histogram("backend.kernel_ms").observe(
            (time.monotonic() - started) * 1000.0
        )

    def _kernel(self, kernel: str, *args):
        started = time.monotonic()
        if self.breaker.allow():
            try:
                if self.injector is not None:
                    self.injector.inject_latency()
                    if self.injector.fires("backend_error"):
                        raise InjectedFault(f"injected backend fault in {kernel}")
                result = getattr(self.primary, kernel)(*args)
            except Exception:
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
                self.primary_calls += 1
                self._record(started, primary=True)
                return result
        self.fallback_calls += 1
        result = getattr(self.fallback, kernel)(*args)
        self._record(started, primary=False)
        return result

    def mlp_sgd(self, *args) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """Stacked-network SGD kernel, degraded to the reference on failure.

        The initial weight tensors are consumed by the primary attempt, so
        copies are handed to each backend — a failed primary attempt must
        not corrupt the inputs the fallback then trains on.
        """
        started = time.monotonic()
        x_samples, y_samples, w_hidden, b_hidden, w_output, b_output, *rest = args
        weights = (w_hidden, b_hidden, w_output, b_output)
        protected = tuple(np.copy(w) for w in weights)
        if self.breaker.allow():
            try:
                if self.injector is not None:
                    self.injector.inject_latency()
                    if self.injector.fires("backend_error"):
                        raise InjectedFault("injected backend fault in mlp_sgd")
                result = self.primary.mlp_sgd(x_samples, y_samples, *protected, *rest)
            except Exception:
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
                self.primary_calls += 1
                self._record(started, primary=True)
                return result
        self.fallback_calls += 1
        result = self.fallback.mlp_sgd(x_samples, y_samples, *weights, *rest)
        self._record(started, primary=False)
        return result

    def nnt_downdated_statistics(self, pred, target, rows):
        """Leave-one-out statistics kernel, degraded to the reference."""
        return self._kernel("nnt_downdated_statistics", pred, target, rows)

    def snapshot(self) -> dict:
        """Breaker state + call routing counters (the ``health`` verb)."""
        return {
            "primary": self.primary.name,
            "fallback": self.fallback.name,
            "primary_calls": self.primary_calls,
            "fallback_calls": self.fallback_calls,
            "breaker": self.breaker.snapshot(),
        }


# --------------------------------------------------------------------- retry
class RetryPolicy:
    """Exponential backoff with full jitter (deterministic under a seed).

    Attempt *i* (0-based) sleeps ``uniform(0, min(max_delay, base_delay *
    2**i))`` before retrying — the classic full-jitter schedule that
    decorrelates a thundering herd of retrying clients.  Retrying is safe
    for every ranking request because requests are idempotent by content
    fingerprint: asking again can only re-read (or re-train) the same
    cached state.

    Examples::

        >>> policy = RetryPolicy(max_attempts=3, base_delay=1.0, seed=7)
        >>> delays = list(policy.delays())
        >>> len(delays)                       # one sleep between attempts
        2
        >>> all(0.0 <= d <= 2.0 for d in delays)
        True
        >>> list(policy.delays()) == delays   # seeded: reproducible
        True
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        seed: int | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.seed = seed

    def delays(self) -> Iterator[float]:
        """The backoff sleeps between attempts (``max_attempts - 1`` values)."""
        rng = random.Random(self.seed) if self.seed is not None else random.Random()
        for attempt in range(self.max_attempts - 1):
            ceiling = min(self.max_delay, self.base_delay * (2**attempt))
            yield rng.uniform(0.0, ceiling)
