"""``repro-serve`` — the prediction server and its wire protocol.

Runs a :class:`~repro.service.api.PredictionService` behind one of two
front ends, both speaking newline-delimited JSON (one object per line):

* **stdio** (default): read queries from stdin, write replies to stdout —
  composes with shell pipelines and is what the examples and docs drive;
* **TCP** (``--tcp HOST:PORT``): an asyncio server where concurrent client
  requests are coalesced by the :class:`~repro.service.batching.
  MicroBatcher` into stacked batch calls.

Request objects::

    {"application": "gcc", "predictive_machines": ["m001", "m002"],
     "target_machines": ["m010", "m011"],        # optional: default = rest
     "method": "NN^T", "top_n": 3}               # both optional
    {"stats": true}                              # cache/serving counters

Reply objects (one line per request, in request order)::

    {"ok": true, "application": "gcc", "method": "NN^T", "cache_hit": false,
     "ranking": [{"machine": "m011", "score": 41.2}, ...]}
    {"ok": false, "error": "unknown application 'gzip'"}

Invoke as ``python -m repro.service`` (the installed alias is
``repro-serve``) or through the experiments CLI as
``repro-experiments serve``; see ``docs/serving.md`` for a walkthrough.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import sys
from typing import Any, Mapping, TextIO

from repro.data.spec_dataset import build_default_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import standard_methods
from repro.service.api import PredictionService, RankingQuery, RankingReply, ServiceError
from repro.service.batching import MicroBatcher
from repro.service.cache import SplitContextCache

__all__ = [
    "InProcessClient",
    "build_service",
    "main",
    "query_from_payload",
    "reply_to_payload",
    "serve_stdio",
    "serve_tcp",
]


# ------------------------------------------------------------------ protocol
def query_from_payload(payload: Mapping[str, Any]) -> RankingQuery:
    """Parse one request object into a :class:`~repro.service.api.RankingQuery`.

    Raises :class:`~repro.service.api.ServiceError` on malformed payloads so
    front ends can answer with an error line instead of dying.

    Examples::

        >>> query = query_from_payload(
        ...     {"application": "gcc", "predictive_machines": ["m001"], "top_n": 2}
        ... )
        >>> (query.application, query.method, query.top_n)
        ('gcc', 'NN^T', 2)
    """
    if not isinstance(payload, Mapping):
        raise ServiceError("request must be a JSON object")
    unknown = set(payload) - {
        "application",
        "predictive_machines",
        "target_machines",
        "method",
        "top_n",
    }
    if unknown:
        raise ServiceError(f"unknown request fields: {sorted(unknown)}")
    try:
        application = payload["application"]
        predictive = payload["predictive_machines"]
    except KeyError as exc:
        raise ServiceError(f"missing required field {exc.args[0]!r}") from None
    if not isinstance(application, str):
        raise ServiceError("application must be a string")
    if not isinstance(predictive, (list, tuple)) or not all(
        isinstance(mid, str) for mid in predictive
    ):
        raise ServiceError("predictive_machines must be a list of machine ids")
    targets = payload.get("target_machines")
    if targets is not None and (
        not isinstance(targets, (list, tuple))
        or not all(isinstance(mid, str) for mid in targets)
    ):
        raise ServiceError("target_machines must be a list of machine ids")
    top_n = payload.get("top_n")
    if top_n is not None and (isinstance(top_n, bool) or not isinstance(top_n, int)):
        raise ServiceError("top_n must be an integer")
    method = payload.get("method", "NN^T")
    if not isinstance(method, str):
        raise ServiceError("method must be a string")
    return RankingQuery(
        application=application,
        predictive_machines=tuple(predictive),
        target_machines=tuple(targets) if targets is not None else None,
        method=method,
        top_n=top_n,
    )


def reply_to_payload(reply: RankingReply) -> dict[str, Any]:
    """Serialise one reply to its wire object.

    Examples::

        >>> from repro.service.api import RankingReply
        >>> payload = reply_to_payload(RankingReply(
        ...     application="gcc", method="NN^T", machine_ids=("m9",),
        ...     scores=(40.0,), cache_hit=True, split_fingerprint="ab",
        ... ))
        >>> payload["ok"], payload["ranking"]
        (True, [{'machine': 'm9', 'score': 40.0}])
    """
    return {
        "ok": True,
        "application": reply.application,
        "method": reply.method,
        "cache_hit": reply.cache_hit,
        "split_fingerprint": reply.split_fingerprint,
        "ranking": [
            {"machine": mid, "score": score}
            for mid, score in zip(reply.machine_ids, reply.scores)
        ],
    }


def _error_payload(message: str) -> dict[str, Any]:
    return {"ok": False, "error": message}


def _stats_payload(service: PredictionService) -> dict[str, Any]:
    """The ``{"stats": true}`` reply: split-state cache counters + line-up.

    Exposes the full :class:`~repro.service.cache.SplitContextCache`
    accounting — aggregate hit/miss/eviction/expiration counters, the
    derived hit rate, capacity, and the per-shard breakdown (which reveals
    routing skew the aggregate hides).
    """
    stats = service.cache_stats()
    lookups = stats.hits + stats.misses
    return {
        "ok": True,
        "stats": {
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "expirations": stats.expirations,
            "entries": stats.entries,
            "hit_rate": (stats.hits / lookups) if lookups else None,
            "capacity": service.cache.capacity,
            "shards": [
                {
                    "hits": shard.hits,
                    "misses": shard.misses,
                    "evictions": shard.evictions,
                    "expirations": shard.expirations,
                    "entries": shard.entries,
                }
                for shard in service.cache.shard_stats()
            ],
            "methods": sorted(service.methods),
        },
    }


def _answer_line(service: PredictionService, line: str) -> dict[str, Any]:
    """One request line in, one reply object out (never raises)."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        return _error_payload(f"invalid JSON: {exc}")
    if isinstance(payload, Mapping) and payload.get("stats"):
        return _stats_payload(service)
    try:
        return reply_to_payload(service.rank(query_from_payload(payload)))
    except ServiceError as exc:
        return _error_payload(str(exc))


# ------------------------------------------------------------------- clients
class InProcessClient:
    """Synchronous client driving a service through the wire protocol.

    Useful in examples and tests: requests and replies take exactly the
    shape the stdio/TCP servers exchange, without a process boundary.

    Examples::

        >>> from repro.core import BatchedLinearTransposition
        >>> from repro.data import build_default_dataset
        >>> dataset = build_default_dataset()
        >>> client = InProcessClient(
        ...     PredictionService(dataset, {"NN^T": BatchedLinearTransposition()})
        ... )
        >>> reply = client.request({
        ...     "application": "gcc",
        ...     "predictive_machines": dataset.machine_ids[:4],
        ...     "top_n": 1,
        ... })
        >>> reply["ok"], len(reply["ranking"])
        (True, 1)
    """

    def __init__(self, service: PredictionService) -> None:
        self.service = service

    def request(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Send one request object, get its reply object."""
        return _answer_line(self.service, json.dumps(payload))

    def rank(self, query: RankingQuery) -> RankingReply:
        """Typed convenience bypassing JSON: answer one query directly."""
        return self.service.rank(query)


# ------------------------------------------------------------------ frontends
def serve_stdio(
    service: PredictionService,
    in_stream: TextIO | None = None,
    out_stream: TextIO | None = None,
) -> int:
    """Answer newline-delimited JSON queries from *in_stream* until EOF.

    Blank lines are ignored; every non-blank line yields exactly one reply
    line.  Returns the number of replies written (handy for tests).

    Examples::

        >>> import io
        >>> from repro.core import BatchedLinearTransposition
        >>> from repro.data import build_default_dataset
        >>> service = PredictionService(
        ...     build_default_dataset(), {"NN^T": BatchedLinearTransposition()}
        ... )
        >>> out = io.StringIO()
        >>> serve_stdio(service, io.StringIO('{"stats": true}\\n'), out)
        1
        >>> json.loads(out.getvalue())["ok"]
        True
    """
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    served = 0
    for line in in_stream:
        if not line.strip():
            continue
        print(json.dumps(_answer_line(service, line)), file=out_stream, flush=True)
        served += 1
    return served


async def serve_tcp(
    service: PredictionService,
    host: str = "127.0.0.1",
    port: int = 8077,
    window: float = 0.002,
    max_batch: int = 64,
    batcher: MicroBatcher | None = None,
) -> "asyncio.AbstractServer":
    """Start the TCP front end and return the listening server.

    Each connection exchanges the same newline-delimited JSON protocol as
    the stdio front end, but ranking requests from *all* connections funnel
    through one :class:`~repro.service.batching.MicroBatcher` (pass
    *batcher* to share or observe it), so clients hammering the same split
    coalesce into shared stacked passes.  Requests pipelined on one
    connection are dispatched as they arrive — they can share a batch —
    while replies are written strictly in request order.  The caller owns
    the returned server (``async with server: await
    server.serve_forever()``).

    Examples::

        >>> from repro.core import BatchedLinearTransposition
        >>> from repro.data import build_default_dataset
        >>> service = PredictionService(
        ...     build_default_dataset(), {"NN^T": BatchedLinearTransposition()}
        ... )
        >>> async def probe():
        ...     server = await serve_tcp(service, "127.0.0.1", 0)
        ...     bound = server.sockets[0].getsockname()[1]
        ...     server.close()
        ...     await server.wait_closed()
        ...     return bound > 0
        >>> asyncio.run(probe())
        True
    """
    batcher = batcher if batcher is not None else MicroBatcher(
        service, window=window, max_batch=max_batch
    )

    async def answer(text: str) -> dict[str, Any]:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            return _error_payload(f"invalid JSON: {exc}")
        if isinstance(payload, Mapping) and payload.get("stats"):
            return _stats_payload(service)
        try:
            return reply_to_payload(await batcher.submit(query_from_payload(payload)))
        except ServiceError as exc:
            return _error_payload(str(exc))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # pragma: no cover - engine failure path
            # Answer tasks are awaited by the writer loop; an escaping
            # exception would kill the whole connection instead of the one
            # request that triggered it.
            return _error_payload(f"internal error: {exc}")

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        # One task per request line keeps pipelined requests of the same
        # connection eligible for micro-batch coalescing; the writer loop
        # preserves request order on the way out.
        pending: "asyncio.Queue[asyncio.Task | None]" = asyncio.Queue()

        async def write_replies() -> None:
            while True:
                task = await pending.get()
                if task is None:
                    return
                writer.write((json.dumps(await task) + "\n").encode())
                await writer.drain()

        write_loop = asyncio.ensure_future(write_replies())
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode().strip()
                if text:
                    pending.put_nowait(asyncio.ensure_future(answer(text)))
            pending.put_nowait(None)
            await write_loop
        finally:
            write_loop.cancel()
            writer.close()
            # Last statement of the handler: suppressing cancellation here
            # only silences the teardown race when the server closes while
            # a connection is still draining.
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):  # pragma: no cover
                pass

    return await asyncio.start_server(handle, host, port)


# ---------------------------------------------------------------------- main
def build_service(
    preset: str = "fast",
    cache_capacity: int = 64,
    cache_ttl: float | None = None,
    cache_shards: int = 4,
    seed: int | None = None,
) -> PredictionService:
    """Assemble the default serving stack for one configuration preset.

    The method line-up and hyper-parameters come from
    :class:`~repro.experiments.config.ExperimentConfig` (``smoke`` /
    ``fast`` / ``full``), so a served answer under preset *P* matches the
    offline tables regenerated under *P*.

    Examples::

        >>> service = build_service(preset="smoke", cache_capacity=8, cache_shards=2)
        >>> sorted(service.methods)
        ['GA-kNN', 'MLP^T', 'NN^T']
        >>> service.cache.capacity
        8
    """
    presets = {
        "fast": ExperimentConfig.fast,
        "full": ExperimentConfig.full,
        "smoke": ExperimentConfig.smoke,
    }
    if preset not in presets:
        raise ValueError(f"unknown preset {preset!r} (choose from {sorted(presets)})")
    config = presets[preset]()
    if seed is not None:
        config = dataclasses.replace(config, seed=seed)
    dataset = build_default_dataset(noise_sigma=config.noise_sigma, seed=config.seed)
    cache = SplitContextCache(capacity=cache_capacity, ttl=cache_ttl, n_shards=cache_shards)
    return PredictionService(dataset, standard_methods(config), cache=cache)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve machine-ranking predictions over newline-delimited JSON.",
    )
    parser.add_argument(
        "--preset",
        choices=["smoke", "fast", "full"],
        default="fast",
        help="method hyper-parameter preset (default: fast)",
    )
    parser.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        default=None,
        help="serve over TCP instead of stdin/stdout",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=0.002,
        help="micro-batch coalescing window in seconds (TCP mode, default 2ms)",
    )
    parser.add_argument(
        "--cache-capacity", type=int, default=64, help="max cached splits (default 64)"
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        help="cached split lifetime in seconds (default: no expiry)",
    )
    parser.add_argument(
        "--cache-shards", type=int, default=4, help="cache lock shards (default 4)"
    )
    parser.add_argument("--seed", type=int, default=None, help="override the dataset seed")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-serve`` / ``python -m repro.service.server``."""
    args = _build_parser().parse_args(argv)
    service = build_service(
        preset=args.preset,
        cache_capacity=args.cache_capacity,
        cache_ttl=args.cache_ttl,
        cache_shards=args.cache_shards,
        seed=args.seed,
    )
    if args.tcp is None:
        serve_stdio(service)
        return 0

    host, _, port_text = args.tcp.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"--tcp expects HOST:PORT, got {args.tcp!r}", file=sys.stderr)
        return 2

    async def run() -> None:
        server = await serve_tcp(service, host, int(port_text), window=args.window)
        addresses = ", ".join(
            f"{sock.getsockname()[0]}:{sock.getsockname()[1]}" for sock in server.sockets
        )
        print(f"repro-serve listening on {addresses}", file=sys.stderr)
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
