"""``repro-serve`` — the prediction server and its wire protocol.

Runs a :class:`~repro.service.api.PredictionService` behind one of two
front ends, both speaking newline-delimited JSON (one object per line):

* **stdio** (default): read queries from stdin, write replies to stdout —
  composes with shell pipelines and is what the examples and docs drive;
* **TCP** (``--tcp HOST:PORT``): an asyncio server where concurrent client
  requests are coalesced by the :class:`~repro.service.batching.
  MicroBatcher` into stacked batch calls.

Request objects::

    {"application": "gcc", "predictive_machines": ["m001", "m002"],
     "target_machines": ["m010", "m011"],        # optional: default = rest
     "method": "NN^T", "top_n": 3,               # both optional
     "deadline_ms": 250}                         # optional reply budget
    {"op": "stats"}                              # cache/serving counters
    {"op": "health"}                             # resilience state
    {"op": "ready"}                              # accepting requests?
    {"op": "metrics"}                            # counters/histograms/traces

Reply objects (one line per request, in request order)::

    {"ok": true, "application": "gcc", "method": "NN^T", "cache_hit": false,
     "degraded": false, "ranking": [{"machine": "m011", "score": 41.2}, ...],
     "trace": {"id": "…", "spans": [{"stage": "engine", "ms": 1.4}, ...]}}
    {"ok": false, "code": "INVALID_REQUEST", "error": "unknown application 'gzip'"}

Every error reply carries a stable machine-readable ``code`` from
:data:`repro.service.errors.ERROR_CODES`; clients branch on the code, not
the message.  ``{"stats": true}`` is accepted as a legacy alias of
``{"op": "stats"}``.  Every ranking reply — success or error — echoes a
``trace`` object: a server-assigned id (or the request's own ``trace_id``
field, if it sent one) plus the per-stage latency spans of
:data:`repro.service.observability.TRACE_STAGES`, so a deadline miss is
attributable to the stage that spent the budget.

Invoke as ``python -m repro.service`` (the installed alias is
``repro-serve``) or through the experiments CLI as
``repro-experiments serve``; see ``docs/serving.md`` for a walkthrough
(including the "Resilience & failure modes" section: deadlines, load
shedding, the backend circuit breaker, and fault injection via
``REPRO_FAULTS``).
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import signal
import socket
import sys
import time
from typing import Any, AsyncIterator, Callable, Iterator, Mapping, TextIO

from repro.data.spec_dataset import build_default_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import standard_methods
from repro.service.api import PredictionService, RankingQuery, RankingReply, ServiceError
from repro.service.batching import MicroBatcher
from repro.service.cache import SplitContextCache
from repro.service.errors import ERROR_CODES, RETRYABLE_CODES
from repro.service.faults import FaultInjector, injector_from_env
from repro.service.observability import MetricsRegistry, PeriodicSnapshot, Trace
from repro.service.resilience import CircuitBreaker, Deadline, ResilientBackend, RetryPolicy

__all__ = [
    "DEFAULT_MAX_LINE_BYTES",
    "InProcessClient",
    "TCPClient",
    "build_service",
    "main",
    "query_from_payload",
    "reply_to_payload",
    "serve_stdio",
    "serve_tcp",
]

#: Default bound on one request line; a longer line is answered with a
#: ``PAYLOAD_TOO_LARGE`` error instead of being buffered without limit.
DEFAULT_MAX_LINE_BYTES = 1_048_576


# ------------------------------------------------------------------ protocol
def query_from_payload(payload: Mapping[str, Any]) -> RankingQuery:
    """Parse one request object into a :class:`~repro.service.api.RankingQuery`.

    Raises :class:`~repro.service.api.ServiceError` on malformed payloads so
    front ends can answer with an error line instead of dying.

    Examples::

        >>> query = query_from_payload(
        ...     {"application": "gcc", "predictive_machines": ["m001"], "top_n": 2}
        ... )
        >>> (query.application, query.method, query.top_n)
        ('gcc', 'NN^T', 2)
        >>> timed = query_from_payload(
        ...     {"application": "gcc", "predictive_machines": ["m001"],
        ...      "deadline_ms": 250}
        ... )
        >>> timed.deadline.remaining() <= 0.25
        True
    """
    if not isinstance(payload, Mapping):
        raise ServiceError("request must be a JSON object")
    unknown = set(payload) - {
        "application",
        "predictive_machines",
        "target_machines",
        "method",
        "top_n",
        "deadline_ms",
        "trace_id",  # consumed by the front ends (_trace_for), tolerated here
    }
    if unknown:
        raise ServiceError(f"unknown request fields: {sorted(unknown)}")
    try:
        application = payload["application"]
        predictive = payload["predictive_machines"]
    except KeyError as exc:
        raise ServiceError(f"missing required field {exc.args[0]!r}") from None
    if not isinstance(application, str):
        raise ServiceError("application must be a string")
    if not isinstance(predictive, (list, tuple)) or not all(
        isinstance(mid, str) for mid in predictive
    ):
        raise ServiceError("predictive_machines must be a list of machine ids")
    targets = payload.get("target_machines")
    if targets is not None and (
        not isinstance(targets, (list, tuple))
        or not all(isinstance(mid, str) for mid in targets)
    ):
        raise ServiceError("target_machines must be a list of machine ids")
    top_n = payload.get("top_n")
    if top_n is not None and (isinstance(top_n, bool) or not isinstance(top_n, int)):
        raise ServiceError("top_n must be an integer")
    method = payload.get("method", "NN^T")
    if not isinstance(method, str):
        raise ServiceError("method must be a string")
    deadline_ms = payload.get("deadline_ms")
    deadline = None
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, (int, float)):
            raise ServiceError("deadline_ms must be a number of milliseconds")
        if deadline_ms <= 0:
            raise ServiceError("deadline_ms must be > 0")
        deadline = Deadline.after_ms(float(deadline_ms))
    return RankingQuery(
        application=application,
        predictive_machines=tuple(predictive),
        target_machines=tuple(targets) if targets is not None else None,
        method=method,
        top_n=top_n,
        deadline=deadline,
    )


def reply_to_payload(reply: RankingReply) -> dict[str, Any]:
    """Serialise one reply to its wire object.

    A degraded reply (fallback method served under deadline pressure)
    carries ``"degraded": true`` plus the ``served_method`` that actually
    produced the scores.

    Examples::

        >>> from repro.service.api import RankingReply
        >>> payload = reply_to_payload(RankingReply(
        ...     application="gcc", method="NN^T", machine_ids=("m9",),
        ...     scores=(40.0,), cache_hit=True, split_fingerprint="ab",
        ... ))
        >>> payload["ok"], payload["ranking"], payload["degraded"]
        (True, [{'machine': 'm9', 'score': 40.0}], False)
    """
    payload = {
        "ok": True,
        "application": reply.application,
        "method": reply.method,
        "cache_hit": reply.cache_hit,
        "degraded": reply.degraded,
        "split_fingerprint": reply.split_fingerprint,
        "ranking": [
            {"machine": mid, "score": score}
            for mid, score in zip(reply.machine_ids, reply.scores)
        ],
    }
    if reply.degraded:
        payload["served_method"] = reply.served_method
    return payload


def _error_payload(message: str, code: str = "INVALID_REQUEST") -> dict[str, Any]:
    """One error reply object; *code* must come from the documented taxonomy."""
    assert code in ERROR_CODES, f"undocumented error code {code!r}"
    return {"ok": False, "code": code, "error": message}


def _error_from_exception(exc: Exception) -> dict[str, Any]:
    """The error reply an exception maps to (its ``code`` attribute, else INTERNAL)."""
    code = getattr(exc, "code", "INTERNAL")
    if code not in ERROR_CODES:
        code = "INTERNAL"
    return _error_payload(str(exc), code=code)


def _stats_payload(service: PredictionService) -> dict[str, Any]:
    """The ``{"op": "stats"}`` reply: split-state cache counters + line-up.

    Exposes the full :class:`~repro.service.cache.SplitContextCache`
    accounting — aggregate hit/miss/eviction/expiration counters, the
    derived hit rate, capacity, and the per-shard breakdown (which reveals
    routing skew the aggregate hides).
    """
    stats = service.cache.snapshot()
    stats["methods"] = sorted(service.methods)
    return {"ok": True, "stats": stats}


def _metrics_payload(
    service: PredictionService, batcher: MicroBatcher | None = None
) -> dict[str, Any]:
    """The ``{"op": "metrics"}`` reply: the whole stack's observability state.

    One snapshot combining the shared
    :class:`~repro.service.observability.MetricsRegistry` (counters, gauges,
    latency histograms with p50/p95/p99) with the cache, batcher, and
    resilient-backend accounting — everything a load generator needs to
    reconcile its client-side measurements against the server's own.

    Examples::

        >>> from repro.core import BatchedLinearTransposition
        >>> service = PredictionService(
        ...     build_default_dataset(), {"NN^T": BatchedLinearTransposition()}
        ... )
        >>> payload = _metrics_payload(service)
        >>> payload["ok"], sorted(payload["metrics"])[:3]
        (True, ['cache', 'counters', 'gauges'])
    """
    snapshot = service.metrics.snapshot()
    snapshot["cache"] = service.cache.snapshot()
    backend = getattr(service, "resilient_backend", None)
    if backend is not None:
        snapshot["backend"] = backend.snapshot()
    if batcher is not None:
        snapshot["batcher"] = batcher.snapshot()
    return {"ok": True, "metrics": snapshot}


def _health_payload(
    service: PredictionService, batcher: MicroBatcher | None = None
) -> dict[str, Any]:
    """The ``{"op": "health"}`` reply: resilience state of the whole stack.

    ``status`` is ``"ok"`` while the backend breaker is closed,
    ``"degraded"`` while it is open or probing (requests are served by the
    NumPy fallback), and ``"draining"`` once shutdown has begun.

    Examples::

        >>> from repro.core import BatchedLinearTransposition
        >>> service = PredictionService(
        ...     build_default_dataset(), {"NN^T": BatchedLinearTransposition()}
        ... )
        >>> health = _health_payload(service)
        >>> (health["ok"], health["status"], health["ready"])
        (True, 'ok', True)
    """
    backend = getattr(service, "resilient_backend", None)
    injector: FaultInjector | None = getattr(service, "fault_injector", None)
    draining = batcher.draining if batcher is not None else False
    breaker_state = backend.breaker.state if backend is not None else "closed"
    if draining:
        status = "draining"
    elif breaker_state != CircuitBreaker.CLOSED:
        status = "degraded"
    else:
        status = "ok"
    payload: dict[str, Any] = {
        "ok": True,
        "status": status,
        "ready": not draining,
        "degraded_served": service.degraded_served,
        "corrupt_entries_dropped": service.corrupt_entries_dropped,
        "cache": {
            "entries": service.cache_stats().entries,
            "injected_evictions": service.cache.injected_evictions,
            "injected_corruptions": service.cache.injected_corruptions,
        },
    }
    if backend is not None:
        payload["backend"] = backend.snapshot()
    if batcher is not None:
        payload["batcher"] = batcher.snapshot()
    if injector is not None:
        payload["faults"] = {"plan": dataclasses.asdict(injector.plan),
                             "injected": injector.snapshot()}
    return payload


def _ready_payload(
    service: PredictionService, batcher: MicroBatcher | None = None
) -> dict[str, Any]:
    """The ``{"op": "ready"}`` reply: is the stack accepting new requests?"""
    draining = batcher.draining if batcher is not None else False
    return {"ok": True, "ready": not draining}


def _handle_op(
    service: PredictionService,
    payload: Mapping[str, Any],
    batcher: MicroBatcher | None = None,
) -> dict[str, Any] | None:
    """Dispatch a protocol verb; ``None`` when the payload is a ranking query."""
    op = payload.get("op")
    if op is None and payload.get("stats"):
        op = "stats"  # legacy {"stats": true} form
    if op is None:
        return None
    if op == "stats":
        return _stats_payload(service)
    if op == "health":
        return _health_payload(service, batcher)
    if op == "ready":
        return _ready_payload(service, batcher)
    if op == "metrics":
        return _metrics_payload(service, batcher)
    return _error_payload(f"unknown op {op!r} (known: health, metrics, ready, stats)")


def _trace_for(payload: Any) -> Trace:
    """The request's :class:`~repro.service.observability.Trace`.

    Honours a client-supplied ``trace_id`` string (so callers can correlate
    replies with their own logs); anything else gets a server-assigned id.
    """
    trace_id = payload.get("trace_id") if isinstance(payload, Mapping) else None
    if not isinstance(trace_id, str) or not trace_id:
        trace_id = None
    return Trace(trace_id=trace_id)


def _finish_reply(
    service: PredictionService,
    trace: Trace,
    started: float,
    payload: dict[str, Any],
) -> dict[str, Any]:
    """Stamp the trace onto a ranking reply and record request metrics.

    Every ranking request — success or typed error — passes through here
    exactly once, which is what makes the ``server.*`` counters reconcile
    with a load generator's client-side counts.  Protocol verbs do not:
    they are monitoring traffic, not load.
    """
    trace.close()
    payload["trace"] = trace.to_payload()
    metrics = service.metrics
    metrics.counter("server.requests").inc()
    if payload.get("ok"):
        metrics.counter("server.ok").inc()
    else:
        metrics.counter("server.errors").inc()
        metrics.counter(f"server.error.{payload.get('code', 'INTERNAL')}").inc()
    metrics.histogram("server.request_ms").observe((time.monotonic() - started) * 1000.0)
    metrics.observe_trace(trace)
    return payload


def _answer_line(service: PredictionService, line: str) -> dict[str, Any]:
    """One request line in, one reply object out (never raises)."""
    started = time.monotonic()
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        return _finish_reply(
            service,
            Trace(),
            started,
            _error_payload(f"invalid JSON: {exc}", code="INVALID_JSON"),
        )
    if isinstance(payload, Mapping):
        op_reply = _handle_op(service, payload)
        if op_reply is not None:
            return op_reply
    trace = _trace_for(payload)
    trace.begin("admission")
    try:
        query = query_from_payload(payload)
        trace.end("admission")
        query = dataclasses.replace(query, trace=trace)
        reply = service.rank(query)
        if query.deadline is not None and query.deadline.expired:
            return _finish_reply(
                service,
                trace,
                started,
                _error_payload(
                    "deadline exceeded before the reply could be written",
                    code="DEADLINE_EXCEEDED",
                ),
            )
        with trace.span("reply"):
            reply_payload = reply_to_payload(reply)
        return _finish_reply(service, trace, started, reply_payload)
    except ServiceError as exc:
        return _finish_reply(service, trace, started, _error_from_exception(exc))
    except Exception as exc:  # noqa: BLE001 - a request must never kill the loop
        return _finish_reply(
            service, trace, started, _error_payload(f"internal error: {exc}", code="INTERNAL")
        )


# ------------------------------------------------------------------- clients
class InProcessClient:
    """Synchronous client driving a service through the wire protocol.

    Useful in examples and tests: requests and replies take exactly the
    shape the stdio/TCP servers exchange, without a process boundary.
    When built with a :class:`~repro.service.resilience.RetryPolicy`, a
    reply whose error code is retryable (``OVERLOADED`` /
    ``BACKEND_FAILURE`` / ``INTERNAL``) is retried with full-jitter
    exponential backoff — safe because every ranking request is idempotent
    by content fingerprint.

    Examples::

        >>> from repro.core import BatchedLinearTransposition
        >>> from repro.data import build_default_dataset
        >>> dataset = build_default_dataset()
        >>> client = InProcessClient(
        ...     PredictionService(dataset, {"NN^T": BatchedLinearTransposition()})
        ... )
        >>> reply = client.request({
        ...     "application": "gcc",
        ...     "predictive_machines": dataset.machine_ids[:4],
        ...     "top_n": 1,
        ... })
        >>> reply["ok"], len(reply["ranking"])
        (True, 1)
    """

    def __init__(
        self,
        service: PredictionService,
        retry: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.service = service
        self.retry = retry
        self._sleep = sleep
        #: Requests re-sent after a retryable error reply.
        self.retries = 0

    def request(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Send one request object, get its reply object (retrying if configured)."""
        line = json.dumps(payload)
        reply = _answer_line(self.service, line)
        if self.retry is None:
            return reply
        for delay in self.retry.delays():
            if reply.get("ok") or reply.get("code") not in RETRYABLE_CODES:
                return reply
            self._sleep(delay)
            self.retries += 1
            reply = _answer_line(self.service, line)
        return reply

    def rank(self, query: RankingQuery) -> RankingReply:
        """Typed convenience bypassing JSON: answer one query directly."""
        return self.service.rank(query)


class TCPClient:
    """Blocking JSON-lines client for the TCP front end, with retries.

    Maintains one connection, re-establishing it transparently when the
    server (or an injected ``conn_drop`` fault) closes it mid-conversation.
    Connection failures and retryable error replies are retried under the
    :class:`~repro.service.resilience.RetryPolicy` — full-jitter backoff,
    safe because ranking requests are idempotent by content fingerprint.
    A non-retryable error reply is returned as-is; exhausting every
    attempt on connection failures re-raises the last ``OSError``.

    Use as a context manager::

        with TCPClient("127.0.0.1", 8077) as client:
            reply = client.request({"op": "health"})
    """

    def __init__(
        self,
        host: str,
        port: int,
        retry: RetryPolicy | None = None,
        timeout: float = 10.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeout = timeout
        self._sleep = sleep
        self._sock: socket.socket | None = None
        self._file = None
        #: Requests re-sent after a drop or retryable error reply.
        self.retries = 0

    # --------------------------------------------------------- connection
    def connect(self) -> None:
        """Ensure a live connection (no-op when already connected)."""
        if self._sock is not None:
            return
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        """Drop the connection (a later request reconnects)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
            self._sock = None

    def __enter__(self) -> "TCPClient":
        self.connect()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ----------------------------------------------------------- requests
    def _roundtrip(self, line: bytes) -> dict[str, Any]:
        self.connect()
        assert self._file is not None
        self._file.write(line + b"\n")
        self._file.flush()
        reply_line = self._file.readline()
        if not reply_line:
            raise ConnectionError("server closed the connection")
        return json.loads(reply_line.decode())

    def request(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Send one request object, get its reply object (with retries)."""
        line = json.dumps(payload).encode()
        delays = list(self.retry.delays())
        last_error: OSError | None = None
        for attempt in range(self.retry.max_attempts):
            try:
                reply = self._roundtrip(line)
            except (OSError, ValueError) as exc:
                # OSError covers ConnectionError + timeouts; ValueError is a
                # torn JSON line from a connection dropped mid-reply.
                self.close()
                last_error = exc if isinstance(exc, OSError) else ConnectionError(str(exc))
            else:
                if reply.get("ok") or reply.get("code") not in RETRYABLE_CODES:
                    return reply
                last_error = None
            if attempt < len(delays):
                self._sleep(delays[attempt])
                self.retries += 1
        if last_error is not None:
            raise last_error
        return reply


# ------------------------------------------------------------------ frontends
def _iter_text_lines(stream: TextIO, max_chars: int) -> Iterator[str | None]:
    """Lines of *stream*, bounded: an over-long line yields ``None`` instead.

    Reads at most ``max_chars + 1`` characters per ``readline`` call, so an
    adversarial multi-GB line never materialises in memory; its remainder
    is consumed and discarded up to the next newline.
    """
    while True:
        line = stream.readline(max_chars + 1)
        if not line:
            return
        if len(line) <= max_chars or (len(line) == max_chars + 1 and line.endswith("\n")):
            yield line
            continue
        while True:  # discard the rest of the oversized line
            rest = stream.readline(65536)
            if not rest or rest.endswith("\n"):
                break
        yield None


def serve_stdio(
    service: PredictionService,
    in_stream: TextIO | None = None,
    out_stream: TextIO | None = None,
    max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
    metrics_interval: float | None = None,
) -> int:
    """Answer newline-delimited JSON queries from *in_stream* until EOF.

    Blank lines are ignored; every non-blank line yields exactly one reply
    line (an over-long line yields a ``PAYLOAD_TOO_LARGE`` error without
    being buffered).  ``KeyboardInterrupt`` (ctrl-C / SIGTERM via the
    ``main`` signal handler) ends the loop cleanly after the in-progress
    reply.  Returns the number of replies written (handy for tests).
    *metrics_interval* (seconds, ``--metrics-interval``) enables the
    periodic snapshot log: at most once per interval, checked after each
    reply, one ``repro-serve metrics {...}`` line goes to stderr.

    Examples::

        >>> import io
        >>> from repro.core import BatchedLinearTransposition
        >>> from repro.data import build_default_dataset
        >>> service = PredictionService(
        ...     build_default_dataset(), {"NN^T": BatchedLinearTransposition()}
        ... )
        >>> out = io.StringIO()
        >>> serve_stdio(service, io.StringIO('{"op": "stats"}\\n'), out)
        1
        >>> json.loads(out.getvalue())["ok"]
        True
    """
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    snapshot_log = (
        PeriodicSnapshot(service.metrics, metrics_interval)
        if metrics_interval is not None and metrics_interval > 0
        else None
    )
    served = 0
    try:
        for line in _iter_text_lines(in_stream, max_line_bytes):
            if line is None:
                reply = _finish_reply(
                    service,
                    Trace(),
                    time.monotonic(),
                    _error_payload(
                        f"request line exceeds {max_line_bytes} bytes",
                        code="PAYLOAD_TOO_LARGE",
                    ),
                )
            elif not line.strip():
                continue
            else:
                reply = _answer_line(service, line)
            print(json.dumps(reply), file=out_stream, flush=True)
            served += 1
            if snapshot_log is not None:
                snapshot_log.maybe_emit()
    except KeyboardInterrupt:
        # Drain-and-exit: every line read so far has been answered (the
        # loop is synchronous), so simply stop reading new ones.
        pass
    return served


async def _iter_lines(
    reader: asyncio.StreamReader, max_bytes: int
) -> "AsyncIterator[bytes | None]":
    """Newline-delimited lines from *reader*, bounded like :func:`_iter_text_lines`.

    Maintains its own buffer instead of ``StreamReader.readline`` so an
    oversized line is discarded incrementally (never accumulated) and
    yields ``None`` exactly once.
    """
    buffer = bytearray()
    oversized = False
    while True:
        chunk = await reader.read(65536)
        at_eof = not chunk
        buffer.extend(chunk)
        while True:
            newline = buffer.find(b"\n")
            if newline < 0:
                break
            line = bytes(buffer[:newline])
            del buffer[: newline + 1]
            if oversized:  # tail of an already-reported oversized line
                oversized = False
                continue
            if len(line) > max_bytes:
                yield None
            else:
                yield line
        if oversized:
            buffer.clear()
        elif len(buffer) > max_bytes:
            buffer.clear()
            oversized = True
            yield None
        if at_eof:
            if not oversized and buffer:
                yield bytes(buffer)
            return


async def serve_tcp(
    service: PredictionService,
    host: str = "127.0.0.1",
    port: int = 8077,
    window: float = 0.002,
    max_batch: int = 64,
    batcher: MicroBatcher | None = None,
    max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
    max_pipeline: int = 128,
    fault_injector: FaultInjector | None = None,
) -> "asyncio.AbstractServer":
    """Start the TCP front end and return the listening server.

    Each connection exchanges the same newline-delimited JSON protocol as
    the stdio front end, but ranking requests from *all* connections funnel
    through one :class:`~repro.service.batching.MicroBatcher` (pass
    *batcher* to share or observe it), so clients hammering the same split
    coalesce into shared stacked passes.  Requests pipelined on one
    connection are dispatched as they arrive — they can share a batch —
    while replies are written strictly in request order.  The caller owns
    the returned server (``async with server: await
    server.serve_forever()``).

    Resilience behaviour: request lines longer than *max_line_bytes* are
    answered with ``PAYLOAD_TOO_LARGE`` without being buffered; at most
    *max_pipeline* requests per connection are in flight before the read
    loop stops consuming (letting TCP flow control push back on the
    client); a query whose ``deadline_ms`` elapsed is answered with
    ``DEADLINE_EXCEEDED`` instead of a stale ranking; and admission
    control in the batcher sheds with ``OVERLOADED``.  When a fault
    injector with an active ``conn_drop`` seam is present (explicitly or
    via the service), connections are dropped on schedule to exercise
    client reconnect logic.

    Examples::

        >>> from repro.core import BatchedLinearTransposition
        >>> from repro.data import build_default_dataset
        >>> service = PredictionService(
        ...     build_default_dataset(), {"NN^T": BatchedLinearTransposition()}
        ... )
        >>> async def probe():
        ...     server = await serve_tcp(service, "127.0.0.1", 0)
        ...     bound = server.sockets[0].getsockname()[1]
        ...     server.close()
        ...     await server.wait_closed()
        ...     return bound > 0
        >>> asyncio.run(probe())
        True
    """
    batcher = batcher if batcher is not None else MicroBatcher(
        service, window=window, max_batch=max_batch
    )
    injector = (
        fault_injector
        if fault_injector is not None
        else getattr(service, "fault_injector", None)
    )

    async def answer(text: str) -> dict[str, Any]:
        started = time.monotonic()
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            return _finish_reply(
                service,
                Trace(),
                started,
                _error_payload(f"invalid JSON: {exc}", code="INVALID_JSON"),
            )
        if isinstance(payload, Mapping):
            op_reply = _handle_op(service, payload, batcher)
            if op_reply is not None:
                return op_reply
        trace = _trace_for(payload)
        trace.begin("admission")
        try:
            query = query_from_payload(payload)
            trace.end("admission")
            query = dataclasses.replace(query, trace=trace)
            reply = await batcher.submit(query)
            if query.deadline is not None and query.deadline.expired:
                return _finish_reply(
                    service,
                    trace,
                    started,
                    _error_payload(
                        "deadline exceeded before the reply could be written",
                        code="DEADLINE_EXCEEDED",
                    ),
                )
            with trace.span("reply"):
                reply_payload = reply_to_payload(reply)
            return _finish_reply(service, trace, started, reply_payload)
        except ServiceError as exc:
            return _finish_reply(service, trace, started, _error_from_exception(exc))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001
            # Answer tasks are awaited by the writer loop; an escaping
            # exception would kill the whole connection instead of the one
            # request that triggered it.
            return _finish_reply(
                service,
                trace,
                started,
                _error_payload(f"internal error: {exc}", code="INTERNAL"),
            )

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        # One task per request line keeps pipelined requests of the same
        # connection eligible for micro-batch coalescing; the writer loop
        # preserves request order on the way out.  The semaphore bounds
        # per-connection pipelining: once full, the read loop stops
        # consuming and TCP flow control pushes back on the client.
        pending: "asyncio.Queue[asyncio.Future | None]" = asyncio.Queue()
        slots = asyncio.Semaphore(max_pipeline)
        loop = asyncio.get_running_loop()
        dropped = False

        async def write_replies() -> None:
            while True:
                task = await pending.get()
                if task is None:
                    return
                try:
                    payload = await task
                finally:
                    slots.release()
                writer.write((json.dumps(payload) + "\n").encode())
                await writer.drain()

        write_loop = asyncio.ensure_future(write_replies())
        try:
            async for raw in _iter_lines(reader, max_line_bytes):
                if injector is not None and injector.fires("conn_drop"):
                    dropped = True
                    break
                if raw is None:
                    await slots.acquire()
                    oversize: asyncio.Future = loop.create_future()
                    oversize.set_result(
                        _finish_reply(
                            service,
                            Trace(),
                            time.monotonic(),
                            _error_payload(
                                f"request line exceeds {max_line_bytes} bytes",
                                code="PAYLOAD_TOO_LARGE",
                            ),
                        )
                    )
                    pending.put_nowait(oversize)
                    continue
                text = raw.decode(errors="replace").strip()
                if not text:
                    continue
                await slots.acquire()
                pending.put_nowait(asyncio.ensure_future(answer(text)))
            if dropped:
                # Injected connection drop: abandon in-flight answers (their
                # callers will reconnect and retry) and cut the socket.
                write_loop.cancel()
                while not pending.empty():
                    task = pending.get_nowait()
                    if task is not None:
                        task.cancel()
            else:
                pending.put_nowait(None)
                await write_loop
        finally:
            write_loop.cancel()
            writer.close()
            # Last statement of the handler: suppressing cancellation here
            # only silences the teardown race when the server closes while
            # a connection is still draining.
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):  # pragma: no cover
                pass

    return await asyncio.start_server(handle, host, port)


# ---------------------------------------------------------------------- main
def build_service(
    preset: str = "fast",
    cache_capacity: int = 64,
    cache_ttl: float | None = None,
    cache_shards: int = 4,
    seed: int | None = None,
    backend: "str | None" = None,
    breaker_threshold: int = 3,
    breaker_cooldown: float = 5.0,
    fault_injector: FaultInjector | None = None,
) -> PredictionService:
    """Assemble the default serving stack for one configuration preset.

    The method line-up and hyper-parameters come from
    :class:`~repro.experiments.config.ExperimentConfig` (``smoke`` /
    ``fast`` / ``full``), so a served answer under preset *P* matches the
    offline tables regenerated under *P*.

    The stack is assembled resilient: the configured array backend is
    wrapped in a :class:`~repro.service.resilience.ResilientBackend`
    (circuit breaker + bit-exact NumPy degradation), and — when
    ``REPRO_FAULTS`` is set or *fault_injector* is passed — the fault
    injector is wired through the backend, the split cache, and the
    service (the TCP front end picks it up for connection drops).

    Examples::

        >>> service = build_service(preset="smoke", cache_capacity=8, cache_shards=2)
        >>> sorted(service.methods)
        ['GA-kNN', 'MLP^T', 'NN^T']
        >>> service.cache.capacity
        8
        >>> service.resilient_backend.breaker.state
        'closed'
    """
    presets = {
        "fast": ExperimentConfig.fast,
        "full": ExperimentConfig.full,
        "smoke": ExperimentConfig.smoke,
    }
    if preset not in presets:
        raise ValueError(f"unknown preset {preset!r} (choose from {sorted(presets)})")
    config = presets[preset]()
    if seed is not None:
        config = dataclasses.replace(config, seed=seed)
    injector = fault_injector if fault_injector is not None else injector_from_env()
    metrics = MetricsRegistry()
    resilient = ResilientBackend(
        primary=backend,
        breaker=CircuitBreaker(
            failure_threshold=breaker_threshold, cooldown=breaker_cooldown
        ),
        injector=injector,
        metrics=metrics,
    )
    dataset = build_default_dataset(noise_sigma=config.noise_sigma, seed=config.seed)
    cache = SplitContextCache(
        capacity=cache_capacity,
        ttl=cache_ttl,
        n_shards=cache_shards,
        fault_injector=injector,
    )
    service = PredictionService(
        dataset,
        standard_methods(config, backend=resilient),
        cache=cache,
        fault_injector=injector,
        metrics=metrics,
    )
    service.resilient_backend = resilient
    return service


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve machine-ranking predictions over newline-delimited JSON.",
    )
    parser.add_argument(
        "--preset",
        choices=["smoke", "fast", "full"],
        default="fast",
        help="method hyper-parameter preset (default: fast)",
    )
    parser.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        default=None,
        help="serve over TCP instead of stdin/stdout",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=0.002,
        help="micro-batch coalescing window in seconds (TCP mode, default 2ms)",
    )
    parser.add_argument(
        "--cache-capacity", type=int, default=64, help="max cached splits (default 64)"
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        help="cached split lifetime in seconds (default: no expiry)",
    )
    parser.add_argument(
        "--cache-shards", type=int, default=4, help="cache lock shards (default 4)"
    )
    parser.add_argument("--seed", type=int, default=None, help="override the dataset seed")
    parser.add_argument(
        "--max-line-bytes",
        type=int,
        default=DEFAULT_MAX_LINE_BYTES,
        help="bound on one request line before PAYLOAD_TOO_LARGE (default 1 MiB)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="micro-batch admission queue bound before OVERLOADED (default 256)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=1024,
        help="dispatched-but-unanswered request bound before OVERLOADED (default 1024)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive backend failures before the circuit breaker trips (default 3)",
    )
    parser.add_argument(
        "--breaker-cooldown",
        type=float,
        default=5.0,
        help="seconds an open breaker waits before a half-open probe (default 5)",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        help="seconds to wait for in-flight batches on shutdown (default 10)",
    )
    parser.add_argument(
        "--metrics-interval",
        type=float,
        default=0.0,
        help="seconds between periodic metrics snapshot lines on stderr (0 = off)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-serve`` / ``python -m repro.service.server``.

    Both front ends shut down cleanly on SIGINT/SIGTERM: the stdio loop
    stops reading and returns, the TCP server stops accepting, drains
    in-flight micro-batches (bounded by ``--drain-grace``), and exits 0.
    """
    args = _build_parser().parse_args(argv)
    service = build_service(
        preset=args.preset,
        cache_capacity=args.cache_capacity,
        cache_ttl=args.cache_ttl,
        cache_shards=args.cache_shards,
        seed=args.seed,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )
    if args.tcp is None:
        try:
            # SIGTERM behaves like ctrl-C: serve_stdio's KeyboardInterrupt
            # handler finishes the in-progress reply and returns.
            signal.signal(
                signal.SIGTERM, lambda signum, frame: (_raise_interrupt())
            )
        except ValueError:  # pragma: no cover - non-main thread (embedding)
            pass
        serve_stdio(
            service,
            max_line_bytes=args.max_line_bytes,
            metrics_interval=args.metrics_interval,
        )
        return 0

    host, _, port_text = args.tcp.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"--tcp expects HOST:PORT, got {args.tcp!r}", file=sys.stderr)
        return 2

    async def run() -> None:
        batcher = MicroBatcher(
            service,
            window=args.window,
            max_queue=args.max_queue,
            max_inflight=args.max_inflight,
        )
        server = await serve_tcp(
            service,
            host,
            int(port_text),
            batcher=batcher,
            max_line_bytes=args.max_line_bytes,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        addresses = ", ".join(
            f"{sock.getsockname()[0]}:{sock.getsockname()[1]}" for sock in server.sockets
        )
        print(f"repro-serve listening on {addresses}", file=sys.stderr)
        snapshot_task: asyncio.Task | None = None
        if args.metrics_interval > 0:
            snapshot_log = PeriodicSnapshot(service.metrics, args.metrics_interval)

            async def emit_snapshots() -> None:
                while True:
                    await asyncio.sleep(args.metrics_interval)
                    snapshot_log.emit()

            snapshot_task = asyncio.create_task(emit_snapshots())
        try:
            async with server:
                await stop.wait()
                print("repro-serve draining...", file=sys.stderr)
                server.close()
                await server.wait_closed()
                await batcher.drain(timeout=args.drain_grace)
        finally:
            if snapshot_task is not None:
                snapshot_task.cancel()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - fallback when no handler fired
        pass
    return 0


def _raise_interrupt() -> None:
    raise KeyboardInterrupt


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
