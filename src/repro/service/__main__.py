"""``python -m repro.service`` — the ``repro-serve`` entry point.

Thin alias for :func:`repro.service.server.main` so the server can be
launched without naming the submodule (which would be re-executed under
``runpy`` after the package import already loaded it).
"""

import sys

from repro.service.server import main

if __name__ == "__main__":
    sys.exit(main())
