"""Deterministic, seed-driven fault injection for the serving stack.

Real resilience machinery is only trustworthy when the failures it guards
against actually happen on schedule.  This module provides that schedule:
a :class:`FaultInjector` fires faults at *named seams* of the stack —

* ``backend_error`` — the array backend raises :class:`InjectedFault`
  inside a kernel call (exercises the circuit breaker + NumPy fallback);
* ``latency`` — a latency spike of ``latency_ms`` milliseconds before a
  kernel call (exercises deadline enforcement and method degradation);
* ``cache_evict`` — a resident split-state cache entry is dropped
  (exercises retrain-on-miss; the request still succeeds, just colder);
* ``cache_corrupt`` — a resident cache entry is replaced with a
  :class:`CorruptedEntry` sentinel (exercises detection + rebuild);
* ``conn_drop`` — the TCP front end drops the connection before
  answering (exercises client reconnect + retry).

Faults are **deterministic**: each seam draws from its own seeded RNG
stream, so a given :class:`FaultPlan` produces the same fault schedule per
seam regardless of how calls to different seams interleave.  Activation is
either programmatic (build an injector and pass it in) or environmental:
``REPRO_FAULTS="seed=7,backend_error=0.2,latency=0.5,latency_ms=10"``
makes :func:`injector_from_env` return a live injector, which
``repro.service.server.build_service`` wires through the whole stack (the
CI chaos leg runs the service suite this way).

Examples::

    >>> plan = FaultPlan.parse("seed=7,backend_error=0.5")
    >>> plan.backend_error
    0.5
    >>> plan.active
    True
    >>> a = FaultInjector(plan)
    >>> b = FaultInjector(plan)
    >>> [a.fires("backend_error") for _ in range(8)] == [
    ...     b.fires("backend_error") for _ in range(8)
    ... ]   # same plan, same schedule
    True
    >>> FaultPlan.parse("").active
    False
"""

from __future__ import annotations

import os
import random
import threading
import time
import zlib
from dataclasses import dataclass, fields
from typing import Callable, Mapping

__all__ = [
    "CorruptedEntry",
    "FAULTS_ENV_VAR",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "SEAMS",
    "injector_from_env",
]

#: Environment variable whose value is parsed by :meth:`FaultPlan.parse`.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: The named seams faults can fire at (each is a probability knob on
#: :class:`FaultPlan`).
SEAMS = ("backend_error", "latency", "cache_evict", "cache_corrupt", "conn_drop")


class InjectedFault(RuntimeError):
    """A deliberate failure raised by the fault-injection harness.

    Distinct from real exception types so tests can tell injected faults
    from genuine bugs, and so nothing anywhere catches it *specifically* —
    the resilience layer must handle it like any other backend failure.
    """


class CorruptedEntry:
    """Sentinel an injected ``cache_corrupt`` fault stores in the cache.

    The service detects it by type (the cached value is no longer the
    split state it stored), drops the entry, and rebuilds — a client must
    never see it.

    Examples::

        >>> CorruptedEntry("split-key").key
        'split-key'
    """

    __slots__ = ("key",)

    def __init__(self, key: object) -> None:
        self.key = key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CorruptedEntry({self.key!r})"


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault schedule: a seed plus per-seam probabilities.

    Attributes
    ----------
    seed:
        Base seed; each seam derives an independent RNG stream from it.
    backend_error / latency / cache_evict / cache_corrupt / conn_drop:
        Per-call firing probability of the seam, in ``[0, 1]``.
    latency_ms:
        Magnitude of an injected latency spike, milliseconds.

    Examples::

        >>> FaultPlan.parse("seed=3,conn_drop=0.25").conn_drop
        0.25
        >>> FaultPlan().active
        False
    """

    seed: int = 0
    backend_error: float = 0.0
    latency: float = 0.0
    latency_ms: float = 0.0
    cache_evict: float = 0.0
    cache_corrupt: float = 0.0
    conn_drop: float = 0.0

    def __post_init__(self) -> None:
        for seam in SEAMS:
            probability = getattr(self, seam)
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"{seam} probability must be in [0, 1], got {probability}")
        if self.latency_ms < 0:
            raise ValueError("latency_ms must be >= 0")

    @property
    def active(self) -> bool:
        """True when any seam can fire."""
        return any(getattr(self, seam) > 0.0 for seam in SEAMS)

    @classmethod
    def parse(cls, spec: str | None) -> "FaultPlan":
        """Parse a ``key=value,key=value`` spec (the ``REPRO_FAULTS`` format).

        Unknown keys and malformed values raise ``ValueError`` so a typo in
        the environment fails loudly instead of silently disabling chaos.

        Examples::

            >>> FaultPlan.parse("seed=9,latency=0.5,latency_ms=20").latency_ms
            20.0
        """
        if not spec or not spec.strip():
            return cls()
        known = {field.name: field.type for field in fields(cls)}
        values: dict[str, float | int] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, separator, raw = part.partition("=")
            key = key.strip()
            if not separator or key not in known:
                raise ValueError(
                    f"bad fault spec entry {part!r} (known keys: {sorted(known)})"
                )
            try:
                values[key] = int(raw) if key == "seed" else float(raw)
            except ValueError:
                raise ValueError(f"bad fault spec value {part!r}") from None
        return cls(**values)


class FaultInjector:
    """Fires the faults a :class:`FaultPlan` schedules, seam by seam.

    Each seam owns an independent ``random.Random`` seeded from
    ``plan.seed`` and the seam name, so the decision sequence of one seam
    depends only on how many times *that* seam was consulted — injection at
    the cache never perturbs the backend's schedule.  Thread-safe; counts
    every fired fault in :attr:`injected`.

    Examples::

        >>> injector = FaultInjector(FaultPlan(seed=1, cache_evict=1.0))
        >>> injector.fires("cache_evict")
        True
        >>> injector.fires("backend_error")   # probability 0: never fires
        False
        >>> injector.injected["cache_evict"]
        1
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._rngs = {
            seam: random.Random((plan.seed << 17) ^ zlib.crc32(seam.encode()))
            for seam in SEAMS
        }
        #: Fired-fault counts per seam (monitoring + test assertions).
        self.injected: dict[str, int] = {seam: 0 for seam in SEAMS}

    def fires(self, seam: str) -> bool:
        """Decide (deterministically) whether *seam* faults on this call."""
        probability = getattr(self.plan, seam)
        if probability <= 0.0:
            return False
        with self._lock:
            fired = self._rngs[seam].random() < probability
            if fired:
                self.injected[seam] += 1
        return fired

    def inject_latency(self, sleep: Callable[[float], None] = time.sleep) -> float:
        """Maybe sleep an injected latency spike; return the injected ms."""
        if self.plan.latency_ms <= 0 or not self.fires("latency"):
            return 0.0
        sleep(self.plan.latency_ms / 1000.0)
        return self.plan.latency_ms

    def snapshot(self) -> dict[str, int]:
        """Copy of the fired-fault counters."""
        with self._lock:
            return dict(self.injected)


def injector_from_env(env: "Mapping[str, str] | None" = None) -> FaultInjector | None:
    """The injector the ``REPRO_FAULTS`` environment variable asks for.

    Returns ``None`` when the variable is unset/empty or the parsed plan
    has no active seam — callers can use the result directly as an
    "injection off" signal.

    Examples::

        >>> injector_from_env({}) is None
        True
        >>> injector_from_env({"REPRO_FAULTS": "seed=2,conn_drop=0.5"}).plan.conn_drop
        0.5
    """
    source = env if env is not None else os.environ
    plan = FaultPlan.parse(source.get(FAULTS_ENV_VAR))
    return FaultInjector(plan) if plan.active else None
