"""Bootstrap resampling for confidence intervals.

The paper reports point estimates only; the reproduction additionally
attaches percentile-bootstrap confidence intervals to the aggregated metrics
so that differences between methods (e.g. MLPᵀ vs. GA-kNN rank correlation)
can be judged against run-to-run noise of the synthetic dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["BootstrapResult", "bootstrap_statistic", "bootstrap_confidence_interval"]


@dataclass(frozen=True)
class BootstrapResult:
    """Point estimate plus a percentile-bootstrap confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    resamples: int

    def width(self) -> float:
        """Width of the confidence interval."""
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """Whether *value* falls inside the interval (inclusive)."""
        return self.lower <= value <= self.upper


def bootstrap_statistic(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    resamples: int = 1000,
    seed: int | None = 0,
) -> np.ndarray:
    """Return the bootstrap distribution of *statistic* over *values*."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("bootstrap requires at least one observation")
    if resamples < 1:
        raise ValueError("resamples must be >= 1")
    rng = np.random.default_rng(seed)
    stats = np.empty(resamples, dtype=float)
    for i in range(resamples):
        sample = arr[rng.integers(0, arr.size, size=arr.size)]
        stats[i] = float(statistic(sample))
    return stats


def bootstrap_confidence_interval(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int | None = 0,
) -> BootstrapResult:
    """Percentile-bootstrap confidence interval for *statistic* of *values*."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    arr = np.asarray(values, dtype=float)
    distribution = bootstrap_statistic(arr, statistic, resamples, seed)
    alpha = (1.0 - confidence) / 2.0
    lower = float(np.quantile(distribution, alpha))
    upper = float(np.quantile(distribution, 1.0 - alpha))
    return BootstrapResult(
        estimate=float(statistic(arr)),
        lower=lower,
        upper=upper,
        confidence=confidence,
        resamples=resamples,
    )
