"""Correlation coefficients.

The evaluation's primary ranking metric is the Spearman rank correlation
between the machine ranking predicted for the application of interest and
the ranking obtained from measured performance numbers (Section 6.1 of the
paper).  Pearson and Kendall coefficients are provided as well because the
selection experiments (Figure 8) report goodness of fit and several
ablations compare rank metrics.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.stats.ranking import rankdata

__all__ = ["pearson_correlation", "spearman_correlation", "kendall_tau"]


def _validate_pair(x: Sequence[float], y: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.ndim != 1 or ya.ndim != 1:
        raise ValueError("correlation inputs must be 1-D sequences")
    if xa.size != ya.size:
        raise ValueError(f"length mismatch: {xa.size} vs {ya.size}")
    if xa.size < 2:
        raise ValueError("correlation requires at least two observations")
    return xa, ya


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson product-moment correlation coefficient.

    Returns 0.0 when either input is constant (zero variance); the paper's
    metrics treat a degenerate prediction as having no linear relationship
    rather than raising.
    """
    xa, ya = _validate_pair(x, y)
    xc = xa - xa.mean()
    yc = ya - ya.mean()
    denom = np.sqrt((xc * xc).sum() * (yc * yc).sum())
    if denom == 0.0:
        return 0.0
    return float((xc * yc).sum() / denom)


def spearman_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation coefficient.

    Computed as the Pearson correlation of the fractional ranks, which
    handles ties correctly (the simplified ``1 - 6*sum(d^2)/...`` formula
    does not).
    """
    xa, ya = _validate_pair(x, y)
    return pearson_correlation(rankdata(xa), rankdata(ya))


def kendall_tau(x: Sequence[float], y: Sequence[float]) -> float:
    """Kendall's tau-b rank correlation coefficient.

    O(n^2) pair counting; the machine sets in this study are around one
    hundred entries so the quadratic cost is irrelevant.  Tau-b corrects the
    denominator for ties in either ranking.
    """
    xa, ya = _validate_pair(x, y)
    n = xa.size
    concordant = 0
    discordant = 0
    ties_x = 0
    ties_y = 0
    for i in range(n - 1):
        dx = xa[i + 1 :] - xa[i]
        dy = ya[i + 1 :] - ya[i]
        sign = np.sign(dx) * np.sign(dy)
        concordant += int((sign > 0).sum())
        discordant += int((sign < 0).sum())
        ties_x += int(((dx == 0) & (dy != 0)).sum())
        ties_y += int(((dy == 0) & (dx != 0)).sum())
    denom = np.sqrt(
        (concordant + discordant + ties_x) * (concordant + discordant + ties_y)
    )
    if denom == 0.0:
        return 0.0
    return float((concordant - discordant) / denom)
