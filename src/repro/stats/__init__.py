"""Statistics substrate.

Self-contained implementations of the statistical machinery the paper's
evaluation relies on: rank/linear correlation coefficients, ranking helpers,
prediction-error metrics (top-1 deficiency, mean absolute percentage error,
coefficient of determination) and bootstrap confidence intervals.

Everything here operates on plain sequences or NumPy arrays; SciPy is only
used in the test-suite as an independent oracle.
"""

from repro.stats.correlation import (
    kendall_tau,
    pearson_correlation,
    spearman_correlation,
)
from repro.stats.ranking import (
    average_ranks,
    rank_agreement,
    rankdata,
    top_n_indices,
)
from repro.stats.metrics import (
    MetricSummary,
    coefficient_of_determination,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_error_percent,
    root_mean_squared_error,
    summarize,
    top1_deficiency,
    top_n_deficiency,
)
from repro.stats.bootstrap import (
    BootstrapResult,
    bootstrap_confidence_interval,
    bootstrap_statistic,
)

__all__ = [
    "BootstrapResult",
    "MetricSummary",
    "average_ranks",
    "bootstrap_confidence_interval",
    "bootstrap_statistic",
    "coefficient_of_determination",
    "kendall_tau",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "mean_error_percent",
    "pearson_correlation",
    "rank_agreement",
    "rankdata",
    "root_mean_squared_error",
    "spearman_correlation",
    "summarize",
    "top1_deficiency",
    "top_n_deficiency",
    "top_n_indices",
]
