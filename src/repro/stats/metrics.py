"""Prediction-quality metrics used throughout the evaluation.

Section 6.1 of the paper defines three metrics:

* **ranking** — Spearman rank correlation (see :mod:`repro.stats.correlation`),
* **top-1 error** — the performance deficiency incurred by purchasing the
  machine the method predicts to be fastest instead of the actually fastest
  machine, and
* **average prediction error** — the mean absolute percentage error of the
  predicted scores across all target machines.

This module implements the latter two plus the standard regression-quality
metrics (R², MAE, RMSE) used by the selection experiment of Figure 8 and by
the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stats.ranking import top_n_indices

__all__ = [
    "MetricSummary",
    "coefficient_of_determination",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "mean_error_percent",
    "root_mean_squared_error",
    "summarize",
    "top1_deficiency",
    "top_n_deficiency",
]


def _pair(predicted: Sequence[float], actual: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    pred = np.asarray(predicted, dtype=float)
    act = np.asarray(actual, dtype=float)
    if pred.shape != act.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {act.shape}")
    if pred.size == 0:
        raise ValueError("metrics require at least one observation")
    return pred, act


def mean_absolute_error(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Mean absolute error in the units of the performance score."""
    pred, act = _pair(predicted, actual)
    return float(np.abs(pred - act).mean())


def root_mean_squared_error(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Root mean squared error in the units of the performance score."""
    pred, act = _pair(predicted, actual)
    return float(np.sqrt(((pred - act) ** 2).mean()))


def mean_absolute_percentage_error(
    predicted: Sequence[float], actual: Sequence[float]
) -> float:
    """Mean absolute percentage error, in percent.

    The paper's "mean error" metric: ``mean(|predicted - actual| / actual)``
    expressed as a percentage.  Actual scores are SPEC speed ratios and are
    therefore strictly positive; a zero actual value indicates a corrupted
    dataset and raises.
    """
    pred, act = _pair(predicted, actual)
    if np.any(act == 0):
        raise ValueError("actual performance scores must be non-zero")
    return float((np.abs(pred - act) / np.abs(act)).mean() * 100.0)


# The paper calls the same quantity "mean error"; keep an explicit alias so
# experiment code reads like the paper.
mean_error_percent = mean_absolute_percentage_error


def coefficient_of_determination(
    predicted: Sequence[float], actual: Sequence[float]
) -> float:
    """Coefficient of determination R² of the predictions.

    Used for the "goodness of fit" axis of Figure 8.  Can be negative when
    the predictions are worse than predicting the mean of the actual values.
    """
    pred, act = _pair(predicted, actual)
    ss_res = float(((act - pred) ** 2).sum())
    ss_tot = float(((act - act.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def top_n_deficiency(
    predicted: Sequence[float], actual: Sequence[float], n: int = 1
) -> float:
    """Performance deficiency (%) of the best *actual* machine within the predicted top-n.

    The purchaser buys the machine the model ranks first (or the best of the
    predicted top-*n* shortlist).  The deficiency is how much slower that
    machine actually is compared to the true best machine::

        deficiency = (best_actual - best_within_predicted_top_n) / best_within_predicted_top_n * 100

    A deficiency of 0 means the predicted shortlist contains the true best
    machine.  This matches the paper's top-1 error, which reports the loss in
    performance if a purchase follows the prediction.
    """
    pred, act = _pair(predicted, actual)
    if np.any(act <= 0):
        raise ValueError("actual performance scores must be positive")
    shortlist = top_n_indices(pred, n)
    chosen_actual = float(act[shortlist].max())
    best_actual = float(act.max())
    return (best_actual - chosen_actual) / chosen_actual * 100.0


def top1_deficiency(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Top-1 prediction error (%), the paper's purchasing-loss metric."""
    return top_n_deficiency(predicted, actual, n=1)


@dataclass(frozen=True)
class MetricSummary:
    """Average and worst-case value of a metric across experiment cells.

    Table 2 and Table 3 of the paper report each metric as
    ``average (worst-case)``; this container mirrors that presentation.
    For correlations the worst case is the minimum, for errors the maximum.
    """

    mean: float
    worst: float
    best: float
    count: int

    def as_paper_cell(self, decimals: int = 2) -> str:
        """Format as the paper formats its table cells: ``mean (worst)``."""
        return f"{self.mean:.{decimals}f} ({self.worst:.{decimals}f})"


def summarize(values: Sequence[float], higher_is_better: bool) -> MetricSummary:
    """Aggregate per-cell metric values into mean / worst / best.

    Parameters
    ----------
    values:
        One metric value per (target set, benchmark) experiment cell.
    higher_is_better:
        True for correlations (worst case is the minimum), False for error
        metrics (worst case is the maximum).
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("summarize requires at least one value")
    if higher_is_better:
        worst, best = float(arr.min()), float(arr.max())
    else:
        worst, best = float(arr.max()), float(arr.min())
    return MetricSummary(mean=float(arr.mean()), worst=worst, best=best, count=int(arr.size))
