"""Ranking utilities.

The paper ranks target machines by predicted performance and compares that
ranking against the ranking induced by the measured performance numbers.
This module provides the rank transforms used by the Spearman correlation
and by the top-n machine selection logic.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["rankdata", "average_ranks", "top_n_indices", "rank_agreement"]


def rankdata(values: Sequence[float]) -> np.ndarray:
    """Return the 1-based ranks of *values* with ties sharing average ranks.

    Higher rank number means larger value, i.e. ``rankdata([10, 30, 20])``
    returns ``[1.0, 3.0, 2.0]``.  Ties receive the average of the ranks they
    span, matching the conventional "fractional ranking" used when computing
    the Spearman rank correlation coefficient.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"rankdata expects a 1-D sequence, got shape {arr.shape}")
    if arr.size == 0:
        return np.empty(0, dtype=float)
    order = np.argsort(arr, kind="mergesort")
    ranks = np.empty(arr.size, dtype=float)
    ranks[order] = np.arange(1, arr.size + 1, dtype=float)

    sorted_vals = arr[order]
    i = 0
    while i < arr.size:
        j = i
        while j + 1 < arr.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            tie_indices = order[i : j + 1]
            ranks[tie_indices] = ranks[tie_indices].mean()
        i = j + 1
    return ranks


def average_ranks(rank_lists: Sequence[Sequence[float]]) -> np.ndarray:
    """Average several rank vectors element-wise.

    Used to aggregate per-benchmark machine rankings into a consensus
    ranking, e.g. when reporting the "suite average" ordering a purchaser
    would obtain from published results alone.
    """
    if not rank_lists:
        raise ValueError("average_ranks requires at least one rank vector")
    matrix = np.asarray(rank_lists, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("rank vectors must all have the same length")
    return matrix.mean(axis=0)


def top_n_indices(values: Sequence[float], n: int = 1) -> np.ndarray:
    """Indices of the *n* largest values, best first.

    Ties are broken by the original index order to keep results
    deterministic across runs.
    """
    arr = np.asarray(values, dtype=float)
    if n < 1:
        raise ValueError("n must be >= 1")
    n = min(n, arr.size)
    # stable sort on negated values keeps the first occurrence of ties first
    order = np.argsort(-arr, kind="mergesort")
    return order[:n]


def rank_agreement(predicted: Sequence[float], actual: Sequence[float], n: int = 1) -> float:
    """Fraction of the predicted top-*n* set that appears in the actual top-*n*.

    A convenience metric complementary to the Spearman coefficient: a value
    of 1.0 means the predicted shortlist of machines is exactly the true
    shortlist (ignoring order within the shortlist).
    """
    pred_top = set(top_n_indices(predicted, n).tolist())
    act_top = set(top_n_indices(actual, n).tolist())
    if not act_top:
        return 1.0
    return len(pred_top & act_top) / len(act_top)
