"""``repro-loadgen`` — asyncio traffic replay against a live ``repro-serve``.

The serving stack claims latency and resilience properties; this module is
how they get measured instead of asserted.  It replays a configurable
query mix (:class:`QueryMix`) against the TCP front end in **open loop** —
request *i* is sent at ``i / rate`` seconds regardless of how fast replies
return, so a slow server faces a growing backlog exactly like production
traffic — and reports client-side throughput, exact latency percentiles,
error/degraded/shed counts, and cache hit rate as a :class:`LoadReport`.

Mix knobs mirror how real traffic differs from benchmarks:

* **single vs bulk** — a fraction of arrivals is a pipelined burst of
  ``bulk_size`` requests on one split (one tenant asking about all of its
  applications at once);
* **cold vs warm** — a fraction of arrivals presents a machine set nobody
  has asked about before, forcing a training pass;
* **Zipf-skewed popularity** — warm arrivals pick their split from a pool
  with weight ``1/(k+1)**zipf_s``, so a few machine sets dominate, which
  is what makes cache hit-rate floors meaningful.

The schedule is fully deterministic under a seed (:func:`build_schedule`),
so a regression run replays byte-identical traffic.  The driver keeps one
connection pipeline per ``connections``, matches in-order replies to send
timestamps, and transparently reconnects and re-sends outstanding requests
when the server (or an injected ``conn_drop`` fault) severs a connection —
latency for those requests keeps counting from the *original* send, so
drops show up in the percentiles instead of vanishing.

CLI (also reachable as ``repro-experiments loadgen``)::

    PYTHONPATH=src python -m repro.loadgen --port 8077 --mix warm-skewed \\
        --rate 100 --duration 5 --warmup --json report.json

Examples::

    >>> mix = MIXES["warm-skewed"]
    >>> (mix.cold_fraction, 0.0 < mix.bulk_fraction < 1.0)
    (0.0, True)
    >>> percentile([1.0, 2.0, 3.0, 4.0], 0.5)
    2.5
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import math
import random
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.data.spec_dataset import SpecDataset, build_default_dataset

__all__ = [
    "LoadReport",
    "MIXES",
    "QueryMix",
    "RequestOutcome",
    "build_schedule",
    "main",
    "percentile",
    "run_load",
]


@dataclass(frozen=True)
class QueryMix:
    """One traffic shape: what the arrivals look like, not how fast they come.

    Attributes
    ----------
    name:
        Label carried into the :class:`LoadReport`.
    bulk_fraction / bulk_size:
        Probability that an arrival is a pipelined burst of *bulk_size*
        requests (distinct applications, one shared split) instead of a
        single request.
    cold_fraction:
        Probability that an arrival presents a freshly sampled machine set
        (forcing a training pass) instead of one from the warm pool.
    zipf_s:
        Skew of warm-split popularity: pool entry *k* is drawn with weight
        ``1/(k+1)**zipf_s`` (0 = uniform; >1 = head-heavy).
    n_splits / predictive_size:
        Size of the warm split pool and of each predictive machine set.
    method / top_n / deadline_ms:
        Forwarded onto every request (``None`` omits the field).

    Examples::

        >>> QueryMix("tiny", n_splits=2).zipf_s
        1.1
    """

    name: str
    bulk_fraction: float = 0.0
    bulk_size: int = 8
    cold_fraction: float = 0.0
    zipf_s: float = 1.1
    n_splits: int = 8
    predictive_size: int = 6
    method: str = "NN^T"
    top_n: int | None = 3
    deadline_ms: float | None = None


#: Named mixes the CLI and benches reach for.  ``warm-skewed`` is the SLO
#: mix (hot pool, Zipf-heavy, bulk bursts); ``cold-sweep`` makes every
#: arrival a fresh machine set (pure training load); ``mixed`` blends both.
MIXES = {
    "warm-skewed": QueryMix("warm-skewed", bulk_fraction=0.25, zipf_s=1.1),
    "cold-sweep": QueryMix("cold-sweep", cold_fraction=1.0, zipf_s=0.0),
    "mixed": QueryMix("mixed", bulk_fraction=0.2, cold_fraction=0.1),
}


def percentile(samples: Sequence[float], q: float) -> float:
    """Exact linear-interpolation percentile of *samples* (*q* in [0, 1]).

    This is the client-side estimator — exact over the recorded latencies,
    unlike the server's bucketed histogram estimate, which is what makes
    comparing the two a meaningful consistency check.

    Examples::

        >>> percentile([4.0, 1.0, 3.0, 2.0], 0.5)
        2.5
        >>> percentile([5.0], 0.99)
        5.0
    """
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(samples)
    position = (len(ordered) - 1) * q
    lower = math.floor(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] + fraction * (ordered[upper] - ordered[lower])


@dataclass
class RequestOutcome:
    """What happened to one request, as seen by the client."""

    latency_ms: float
    ok: bool
    code: str | None = None
    cache_hit: bool = False
    degraded: bool = False
    resent: int = 0


def _split_pool(mix: QueryMix, machines: Sequence[str]) -> list[tuple[str, ...]]:
    """The warm pool: *n_splits* disjoint predictive machine windows."""
    if mix.n_splits * mix.predictive_size > len(machines):
        raise ValueError(
            f"pool needs {mix.n_splits * mix.predictive_size} machines, "
            f"dataset has {len(machines)}"
        )
    return [
        tuple(machines[k * mix.predictive_size : (k + 1) * mix.predictive_size])
        for k in range(mix.n_splits)
    ]


def _zipf_pick(rng: random.Random, cumulative: Sequence[float]) -> int:
    """Index drawn from the precomputed cumulative Zipf weights."""
    roll = rng.random() * cumulative[-1]
    for index, bound in enumerate(cumulative):
        if roll < bound:
            return index
    return len(cumulative) - 1


def build_schedule(
    mix: QueryMix,
    rate: float,
    duration: float,
    seed: int = 0,
    dataset: SpecDataset | None = None,
) -> list[tuple[float, dict]]:
    """Deterministic open-loop schedule: ``[(send_at_seconds, request), ...]``.

    Arrival *i* fires at ``i / rate``; a bulk arrival contributes
    ``bulk_size`` requests at the same instant.  The same ``(mix, rate,
    duration, seed)`` always produces byte-identical traffic, so regression
    runs replay exactly.

    Examples::

        >>> schedule = build_schedule(MIXES["warm-skewed"], rate=10, duration=1.0, seed=7)
        >>> len(schedule) >= 10
        True
        >>> schedule == build_schedule(MIXES["warm-skewed"], rate=10, duration=1.0, seed=7)
        True
    """
    if rate <= 0 or duration <= 0:
        raise ValueError("rate and duration must be > 0")
    dataset = dataset if dataset is not None else build_default_dataset()
    machines = list(dataset.machine_ids)
    applications = list(dataset.benchmark_names)
    pool = _split_pool(mix, machines)
    cumulative: list[float] = []
    total = 0.0
    for k in range(len(pool)):
        total += 1.0 / (k + 1) ** mix.zipf_s
        cumulative.append(total)
    rng = random.Random(seed)
    schedule: list[tuple[float, dict]] = []
    for index in range(max(1, round(rate * duration))):
        send_at = index / rate
        if rng.random() < mix.cold_fraction:
            predictive = tuple(sorted(rng.sample(machines, mix.predictive_size)))
        else:
            predictive = pool[_zipf_pick(rng, cumulative)]
        if rng.random() < mix.bulk_fraction:
            apps = rng.sample(applications, min(mix.bulk_size, len(applications)))
        else:
            apps = [rng.choice(applications)]
        for application in apps:
            request: dict[str, Any] = {
                "application": application,
                "predictive_machines": list(predictive),
                "method": mix.method,
            }
            if mix.top_n is not None:
                request["top_n"] = mix.top_n
            if mix.deadline_ms is not None:
                request["deadline_ms"] = mix.deadline_ms
            schedule.append((send_at, request))
    return schedule


@dataclass
class LoadReport:
    """Client-side measurements of one load run.

    ``latency_ms`` holds exact percentiles over completed requests;
    ``errors`` maps typed error codes to counts; ``untyped_failures``
    counts requests that ended without a typed reply (connection budget
    exhausted) — the chaos contract requires this to be zero.
    """

    mix: str
    offered_rate: float
    duration_s: float
    wall_s: float
    requests: int
    ok: int
    errors: dict[str, int] = field(default_factory=dict)
    untyped_failures: int = 0
    degraded: int = 0
    cache_hits: int = 0
    reconnects: int = 0
    resent: int = 0
    latency_ms: dict[str, float] = field(default_factory=dict)
    throughput_rps: float = 0.0
    server_metrics: dict | None = None

    @property
    def error_total(self) -> int:
        return sum(self.errors.values())

    @property
    def cache_hit_rate(self) -> float | None:
        """Cache hits over successful replies (``None`` with no successes)."""
        return (self.cache_hits / self.ok) if self.ok else None

    def to_payload(self) -> dict:
        """JSON-serialisable form (persisted into ``BENCH_load.json``)."""
        payload = dataclasses.asdict(self)
        payload["error_total"] = self.error_total
        payload["cache_hit_rate"] = self.cache_hit_rate
        return payload

    def format(self) -> str:
        """Human-readable multi-line summary (what the CLI prints)."""
        lines = [
            f"mix={self.mix} offered={self.offered_rate:.0f} rps "
            f"for {self.duration_s:.1f}s (wall {self.wall_s:.2f}s)",
            f"requests={self.requests} ok={self.ok} errors={self.error_total} "
            f"untyped={self.untyped_failures} degraded={self.degraded}",
            f"throughput={self.throughput_rps:.1f} rps "
            f"cache_hit_rate={self.cache_hit_rate if self.cache_hit_rate is None else round(self.cache_hit_rate, 3)} "
            f"reconnects={self.reconnects} resent={self.resent}",
        ]
        if self.latency_ms:
            lines.append(
                "latency_ms "
                + " ".join(f"{k}={v:.2f}" for k, v in sorted(self.latency_ms.items()))
            )
        if self.errors:
            lines.append(
                "errors " + " ".join(f"{k}={v}" for k, v in sorted(self.errors.items()))
            )
        return "\n".join(lines)


def _outcome_from_reply(reply: Mapping[str, Any], latency_ms: float) -> RequestOutcome:
    if reply.get("ok"):
        return RequestOutcome(
            latency_ms=latency_ms,
            ok=True,
            cache_hit=bool(reply.get("cache_hit")),
            degraded=bool(reply.get("degraded")),
        )
    code = reply.get("code")
    return RequestOutcome(
        latency_ms=latency_ms,
        ok=False,
        code=code if isinstance(code, str) else None,
    )


async def _drive_connection(
    host: str,
    port: int,
    events: "list[tuple[float, int, bytes]]",
    outcomes: "list[RequestOutcome | None]",
    start_time: float,
    stats: dict,
    max_reconnects: int,
) -> None:
    """Send this connection's share of the schedule; reconnect on drops.

    ``events`` is ``[(send_at, index, line), ...]`` in send order.  The
    sender paces the open loop, the receiver matches in-order replies to
    the outstanding queue.  On a drop, outstanding lines are re-sent on a
    fresh connection and their latency keeps counting from the original
    send; requests that exhaust *max_reconnects* are recorded as untyped
    failures (``code=None``).
    """
    loop = asyncio.get_running_loop()
    to_send: "deque[tuple[float, int, bytes]]" = deque(events)
    outstanding: "deque[tuple[int, bytes, float]]" = deque()
    reconnects_left = max_reconnects
    reader = writer = None

    async def close() -> None:
        nonlocal reader, writer
        if writer is not None:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass
        reader = writer = None

    async def sender() -> None:
        while to_send:
            send_at, index, line = to_send[0]
            delay = (start_time + send_at) - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            writer.write(line + b"\n")
            # Append before any await: a reply can only arrive for a line
            # already written, so the receiver always finds its entry.
            outstanding.append((index, line, loop.time()))
            to_send.popleft()
            await writer.drain()

    async def receiver() -> None:
        while to_send or outstanding:
            raw = await reader.readline()
            if not raw:
                raise ConnectionError("server closed the connection")
            try:
                reply = json.loads(raw)
            except ValueError as exc:  # torn line from a mid-reply drop
                raise ConnectionError(f"torn reply line: {exc}") from None
            index, _, first_sent = outstanding.popleft()
            outcome = _outcome_from_reply(reply, (loop.time() - first_sent) * 1000.0)
            outcome.resent = max_reconnects - reconnects_left
            outcomes[index] = outcome

    while to_send or outstanding:
        try:
            if writer is None:
                reader, writer = await asyncio.open_connection(host, port)
                for _, line, _ in outstanding:  # replay what the drop orphaned
                    writer.write(line + b"\n")
                    stats["resent"] += 1
                await writer.drain()
            send_task = asyncio.ensure_future(sender())
            recv_task = asyncio.ensure_future(receiver())
            done, pending = await asyncio.wait(
                {send_task, recv_task}, return_when=asyncio.FIRST_EXCEPTION
            )
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
            for task in done:
                if task.exception() is not None:
                    raise task.exception()
        except (OSError, ConnectionError):
            await close()
            if reconnects_left <= 0:
                now = loop.time()
                for index, _, first_sent in outstanding:
                    outcomes[index] = RequestOutcome(
                        latency_ms=(now - first_sent) * 1000.0, ok=False, code=None
                    )
                for _, index, _ in to_send:
                    outcomes[index] = RequestOutcome(latency_ms=0.0, ok=False, code=None)
                outstanding.clear()
                to_send.clear()
                return
            reconnects_left -= 1
            stats["reconnects"] += 1
    await close()


async def _warm_pool(
    host: str, port: int, mix: QueryMix, dataset: SpecDataset
) -> None:
    """Train every pool split once so a warm mix starts warm (not measured)."""
    pool = _split_pool(mix, list(dataset.machine_ids))
    application = dataset.benchmark_names[0]
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for predictive in pool:
            request = {
                "application": application,
                "predictive_machines": list(predictive),
                "method": mix.method,
                "top_n": 1,
            }
            writer.write((json.dumps(request) + "\n").encode())
            await writer.drain()
            raw = await reader.readline()
            if not raw:
                raise ConnectionError("server closed during warmup")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):  # pragma: no cover - teardown race
            pass


async def _fetch_server_metrics(host: str, port: int) -> dict | None:
    """One ``{"op": "metrics"}`` round trip (``None`` if it fails)."""
    try:
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b'{"op": "metrics"}\n')
        await writer.drain()
        raw = await reader.readline()
        writer.close()
        await writer.wait_closed()
        reply = json.loads(raw)
        return reply.get("metrics") if reply.get("ok") else None
    except (OSError, ConnectionError, ValueError):
        return None


async def run_load(
    host: str = "127.0.0.1",
    port: int = 8077,
    mix: QueryMix = MIXES["warm-skewed"],
    rate: float = 50.0,
    duration: float = 2.0,
    connections: int = 2,
    seed: int = 0,
    dataset: SpecDataset | None = None,
    warmup: bool = False,
    fetch_metrics: bool = False,
    max_reconnects: int = 100,
    timeout: float = 120.0,
) -> LoadReport:
    """Replay *mix* at *rate* requests/s for *duration* seconds; measure.

    Open loop: send times are fixed by the schedule, never by reply
    arrival.  *connections* pipelines share the traffic round-robin.
    *warmup* trains the warm pool first (untimed).  *fetch_metrics*
    attaches the server's ``{"op": "metrics"}`` snapshot to the report so
    callers can reconcile server-side counters against these client-side
    measurements.  *timeout* bounds the whole run (a wedged server fails
    the run rather than hanging it).
    """
    dataset = dataset if dataset is not None else build_default_dataset()
    schedule = build_schedule(mix, rate, duration, seed=seed, dataset=dataset)
    if warmup:
        await _warm_pool(host, port, mix, dataset)
    outcomes: "list[RequestOutcome | None]" = [None] * len(schedule)
    lines = [
        (send_at, index, json.dumps(request).encode())
        for index, (send_at, request) in enumerate(schedule)
    ]
    shares: "list[list[tuple[float, int, bytes]]]" = [[] for _ in range(max(1, connections))]
    for position, event in enumerate(lines):
        shares[position % len(shares)].append(event)
    stats = {"reconnects": 0, "resent": 0}
    loop = asyncio.get_running_loop()
    started = loop.time()
    await asyncio.wait_for(
        asyncio.gather(
            *(
                _drive_connection(
                    host, port, share, outcomes, started, stats, max_reconnects
                )
                for share in shares
                if share
            )
        ),
        timeout=timeout,
    )
    wall = loop.time() - started
    completed = [outcome for outcome in outcomes if outcome is not None]
    answered = [outcome for outcome in completed if outcome.ok or outcome.code]
    errors: dict[str, int] = {}
    for outcome in completed:
        if not outcome.ok and outcome.code:
            errors[outcome.code] = errors.get(outcome.code, 0) + 1
    untyped = sum(1 for outcome in completed if not outcome.ok and not outcome.code)
    untyped += len(outcomes) - len(completed)  # never answered at all
    ok = [outcome for outcome in completed if outcome.ok]
    latencies = [outcome.latency_ms for outcome in answered]
    latency_summary = (
        {
            "mean": sum(latencies) / len(latencies),
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "p99": percentile(latencies, 0.99),
            "max": max(latencies),
        }
        if latencies
        else {}
    )
    report = LoadReport(
        mix=mix.name,
        offered_rate=rate,
        duration_s=duration,
        wall_s=wall,
        requests=len(schedule),
        ok=len(ok),
        errors=errors,
        untyped_failures=untyped,
        degraded=sum(1 for outcome in ok if outcome.degraded),
        cache_hits=sum(1 for outcome in ok if outcome.cache_hit),
        reconnects=stats["reconnects"],
        resent=stats["resent"],
        latency_ms={k: round(v, 3) for k, v in latency_summary.items()},
        throughput_rps=(len(answered) / wall) if wall > 0 else 0.0,
    )
    if fetch_metrics:
        report.server_metrics = await _fetch_server_metrics(host, port)
    return report


# ----------------------------------------------------------------------- CLI
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="Replay a query mix against a live repro-serve TCP front end.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="server host (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8077, help="server port (default 8077)")
    parser.add_argument(
        "--mix", choices=sorted(MIXES), default="warm-skewed",
        help="named query mix (default warm-skewed)",
    )
    parser.add_argument("--rate", type=float, default=50.0, help="offered arrivals/s (default 50)")
    parser.add_argument("--duration", type=float, default=2.0, help="run length, seconds (default 2)")
    parser.add_argument("--connections", type=int, default=2, help="client pipelines (default 2)")
    parser.add_argument("--seed", type=int, default=0, help="schedule seed (default 0)")
    parser.add_argument("--bulk-fraction", type=float, default=None, help="override mix bulk fraction")
    parser.add_argument("--cold-fraction", type=float, default=None, help="override mix cold fraction")
    parser.add_argument("--zipf", type=float, default=None, help="override mix Zipf skew")
    parser.add_argument("--splits", type=int, default=None, help="override warm pool size")
    parser.add_argument("--method", default=None, help="override ranking method")
    parser.add_argument("--deadline-ms", type=float, default=None, help="attach a deadline to every request")
    parser.add_argument("--warmup", action="store_true", help="train the warm pool before measuring")
    parser.add_argument("--no-metrics", action="store_true", help="skip the server metrics fetch")
    parser.add_argument("--json", metavar="PATH", default=None, help="also write the report as JSON")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """Entry point for ``python -m repro.loadgen`` / ``repro-experiments loadgen``.

    Exits 0 when every request ended in a typed reply, 1 when any request
    failed without a typed error code (the chaos contract).
    """
    args = _build_parser().parse_args(argv)
    mix = MIXES[args.mix]
    overrides = {
        "bulk_fraction": args.bulk_fraction,
        "cold_fraction": args.cold_fraction,
        "zipf_s": args.zipf,
        "n_splits": args.splits,
        "method": args.method,
        "deadline_ms": args.deadline_ms,
    }
    mix = dataclasses.replace(
        mix, **{key: value for key, value in overrides.items() if value is not None}
    )
    report = asyncio.run(
        run_load(
            host=args.host,
            port=args.port,
            mix=mix,
            rate=args.rate,
            duration=args.duration,
            connections=args.connections,
            seed=args.seed,
            warmup=args.warmup,
            fetch_metrics=not args.no_metrics,
        )
    )
    print(report.format())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_payload(), handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}", file=sys.stderr)
    return 0 if report.untyped_failures == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
