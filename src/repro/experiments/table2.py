"""Table 2 — processor-family cross-validation.

The paper's headline comparison: every processor family in turn becomes the
target set (17 predictive/target pairs), every benchmark in turn is the
application of interest, and the three methods are scored on rank
correlation, top-1 error and mean error, reported as ``average (worst
case)``.  The paper's numbers:

==============  ============  ============  ============
metric          NNᵀ           MLPᵀ          GA-kNN
==============  ============  ============  ============
rank corr.      0.85 (0.67)   0.93 (0.71)   0.86 (0.59)
top-1 error     11.9 (156.7)  1.21 (24.8)   7.30 (104)
mean error      4.04 (31.81)  1.59 (19.4)   6.25 (51.34)
==============  ============  ============  ============
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import MethodResults, MethodSummary
from repro.core.pipeline import run_cross_validation
from repro.data.spec_dataset import SpecDataset, build_default_dataset
from repro.data.splits import family_cross_validation_splits
from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import standard_methods

__all__ = ["Table2Result", "run_table2", "PAPER_TABLE2"]

#: The paper's reported numbers, as (mean, worst-case) pairs per method/metric.
PAPER_TABLE2: dict[str, dict[str, tuple[float, float]]] = {
    "NN^T": {
        "rank_correlation": (0.85, 0.67),
        "top1_error": (11.9, 156.7),
        "mean_error": (4.04, 31.81),
    },
    "MLP^T": {
        "rank_correlation": (0.93, 0.71),
        "top1_error": (1.21, 24.8),
        "mean_error": (1.59, 19.4),
    },
    "GA-kNN": {
        "rank_correlation": (0.86, 0.59),
        "top1_error": (7.30, 104.0),
        "mean_error": (6.25, 51.34),
    },
}


@dataclass(frozen=True)
class Table2Result:
    """Per-method results and summaries of the family cross-validation."""

    results: dict[str, MethodResults]
    summaries: dict[str, MethodSummary]
    n_splits: int
    n_applications: int

    def best_method_by_rank_correlation(self) -> str:
        """Name of the method with the highest average rank correlation."""
        return max(self.summaries, key=lambda m: self.summaries[m].rank_correlation.mean)

    def as_rows(self) -> list[dict[str, str]]:
        """Rows formatted like the paper's table (one row per method)."""
        return [summary.as_table_row() for summary in self.summaries.values()]


def run_table2(
    dataset: SpecDataset | None = None, config: ExperimentConfig | None = None
) -> Table2Result:
    """Reproduce Table 2: family cross-validation of NNᵀ, MLPᵀ and GA-kNN."""
    config = config or ExperimentConfig.fast()
    dataset = dataset or build_default_dataset(noise_sigma=config.noise_sigma, seed=config.seed)
    splits = family_cross_validation_splits(dataset)
    applications = list(config.applications) if config.applications else None
    results = run_cross_validation(dataset, splits, standard_methods(config), applications)
    summaries = {name: method_results.summary() for name, method_results in results.items()}
    return Table2Result(
        results=results,
        summaries=summaries,
        n_splits=len(splits),
        n_applications=len(applications) if applications else len(dataset.benchmark_names),
    )
