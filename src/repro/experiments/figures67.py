"""Figures 6 and 7 — per-benchmark rank correlation and top-1 error.

The same experiment as Table 2, broken down per application of interest:

* **Figure 6** plots the Spearman rank correlation per benchmark for NNᵀ,
  MLPᵀ and GA-kNN (plus the minimum and average bars).  The paper's key
  observation is that GA-kNN collapses to 0.59 on the outlier benchmark
  leslie3d while data transposition stays above 0.9.
* **Figure 7** plots the top-1 prediction error per benchmark; GA-kNN and
  NNᵀ exceed 100% for the cactusADM / libquantum outliers whereas MLPᵀ
  stays below ~25%.

Because the breakdown comes from the very same cross-validation cells, the
module simply reshapes a :class:`repro.experiments.table2.Table2Result`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.spec_dataset import SpecDataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.table2 import Table2Result, run_table2

__all__ = ["FigureSeries", "figure6_series", "figure7_series"]


@dataclass(frozen=True)
class FigureSeries:
    """One per-benchmark series per method, plus the summary bars."""

    metric: str
    benchmarks: tuple[str, ...]
    series: dict[str, tuple[float, ...]]

    def value(self, method: str, benchmark: str) -> float:
        """Value of *method* on *benchmark*."""
        return self.series[method][self.benchmarks.index(benchmark)]

    def minimum(self, method: str) -> float:
        """The "Minimum" bar of the figure (worst benchmark for the method)."""
        return float(np.min(self.series[method]))

    def maximum(self, method: str) -> float:
        """The "Maximum" bar of Figure 7."""
        return float(np.max(self.series[method]))

    def average(self, method: str) -> float:
        """The "Average" bar of the figure."""
        return float(np.mean(self.series[method]))

    def worst_benchmark(self, method: str, higher_is_better: bool) -> str:
        """Benchmark on which *method* does worst."""
        values = np.asarray(self.series[method])
        index = int(np.argmin(values)) if higher_is_better else int(np.argmax(values))
        return self.benchmarks[index]


def _series_from_table2(table2: Table2Result, metric_key: str, metric_name: str) -> FigureSeries:
    methods = list(table2.results)
    benchmark_set: set[str] = set()
    for method_results in table2.results.values():
        benchmark_set.update(cell.application for cell in method_results.cells)
    benchmarks = tuple(sorted(benchmark_set, key=str.lower))
    series: dict[str, tuple[float, ...]] = {}
    for method in methods:
        breakdown = table2.results[method].per_application()
        series[method] = tuple(breakdown[name][metric_key] for name in benchmarks)
    return FigureSeries(metric=metric_name, benchmarks=benchmarks, series=series)


def figure6_series(
    dataset: SpecDataset | None = None,
    config: ExperimentConfig | None = None,
    table2: Table2Result | None = None,
) -> FigureSeries:
    """Per-benchmark Spearman rank correlation (Figure 6)."""
    table2 = table2 or run_table2(dataset, config)
    return _series_from_table2(table2, "rank_correlation", "spearman_rank_correlation")


def figure7_series(
    dataset: SpecDataset | None = None,
    config: ExperimentConfig | None = None,
    table2: Table2Result | None = None,
) -> FigureSeries:
    """Per-benchmark top-1 prediction error (Figure 7)."""
    table2 = table2 or run_table2(dataset, config)
    return _series_from_table2(table2, "top1_error_percent", "top1_error_percent")
