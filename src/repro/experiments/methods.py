"""Standard method line-up used across the experiments.

Table 2, Table 3, Table 4 and Figures 6/7 all compare the same three
methods: NNᵀ, MLPᵀ and GA-kNN.  This module builds that line-up from an
:class:`repro.experiments.config.ExperimentConfig` so every experiment uses
identical hyper-parameters.
"""

from __future__ import annotations

from repro.baselines.ga_knn import GAKNNBaseline
from repro.core.linear_predictor import LinearTranspositionPredictor
from repro.core.mlp_predictor import MLPTranspositionPredictor
from repro.core.pipeline import RankingMethod, TranspositionMethod
from repro.experiments.config import ExperimentConfig

__all__ = ["NNT", "MLPT", "GAKNN", "standard_methods"]

#: Canonical method names used in result tables (match the paper's labels).
NNT = "NN^T"
MLPT = "MLP^T"
GAKNN = "GA-kNN"


def standard_methods(config: ExperimentConfig) -> dict[str, RankingMethod]:
    """The NNᵀ / MLPᵀ / GA-kNN line-up with the configured hyper-parameters."""
    return {
        NNT: TranspositionMethod(LinearTranspositionPredictor, NNT),
        MLPT: TranspositionMethod(
            lambda: MLPTranspositionPredictor(
                hidden_units=config.mlp_hidden_units,
                epochs=config.mlp_epochs,
                seed=config.seed,
            ),
            MLPT,
        ),
        GAKNN: GAKNNBaseline(
            k=config.knn_neighbours, ga_config=config.ga_config(), seed=config.seed
        ),
    }
