"""Standard method line-up used across the experiments.

Table 2, Table 3, Table 4 and Figures 6/7 all compare the same three
methods: NNᵀ, MLPᵀ and GA-kNN.  This module builds that line-up from an
:class:`repro.experiments.config.ExperimentConfig` so every experiment uses
identical hyper-parameters.

By default the transposition methods are the batch-capable variants, which
the pipeline evaluates with one vectorised pass per split (all leave-one-out
applications at once) instead of one training run per cell; ``batched=False``
returns the historical per-cell adapters, which the engine benches use as
the speedup baseline.  Either way every factory is picklable so the line-up
works with ``run_cross_validation(..., n_jobs=N)``.
"""

from __future__ import annotations

from functools import partial

from repro.baselines.ga_knn import GAKNNBaseline
from repro.core.batch import BatchedLinearTransposition, BatchedMLPTransposition
from repro.core.linear_predictor import LinearTranspositionPredictor
from repro.core.mlp_predictor import MLPTranspositionPredictor
from repro.core.pipeline import RankingMethod, TranspositionMethod
from repro.experiments.config import ExperimentConfig

__all__ = ["NNT", "MLPT", "GAKNN", "standard_methods"]

#: Canonical method names used in result tables (match the paper's labels).
NNT = "NN^T"
MLPT = "MLP^T"
GAKNN = "GA-kNN"


def standard_methods(
    config: ExperimentConfig, batched: bool = True
) -> dict[str, RankingMethod]:
    """The NNᵀ / MLPᵀ / GA-kNN line-up with the configured hyper-parameters."""
    if batched:
        nnt: TranspositionMethod = BatchedLinearTransposition(name=NNT)
        mlpt: TranspositionMethod = BatchedMLPTransposition(
            hidden_units=config.mlp_hidden_units,
            epochs=config.mlp_epochs,
            seed=config.seed,
            name=MLPT,
        )
    else:
        nnt = TranspositionMethod(LinearTranspositionPredictor, NNT)
        mlpt = TranspositionMethod(
            partial(
                MLPTranspositionPredictor,
                hidden_units=config.mlp_hidden_units,
                epochs=config.mlp_epochs,
                seed=config.seed,
            ),
            MLPT,
        )
    return {
        NNT: nnt,
        MLPT: mlpt,
        GAKNN: GAKNNBaseline(
            k=config.knn_neighbours, ga_config=config.ga_config(), seed=config.seed
        ),
    }
