"""Standard method line-up used across the experiments.

Table 2, Table 3, Table 4 and Figures 6/7 all compare the same three
methods: NNᵀ, MLPᵀ and GA-kNN.  This module builds that line-up through the
engine's method registry (:mod:`repro.core.engine`) from an
:class:`repro.experiments.config.ExperimentConfig`, so every experiment
uses identical hyper-parameters and the registry stays the single source
of truth for what the names mean.

By default the line-up is the batch-capable registrations, which the
pipeline evaluates with one vectorised pass per split (all leave-one-out
applications at once — GA-kNN included, via the lockstep GA);
``batched=False`` resolves the ``*/per-cell`` reference variants instead,
which the engine benches and equivalence tests use as the speedup/accuracy
baseline.  Either way every instance is picklable so the line-up works
with ``run_cross_validation(..., n_jobs=N)``.
"""

from __future__ import annotations

from repro.core.engine import create_methods
from repro.core.pipeline import RankingMethod
from repro.experiments.config import ExperimentConfig

__all__ = ["NNT", "MLPT", "GAKNN", "standard_methods"]

#: Canonical method names used in result tables (match the paper's labels
#: and the registry's labels).
NNT = "NN^T"
MLPT = "MLP^T"
GAKNN = "GA-kNN"


def standard_methods(
    config: ExperimentConfig, batched: bool = True, backend: str | None = None
) -> dict[str, RankingMethod]:
    """The NNᵀ / MLPᵀ / GA-kNN line-up with the configured hyper-parameters.

    Resolves through the method registry: *batched* picks between the
    first-class batched registrations and their ``*/per-cell`` reference
    variants (same labels either way), and *backend* selects the array
    backend for backend-capable methods (``None`` = ``REPRO_BACKEND`` or
    NumPy).
    """
    names = [NNT, MLPT, GAKNN]
    if not batched:
        names = [f"{name}/per-cell" for name in names]
    return create_methods(names, config.method_params(backend=backend))
