"""Table 4 — a limited number of predictive machines.

Section 6.4: the target machines are the 2009 releases and the predictive
set is a random subset (size 10, 5 or 3) of the 2008 machines.  The paper
finds that accuracy degrades only mildly: MLPᵀ stays around a rank
correlation of 0.89-0.90 even with three predictive machines, while NNᵀ is
more sensitive to the smaller predictive pool.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import MethodResults, MethodSummary
from repro.core.pipeline import run_cross_validation
from repro.data.spec_dataset import SpecDataset, build_default_dataset
from repro.data.splits import MachineSplit, predictive_subset_split
from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import standard_methods

__all__ = ["Table4Result", "run_table4", "PAPER_TABLE4", "SUBSET_SIZES"]

#: Subset sizes evaluated in the paper.
SUBSET_SIZES: tuple[int, ...] = (10, 5, 3)

#: Paper-reported means per subset size for MLP^T and NN^T.
PAPER_TABLE4: dict[str, dict[int, dict[str, float]]] = {
    "MLP^T": {
        10: {"rank_correlation": 0.90, "top1_error": 6.17, "mean_error": 5.53},
        5: {"rank_correlation": 0.89, "top1_error": 2.79, "mean_error": 4.93},
        3: {"rank_correlation": 0.89, "top1_error": 3.04, "mean_error": 5.16},
    },
    "NN^T": {
        10: {"rank_correlation": 0.87, "top1_error": 2.17, "mean_error": 5.17},
        5: {"rank_correlation": 0.81, "top1_error": 5.49, "mean_error": 6.00},
        3: {"rank_correlation": 0.81, "top1_error": 5.49, "mean_error": 6.05},
    },
}


@dataclass(frozen=True)
class Table4Result:
    """Results per predictive subset size and method."""

    results: dict[int, dict[str, MethodResults]]      # size -> method -> results
    summaries: dict[int, dict[str, MethodSummary]]    # size -> method -> summary
    splits: dict[int, MachineSplit]

    def rank_correlation(self, size: int, method: str) -> float:
        """Mean rank correlation for one subset-size/method cell."""
        return self.summaries[size][method].rank_correlation.mean

    def degradation(self, method: str) -> float:
        """Drop in mean rank correlation from the largest to the smallest subset."""
        sizes = sorted(self.summaries)
        return self.rank_correlation(sizes[-1], method) - self.rank_correlation(sizes[0], method)


def run_table4(
    dataset: SpecDataset | None = None,
    config: ExperimentConfig | None = None,
    subset_sizes: tuple[int, ...] = SUBSET_SIZES,
) -> Table4Result:
    """Reproduce Table 4: 2009 targets from small 2008 predictive subsets."""
    config = config or ExperimentConfig.fast()
    dataset = dataset or build_default_dataset(noise_sigma=config.noise_sigma, seed=config.seed)
    applications = list(config.applications) if config.applications else None

    results: dict[int, dict[str, MethodResults]] = {}
    summaries: dict[int, dict[str, MethodSummary]] = {}
    splits: dict[int, MachineSplit] = {}
    for size in subset_sizes:
        split = predictive_subset_split(dataset, subset_size=size, seed=config.seed)
        splits[size] = split
        size_results = run_cross_validation(
            dataset, [split], standard_methods(config), applications
        )
        results[size] = size_results
        summaries[size] = {name: res.summary() for name, res in size_results.items()}
    return Table4Result(results=results, summaries=summaries, splits=splits)
