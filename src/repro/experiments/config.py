"""Experiment configuration.

Every experiment module accepts an :class:`ExperimentConfig` that controls
the trade-off between fidelity to the paper's setup and runtime.  The
``full()`` preset matches the paper (all 29 leave-one-out applications,
WEKA-default MLP epochs, a generous GA budget); the ``fast()`` preset keeps
the same structure but restricts the application set to a representative
mix of outlier and typical benchmarks and trims the training budgets so the
whole table regenerates in seconds — that is what the pytest-benchmark
harness runs by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import MethodParams
from repro.ml.genetic import GAConfig

__all__ = ["ExperimentConfig"]

#: Benchmarks used by the fast preset: the outliers the paper highlights
#: (leslie3d, cactusADM, libquantum, namd, hmmer) plus typical integer and
#: floating-point codes.
FAST_APPLICATIONS: tuple[str, ...] = (
    "leslie3d",
    "cactusADM",
    "libquantum",
    "lbm",
    "namd",
    "hmmer",
    "gcc",
    "mcf",
    "povray",
    "xalancbmk",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment reproductions.

    Attributes
    ----------
    applications:
        Applications of interest to evaluate (None = all 29, the paper's
        full leave-one-out loop).
    mlp_epochs:
        Training epochs for the MLPᵀ predictor (WEKA default is 500).
    mlp_hidden_units:
        Hidden layer size (None = WEKA's automatic rule).
    ga_population / ga_generations:
        Genetic-algorithm budget for the GA-kNN baseline.
    knn_neighbours:
        k for GA-kNN (the paper uses 10).
    noise_sigma / seed:
        Dataset generation parameters (forwarded to the simulator).
    figure8_random_draws:
        Number of random selections averaged in the Figure 8 comparison
        (the paper averages 50).
    figure8_max_predictive:
        Largest predictive-set size swept in Figure 8 (the paper sweeps 1-10).
    """

    applications: tuple[str, ...] | None = None
    mlp_epochs: int = 500
    mlp_hidden_units: int | None = None
    ga_population: int = 30
    ga_generations: int = 15
    knn_neighbours: int = 10
    noise_sigma: float = 0.03
    seed: int = 0
    figure8_random_draws: int = 50
    figure8_max_predictive: int = 10

    def __post_init__(self) -> None:
        if self.mlp_epochs < 1:
            raise ValueError("mlp_epochs must be >= 1")
        if self.ga_population < 2:
            raise ValueError("ga_population must be >= 2")
        if self.ga_generations < 1:
            raise ValueError("ga_generations must be >= 1")
        if self.knn_neighbours < 1:
            raise ValueError("knn_neighbours must be >= 1")
        if self.figure8_random_draws < 1:
            raise ValueError("figure8_random_draws must be >= 1")
        if self.figure8_max_predictive < 1:
            raise ValueError("figure8_max_predictive must be >= 1")

    @classmethod
    def full(cls) -> "ExperimentConfig":
        """The paper-faithful configuration (slow: minutes per table)."""
        return cls()

    @classmethod
    def fast(cls) -> "ExperimentConfig":
        """A structurally identical but laptop-fast configuration."""
        return cls(
            applications=FAST_APPLICATIONS,
            mlp_epochs=150,
            ga_population=16,
            ga_generations=8,
            figure8_random_draws=8,
            figure8_max_predictive=8,
        )

    @classmethod
    def smoke(cls) -> "ExperimentConfig":
        """Minimal configuration used by unit tests (seconds end to end)."""
        return cls(
            applications=("leslie3d", "gcc", "namd"),
            mlp_epochs=60,
            ga_population=10,
            ga_generations=4,
            figure8_random_draws=3,
            figure8_max_predictive=4,
        )

    def ga_config(self) -> GAConfig:
        """The GA hyper-parameters implied by this configuration."""
        return GAConfig(population_size=self.ga_population, generations=self.ga_generations)

    def method_params(self, backend: str | None = None) -> MethodParams:
        """This preset's knobs as engine-level :class:`~repro.core.engine.
        MethodParams`, ready for the method registry's factories."""
        return MethodParams(
            mlp_epochs=self.mlp_epochs,
            mlp_hidden_units=self.mlp_hidden_units,
            ga_population=self.ga_population,
            ga_generations=self.ga_generations,
            knn_neighbours=self.knn_neighbours,
            seed=self.seed,
            backend=backend,
        )
