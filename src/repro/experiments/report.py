"""Plain-text rendering of experiment results.

The paper presents its evaluation as tables and bar charts; in an offline,
dependency-light reproduction the equivalent artefact is a text report that
prints the same rows and series.  These helpers are used by the CLI
(``repro-experiments``) and by EXPERIMENTS.md generation.
"""

from __future__ import annotations

from repro.experiments.figures67 import FigureSeries
from repro.experiments.figure8 import Figure8Result
from repro.experiments.table2 import PAPER_TABLE2, Table2Result
from repro.experiments.table3 import ERAS, PAPER_TABLE3, Table3Result
from repro.experiments.table4 import PAPER_TABLE4, Table4Result

__all__ = [
    "format_table2",
    "format_table3",
    "format_table4",
    "format_figure_series",
    "format_figure8",
]


def _rule(width: int = 78) -> str:
    return "-" * width


def format_table2(result: Table2Result) -> str:
    """Render the Table 2 comparison, side by side with the paper's numbers."""
    lines = [
        "Table 2 - processor-family cross-validation "
        f"({result.n_splits} splits x {result.n_applications} applications)",
        _rule(),
        f"{'method':<10} {'rank corr.':>18} {'top-1 error %':>18} {'mean error %':>18}",
        _rule(),
    ]
    for method, summary in result.summaries.items():
        lines.append(
            f"{method:<10} {summary.rank_correlation.as_paper_cell():>18} "
            f"{summary.top1_error.as_paper_cell():>18} {summary.mean_error.as_paper_cell():>18}"
        )
    lines.append(_rule())
    lines.append("paper reports (mean (worst)):")
    for method, metrics in PAPER_TABLE2.items():
        rank = metrics["rank_correlation"]
        top1 = metrics["top1_error"]
        mean = metrics["mean_error"]
        lines.append(
            f"{method:<10} {f'{rank[0]:.2f} ({rank[1]:.2f})':>18} "
            f"{f'{top1[0]:.2f} ({top1[1]:.2f})':>18} {f'{mean[0]:.2f} ({mean[1]:.2f})':>18}"
        )
    return "\n".join(lines)


def format_table3(result: Table3Result) -> str:
    """Render the Table 3 future-machine comparison."""
    lines = ["Table 3 - predicting the 2009 machines from older predictive sets", _rule()]
    for era in ERAS:
        lines.append(f"predictive set: {era} ({result.splits[era].n_predictive} machines)")
        for method, summary in result.summaries[era].items():
            lines.append(
                f"  {method:<10} rank {summary.rank_correlation.as_paper_cell():>14}  "
                f"top-1 {summary.top1_error.as_paper_cell():>16}  "
                f"mean {summary.mean_error.as_paper_cell():>16}"
            )
    lines.append(_rule())
    lines.append("paper reports (mean rank correlation): "
                 + ", ".join(
                     f"{method} {era}: {PAPER_TABLE3[method][era]['rank_correlation'][0]:.2f}"
                     for method in PAPER_TABLE3
                     for era in ERAS
                 ))
    return "\n".join(lines)


def format_table4(result: Table4Result) -> str:
    """Render the Table 4 limited-predictive-set comparison."""
    lines = ["Table 4 - limited number of predictive machines (2008 -> 2009)", _rule()]
    for size in sorted(result.summaries, reverse=True):
        lines.append(f"predictive subset size: {size}")
        for method, summary in result.summaries[size].items():
            lines.append(
                f"  {method:<10} rank {summary.rank_correlation.mean:>6.2f}  "
                f"top-1 {summary.top1_error.mean:>8.2f}  mean {summary.mean_error.mean:>8.2f}"
            )
    lines.append(_rule())
    lines.append("paper reports (mean rank correlation): "
                 + ", ".join(
                     f"{method} @{size}: {PAPER_TABLE4[method][size]['rank_correlation']:.2f}"
                     for method in PAPER_TABLE4
                     for size in (10, 5, 3)
                 ))
    return "\n".join(lines)


def format_figure_series(series: FigureSeries, title: str, higher_is_better: bool) -> str:
    """Render a per-benchmark figure series (Figures 6 and 7)."""
    methods = list(series.series)
    header = f"{'benchmark':<14}" + "".join(f"{method:>12}" for method in methods)
    lines = [title, _rule(), header, _rule()]
    for benchmark in series.benchmarks:
        row = f"{benchmark:<14}"
        for method in methods:
            row += f"{series.value(method, benchmark):>12.3f}"
        lines.append(row)
    lines.append(_rule())
    extreme = "Minimum" if higher_is_better else "Maximum"
    extreme_row = f"{extreme:<14}"
    average_row = f"{'Average':<14}"
    for method in methods:
        value = series.minimum(method) if higher_is_better else series.maximum(method)
        extreme_row += f"{value:>12.3f}"
        average_row += f"{series.average(method):>12.3f}"
    lines.append(extreme_row)
    lines.append(average_row)
    return "\n".join(lines)


def format_figure8(result: Figure8Result) -> str:
    """Render the Figure 8 selection comparison."""
    lines = [
        "Figure 8 - goodness of fit (R^2) vs number of predictive machines",
        _rule(),
        f"{'k':>3} {'k-medoids':>12} {'random':>12} {'advantage':>12}",
        _rule(),
    ]
    for i, size in enumerate(result.sizes):
        lines.append(
            f"{size:>3} {result.kmedoids_r2[i]:>12.3f} {result.random_r2[i]:>12.3f} "
            f"{result.advantage(size):>12.3f}"
        )
    lines.append(_rule())
    lines.append(f"mean advantage of k-medoids over random: {result.mean_advantage():.3f}")
    return "\n".join(lines)
