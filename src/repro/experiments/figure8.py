"""Figure 8 — selecting predictive machines: k-medoids vs. random.

Section 6.5: with the number of predictive machines limited, how should
they be chosen?  The paper compares random selection (averaged over 50
draws) against choosing the k-medoid cluster centres of the candidate
machines in benchmark-score space, sweeping the number of predictive
machines from 1 to 10 and reporting the goodness of fit (R²) of the MLPᵀ
predictions on the target machines.  k-medoid selection dominates: two
clustered machines fit better (R² ≈ 0.714) than five random ones (≈ 0.705).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mlp_predictor import MLPTranspositionPredictor
from repro.core.selection import select_k_medoids, select_random
from repro.core.transposition import DataTransposition
from repro.data.spec_dataset import SpecDataset, build_default_dataset
from repro.data.splits import MachineSplit, temporal_split
from repro.experiments.config import ExperimentConfig
from repro.stats.metrics import coefficient_of_determination

__all__ = ["Figure8Result", "run_figure8"]


@dataclass(frozen=True)
class Figure8Result:
    """Goodness of fit per predictive-set size for both selection strategies."""

    sizes: tuple[int, ...]
    kmedoids_r2: tuple[float, ...]
    random_r2: tuple[float, ...]

    def advantage(self, size: int) -> float:
        """R² advantage of k-medoids over random selection at *size*."""
        index = self.sizes.index(size)
        return self.kmedoids_r2[index] - self.random_r2[index]

    def mean_advantage(self) -> float:
        """Average advantage across all sizes."""
        return float(
            np.mean(np.asarray(self.kmedoids_r2) - np.asarray(self.random_r2))
        )


def _fit_quality(
    dataset: SpecDataset,
    predictive_ids: list[str],
    target_ids: tuple[str, ...],
    applications: list[str],
    config: ExperimentConfig,
) -> float:
    """Average R² of MLPᵀ predictions on the targets for the given predictive set."""
    split = MachineSplit(
        name="figure8", predictive_ids=tuple(predictive_ids), target_ids=target_ids
    )
    machine_index = {mid: i for i, mid in enumerate(dataset.machine_ids)}
    r2_values = []
    for application in applications:
        predictor = MLPTranspositionPredictor(
            hidden_units=config.mlp_hidden_units, epochs=config.mlp_epochs, seed=config.seed
        )
        result = DataTransposition(predictor).predict_scores(dataset, split, application)
        actual_row = dataset.matrix.benchmark_scores(application)
        actual = [actual_row[machine_index[mid]] for mid in split.target_ids]
        r2_values.append(coefficient_of_determination(result.predicted_scores, actual))
    return float(np.mean(r2_values))


def run_figure8(
    dataset: SpecDataset | None = None, config: ExperimentConfig | None = None
) -> Figure8Result:
    """Reproduce Figure 8: goodness of fit vs. number of predictive machines."""
    config = config or ExperimentConfig.fast()
    dataset = dataset or build_default_dataset(noise_sigma=config.noise_sigma, seed=config.seed)
    base_split = temporal_split(dataset, target_year=2009, predictive_years=[2008])
    candidates = list(base_split.predictive_ids)
    target_ids = base_split.target_ids
    applications = (
        list(config.applications) if config.applications else dataset.benchmark_names
    )

    # The sweep starts at two predictive machines: a single machine gives the
    # MLP a one-sample training set, which is degenerate (the paper's k = 1
    # point is omitted; see EXPERIMENTS.md).
    sizes = tuple(range(2, config.figure8_max_predictive + 1))
    kmedoids_scores: list[float] = []
    random_scores: list[float] = []
    for size in sizes:
        medoid_ids = select_k_medoids(dataset, candidates, size, seed=config.seed)
        kmedoids_scores.append(
            _fit_quality(dataset, medoid_ids, target_ids, applications, config)
        )
        draws = []
        for draw in range(config.figure8_random_draws):
            random_ids = select_random(candidates, size, seed=config.seed + 1000 + draw)
            draws.append(_fit_quality(dataset, random_ids, target_ids, applications, config))
        random_scores.append(float(np.mean(draws)))

    return Figure8Result(
        sizes=sizes,
        kmedoids_r2=tuple(kmedoids_scores),
        random_r2=tuple(random_scores),
    )
