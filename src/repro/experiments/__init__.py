"""Experiment reproductions: one module per table/figure of the paper."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import GAKNN, MLPT, NNT, standard_methods
from repro.experiments.table2 import PAPER_TABLE2, Table2Result, run_table2
from repro.experiments.table3 import ERAS, PAPER_TABLE3, Table3Result, run_table3
from repro.experiments.table4 import PAPER_TABLE4, SUBSET_SIZES, Table4Result, run_table4
from repro.experiments.figures67 import FigureSeries, figure6_series, figure7_series
from repro.experiments.figure8 import Figure8Result, run_figure8
from repro.experiments.report import (
    format_figure8,
    format_figure_series,
    format_table2,
    format_table3,
    format_table4,
)

__all__ = [
    "ERAS",
    "ExperimentConfig",
    "Figure8Result",
    "FigureSeries",
    "GAKNN",
    "MLPT",
    "NNT",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "SUBSET_SIZES",
    "Table2Result",
    "Table3Result",
    "Table4Result",
    "figure6_series",
    "figure7_series",
    "format_figure8",
    "format_figure_series",
    "format_table2",
    "format_table3",
    "format_table4",
    "run_figure8",
    "run_table2",
    "run_table3",
    "run_table4",
    "standard_methods",
]
