"""Table 3 — predicting future machines.

Section 6.3: the target machines are those released in 2009; the predictive
set is drawn from 2008, 2007 or everything older, which probes how far into
the future a predictive set stays useful.  The paper reports that data
transposition beats GA-kNN when predicting one year ahead (rank correlation
0.93/0.92 vs 0.87) and degrades gracefully further out, with NNᵀ ageing
better than MLPᵀ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import MethodResults, MethodSummary
from repro.core.pipeline import run_cross_validation
from repro.data.spec_dataset import SpecDataset, build_default_dataset
from repro.data.splits import MachineSplit, temporal_split
from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import standard_methods

__all__ = ["Table3Result", "run_table3", "PAPER_TABLE3"]

#: Paper-reported (mean, worst) per predictive era, for MLP^T and NN^T.
PAPER_TABLE3: dict[str, dict[str, dict[str, tuple[float, float]]]] = {
    "MLP^T": {
        "2008": {"rank_correlation": (0.93, 0.71), "top1_error": (3.78, 50.0), "mean_error": (5.50, 65.61)},
        "2007": {"rank_correlation": (0.80, 0.0), "top1_error": (9.23, 119.0), "mean_error": (8.10, 70.79)},
        "older": {"rank_correlation": (0.77, 0.49), "top1_error": (6.84, 43.0), "mean_error": (8.36, 64.89)},
    },
    "NN^T": {
        "2008": {"rank_correlation": (0.92, 0.76), "top1_error": (2.17, 43.0), "mean_error": (4.38, 35.16)},
        "2007": {"rank_correlation": (0.82, 0.37), "top1_error": (4.31, 92.0), "mean_error": (9.22, 82.13)},
        "older": {"rank_correlation": (0.74, 0.31), "top1_error": (2.07, 29.3), "mean_error": (9.22, 53.34)},
    },
}

#: The three predictive eras of Table 3.
ERAS: tuple[str, ...] = ("2008", "2007", "older")


@dataclass(frozen=True)
class Table3Result:
    """Results per predictive era and method."""

    results: dict[str, dict[str, MethodResults]]       # era -> method -> results
    summaries: dict[str, dict[str, MethodSummary]]     # era -> method -> summary
    splits: dict[str, MachineSplit]

    def rank_correlation(self, era: str, method: str) -> float:
        """Mean rank correlation for one era/method cell."""
        return self.summaries[era][method].rank_correlation.mean

    def era_trend(self, method: str) -> list[float]:
        """Mean rank correlation across eras (2008, 2007, older) for *method*."""
        return [self.rank_correlation(era, method) for era in ERAS]


def _era_splits(dataset: SpecDataset) -> dict[str, MachineSplit]:
    return {
        "2008": temporal_split(dataset, target_year=2009, predictive_years=[2008]),
        "2007": temporal_split(dataset, target_year=2009, predictive_years=[2007]),
        "older": temporal_split(dataset, target_year=2009, predictive_before=2007),
    }


def run_table3(
    dataset: SpecDataset | None = None, config: ExperimentConfig | None = None
) -> Table3Result:
    """Reproduce Table 3: predicting the 2009 machines from older predictive sets."""
    config = config or ExperimentConfig.fast()
    dataset = dataset or build_default_dataset(noise_sigma=config.noise_sigma, seed=config.seed)
    splits = _era_splits(dataset)
    applications = list(config.applications) if config.applications else None

    results: dict[str, dict[str, MethodResults]] = {}
    summaries: dict[str, dict[str, MethodSummary]] = {}
    for era, split in splits.items():
        era_results = run_cross_validation(
            dataset, [split], standard_methods(config), applications
        )
        results[era] = era_results
        summaries[era] = {name: res.summary() for name, res in era_results.items()}
    return Table3Result(results=results, summaries=summaries, splits=splits)
