"""Command-line entry point: regenerate the paper's tables and figures.

Installed as ``repro-experiments``.  Examples::

    repro-experiments table2                 # fast preset
    repro-experiments table3 --preset full   # paper-faithful (slow)
    repro-experiments all --preset fast
    repro-experiments list-methods           # the method registry
    repro-experiments serve --preset smoke   # the prediction server
    repro-experiments loadgen --port 8077    # replay traffic at a server

``serve`` delegates to the prediction server (``repro-serve``,
:mod:`repro.service.server`) and forwards every following argument to it
(see ``docs/serving.md``); ``loadgen`` does the same for the load
generator (``repro-loadgen``, :mod:`repro.loadgen`); ``list-methods``
prints the engine's method
registry — every registered ranking method with its capabilities and the
array backend it would run on — so users can discover what ``--method`` /
``methods=`` names mean without reading source.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Callable

from repro.data.spec_dataset import build_default_dataset
from repro.experiments import (
    ExperimentConfig,
    figure6_series,
    figure7_series,
    format_figure8,
    format_figure_series,
    format_table2,
    format_table3,
    format_table4,
    run_figure8,
    run_table2,
    run_table3,
    run_table4,
)

__all__ = ["format_method_registry", "main"]


def format_method_registry() -> str:
    """The method registry as an aligned text table.

    One row per registered method: name, canonical label, capabilities,
    the array backend a backend-capable method would run on right now
    (honouring ``REPRO_BACKEND``; ``-`` for pure-NumPy methods), the
    deadline-degradation fallback the serving layer may substitute
    (``-`` when the method is already the cheap end of its chain), and
    the one-line description.
    """
    from repro.core.backends import resolve_backend
    from repro.core.engine import registered_methods

    active_backend = resolve_backend().name
    header = ("name", "label", "capabilities", "backend", "fallback", "description")
    rows = [header]
    for spec in registered_methods():
        rows.append(
            (
                spec.name,
                spec.label,
                ", ".join(sorted(spec.capabilities)),
                active_backend if "backend" in spec.capabilities else "-",
                spec.fallback if spec.fallback is not None else "-",
                spec.description,
            )
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(header) - 1)]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)) + f"  {row[-1]}"
        for row in rows
    ]
    lines.insert(1, "  ".join("-" * width for width in widths) + "  " + "-" * 11)
    return "\n".join(line.rstrip() for line in lines)

_PRESETS: dict[str, Callable[[], ExperimentConfig]] = {
    "fast": ExperimentConfig.fast,
    "full": ExperimentConfig.full,
    "smoke": ExperimentConfig.smoke,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the data-transposition paper.",
        epilog="'repro-experiments serve' starts the prediction server (repro-serve); "
        "'repro-experiments list-methods' prints the method registry.",
    )
    parser.add_argument(
        "experiment",
        choices=["table2", "table3", "table4", "figure6", "figure7", "figure8", "all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--preset",
        choices=sorted(_PRESETS),
        default="fast",
        help="configuration preset (default: fast)",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the dataset seed")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiment(s) and print the text report.

    ``serve`` is dispatched to :func:`repro.service.server.main` and
    ``loadgen`` to :func:`repro.loadgen.main`, each with the remaining
    arguments; ``list-methods`` prints the engine's method registry;
    everything else is parsed as an experiment name.
    """
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "serve":
        from repro.service.server import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "loadgen":
        from repro.loadgen import main as loadgen_main

        return loadgen_main(argv[1:])
    if argv and argv[0] == "list-methods":
        print(format_method_registry())
        return 0
    args = _build_parser().parse_args(argv)
    config = _PRESETS[args.preset]()
    if args.seed is not None:
        config = dataclasses.replace(config, seed=args.seed)
    dataset = build_default_dataset(noise_sigma=config.noise_sigma, seed=config.seed)

    sections: list[str] = []
    wants = args.experiment
    table2_result = None
    if wants in {"table2", "figure6", "figure7", "all"}:
        table2_result = run_table2(dataset, config)
    if wants in {"table2", "all"}:
        sections.append(format_table2(table2_result))
    if wants in {"figure6", "all"}:
        sections.append(
            format_figure_series(
                figure6_series(table2=table2_result),
                "Figure 6 - per-benchmark Spearman rank correlation",
                higher_is_better=True,
            )
        )
    if wants in {"figure7", "all"}:
        sections.append(
            format_figure_series(
                figure7_series(table2=table2_result),
                "Figure 7 - per-benchmark top-1 prediction error (%)",
                higher_is_better=False,
            )
        )
    if wants in {"table3", "all"}:
        sections.append(format_table3(run_table3(dataset, config)))
    if wants in {"table4", "all"}:
        sections.append(format_table4(run_table4(dataset, config)))
    if wants in {"figure8", "all"}:
        sections.append(format_figure8(run_figure8(dataset, config)))

    print("\n\n".join(sections))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
