"""Unified method registry — the engine's single source of truth for methods.

Before this module existed the codebase had two parallel dispatch worlds:
batch-capable methods were wired up by hand wherever they were used (the
pipeline, the service, the experiments line-up, the CLI), and GA-kNN fell
through to the per-cell loop.  :mod:`repro.core.engine` collapses that into
one registry:

* :func:`register_method` declares a ranking method once — a *factory*
  building the instance from :class:`MethodParams`, plus the
  *capabilities* it supports (``batched`` / ``per-cell`` / ``backend``);
* :func:`create_method` / :func:`create_methods` /
  :func:`resolve_methods` are the only places a method name is turned into
  an implementation — :func:`~repro.core.pipeline.run_cross_validation`,
  :func:`~repro.core.pipeline.predict_split_scores`, the prediction
  service, ``repro-experiments`` and ``repro-serve`` all route through
  them; and
* :func:`registered_methods` powers discovery
  (``repro-experiments list-methods``) and the docs completeness check
  (``tools/check_registry.py``).

Adding a method is now a one-file change: implement it, register it, and
every consumer — offline tables, online service, CLI — can name it.
Variant registrations share a *label* (the canonical result-table name):
``"NN^T/per-cell"`` is the sequential reference implementation of the
method labelled ``NN^T``, which the equivalence tests and engine benches
resolve explicitly.

Examples::

    >>> sorted(spec.name for spec in registered_methods() if "batched" in spec.capabilities)
    ['GA-kNN', 'MLP^T', 'NN^T']
    >>> method_spec("GA-kNN").label
    'GA-kNN'
    >>> create_method("NN^T").__class__.__name__
    'BatchedLinearTransposition'
    >>> sorted(resolve_methods(["NN^T", "MLP^T"]))
    ['MLP^T', 'NN^T']
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from repro.ml.genetic import GAConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import RankingMethod

__all__ = [
    "CAPABILITIES",
    "DEFAULT_METHOD",
    "CapabilityMismatchError",
    "DuplicateMethodError",
    "MethodParams",
    "MethodRegistryError",
    "MethodSpec",
    "UnknownMethodError",
    "create_method",
    "create_methods",
    "method_spec",
    "register_method",
    "registered_methods",
    "resolve_methods",
    "unregister_method",
]

#: Method used when a caller does not name one (the paper's headline method).
DEFAULT_METHOD = "NN^T"

#: The capability vocabulary.  ``batched``: implements
#: :class:`~repro.core.batch.BatchedRankingMethod` (one tensor pass per
#: split).  ``per-cell``: implements the per-application
#: :class:`~repro.core.pipeline.RankingMethod` protocol only.  ``backend``:
#: hot loops run on a pluggable :mod:`~repro.core.backends` kernel.
CAPABILITIES = frozenset({"batched", "per-cell", "backend"})


class MethodRegistryError(ValueError):
    """Base class for registry misuse (unknown names, duplicates, ...)."""


class UnknownMethodError(MethodRegistryError):
    """A method name no registration covers."""


class DuplicateMethodError(MethodRegistryError):
    """A second registration under an already-taken name."""


class CapabilityMismatchError(MethodRegistryError):
    """A method that lacks a capability the caller requires."""


@dataclass(frozen=True)
class MethodParams:
    """Hyper-parameters a method factory may consume.

    The engine-level mirror of the experiment-layer knobs (see
    :meth:`repro.experiments.config.ExperimentConfig.method_params`, which
    adapts a preset into one of these).  Defaults match the paper-faithful
    ``full`` preset.

    Examples::

        >>> MethodParams().knn_neighbours
        10
        >>> config = MethodParams(ga_population=16, ga_generations=8).ga_config()
        >>> (config.population_size, config.generations)
        (16, 8)
    """

    mlp_epochs: int = 500
    mlp_hidden_units: int | None = None
    ga_population: int = 30
    ga_generations: int = 15
    knn_neighbours: int = 10
    seed: int = 0
    #: Array backend name for backend-capable methods (``None`` resolves
    #: via ``REPRO_BACKEND``, default NumPy).
    backend: str | None = None

    def ga_config(self) -> GAConfig:
        """The GA hyper-parameters implied by these params."""
        return GAConfig(
            population_size=self.ga_population, generations=self.ga_generations
        )


@dataclass(frozen=True)
class MethodSpec:
    """One registry entry: everything the engine knows about a method.

    Attributes
    ----------
    name:
        Registry name, unique (``"NN^T"``, ``"GA-kNN/per-cell"``, ...).
    factory:
        ``factory(params: MethodParams) -> RankingMethod``.
    capabilities:
        Subset of :data:`CAPABILITIES`.
    label:
        Canonical result-table name; variants of one method share it
        (``"NN^T/per-cell"`` carries the label ``"NN^T"``).
    description:
        One line for ``repro-experiments list-methods``.
    fallback:
        Registry name of a cheaper method the serving layer may degrade
        to when this one cannot meet a query's deadline (``None`` = no
        degradation; this method is already the cheap end of its chain).
    """

    name: str
    factory: Callable[[MethodParams], "RankingMethod"]
    capabilities: frozenset[str]
    label: str
    description: str = ""
    fallback: str | None = None

    def create(self, params: MethodParams | None = None) -> "RankingMethod":
        """Build a fresh method instance under *params* (default params if None)."""
        return self.factory(params if params is not None else MethodParams())


_REGISTRY: dict[str, MethodSpec] = {}


def register_method(
    name: str,
    factory: Callable[[MethodParams], "RankingMethod"],
    capabilities: Iterable[str],
    label: str | None = None,
    description: str = "",
    fallback: str | None = None,
    replace: bool = False,
) -> MethodSpec:
    """Register a ranking method and return its :class:`MethodSpec`.

    *fallback* optionally names the (cheaper, already-registered) method
    the serving layer may degrade to under deadline pressure.

    Raises :class:`DuplicateMethodError` when *name* is taken (pass
    ``replace=True`` to overwrite deliberately) and ``ValueError`` when a
    capability is outside :data:`CAPABILITIES`.

    Examples::

        >>> spec = register_method(
        ...     "doctest-method", lambda params: None, ["per-cell"],
        ...     description="throwaway doctest entry",
        ... )
        >>> (spec.label, sorted(spec.capabilities))
        ('doctest-method', ['per-cell'])
        >>> unregister_method("doctest-method")
    """
    if not name:
        raise MethodRegistryError("method name must be non-empty")
    capability_set = frozenset(capabilities)
    unknown = capability_set - CAPABILITIES
    if unknown:
        raise MethodRegistryError(
            f"unknown capabilities {sorted(unknown)} (known: {sorted(CAPABILITIES)})"
        )
    if not capability_set:
        raise MethodRegistryError("a method must declare at least one capability")
    if name in _REGISTRY and not replace:
        raise DuplicateMethodError(
            f"method {name!r} is already registered (pass replace=True to overwrite)"
        )
    if fallback is not None and fallback == name:
        raise MethodRegistryError(f"method {name!r} cannot fall back to itself")
    spec = MethodSpec(
        name=name,
        factory=factory,
        capabilities=capability_set,
        label=label if label is not None else name,
        description=description,
        fallback=fallback,
    )
    _REGISTRY[name] = spec
    return spec


def unregister_method(name: str) -> None:
    """Remove a registration (raises :class:`UnknownMethodError` if absent)."""
    if name not in _REGISTRY:
        raise UnknownMethodError(f"method {name!r} is not registered")
    del _REGISTRY[name]


def method_spec(name: str) -> MethodSpec:
    """The :class:`MethodSpec` registered under *name*.

    Examples::

        >>> method_spec("MLP^T").capabilities == frozenset({"batched", "backend"})
        True
        >>> try:
        ...     method_spec("nope")
        ... except UnknownMethodError as exc:
        ...     print(type(exc).__name__)
        UnknownMethodError
    """
    spec = _REGISTRY.get(name)
    if spec is None:
        raise UnknownMethodError(
            f"unknown method {name!r} (registered: {sorted(_REGISTRY)})"
        )
    return spec


def registered_methods() -> tuple[MethodSpec, ...]:
    """Every registered spec, sorted by name.

    Examples::

        >>> names = [spec.name for spec in registered_methods()]
        >>> "NN^T" in names and "GA-kNN/per-cell" in names
        True
    """
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def create_method(
    name: str,
    params: MethodParams | None = None,
    require: Iterable[str] = (),
) -> "RankingMethod":
    """Build a fresh instance of the method registered under *name*.

    *require* lists capabilities the caller depends on; a spec lacking one
    raises :class:`CapabilityMismatchError` instead of silently degrading
    (e.g. requiring ``batched`` from a per-cell-only method).

    Examples::

        >>> create_method("GA-kNN", require=["batched"]).__class__.__name__
        'BatchedGAKNN'
    """
    spec = method_spec(name)
    required = frozenset(require)
    unknown = required - CAPABILITIES
    if unknown:
        raise MethodRegistryError(
            f"unknown capabilities {sorted(unknown)} (known: {sorted(CAPABILITIES)})"
        )
    missing = required - spec.capabilities
    if missing:
        raise CapabilityMismatchError(
            f"method {name!r} lacks required capabilities {sorted(missing)} "
            f"(has: {sorted(spec.capabilities)})"
        )
    return spec.create(params)


def create_methods(
    names: Sequence[str],
    params: MethodParams | None = None,
    require: Iterable[str] = (),
) -> dict[str, "RankingMethod"]:
    """Build several methods at once, keyed by their canonical *label*.

    Two names resolving to the same label (a method and its variant) in
    one call is a mistake and raises :class:`MethodRegistryError`.

    Examples::

        >>> sorted(create_methods(["NN^T", "GA-kNN"]))
        ['GA-kNN', 'NN^T']
    """
    methods: dict[str, "RankingMethod"] = {}
    for name in names:
        spec = method_spec(name)
        if spec.label in methods:
            raise MethodRegistryError(
                f"two methods labelled {spec.label!r} in one line-up ({name!r} collides)"
            )
        methods[spec.label] = create_method(name, params, require)
    return methods


def resolve_methods(
    methods: "Mapping[str, RankingMethod] | Sequence[str] | str",
    params: MethodParams | None = None,
) -> dict[str, "RankingMethod"]:
    """Normalise a caller's method specification to ``{label: instance}``.

    The one resolution point every engine consumer funnels through: a
    mapping of already-built instances passes through unchanged (the caller
    owns naming and construction), a sequence of registry names — or a
    single name — is built via :func:`create_methods`.

    Examples::

        >>> sorted(resolve_methods("NN^T"))
        ['NN^T']
        >>> method = create_method("NN^T")
        >>> resolve_methods({"mine": method})["mine"] is method
        True
    """
    if isinstance(methods, Mapping):
        return dict(methods)
    if isinstance(methods, str):
        methods = [methods]
    return create_methods(methods, params)


# --------------------------------------------------------------------------
# Built-in registrations: the paper's three ranking methods (batched
# first-class implementations plus their sequential per-cell reference
# variants) and the naive baselines.  Factories import lazily where needed
# to keep module import cheap; all hyper-parameters come from MethodParams.
# --------------------------------------------------------------------------


def _make_nnt(params: MethodParams) -> "RankingMethod":
    from repro.core.batch import BatchedLinearTransposition

    return BatchedLinearTransposition(backend=params.backend)


def _make_nnt_per_cell(params: MethodParams) -> "RankingMethod":
    from repro.core.batch import TranspositionMethod
    from repro.core.linear_predictor import LinearTranspositionPredictor

    return TranspositionMethod(LinearTranspositionPredictor, "NN^T")


def _make_mlpt(params: MethodParams) -> "RankingMethod":
    from repro.core.batch import BatchedMLPTransposition

    return BatchedMLPTransposition(
        hidden_units=params.mlp_hidden_units,
        epochs=params.mlp_epochs,
        seed=params.seed,
        backend=params.backend,
    )


def _make_mlpt_per_cell(params: MethodParams) -> "RankingMethod":
    from repro.core.batch import TranspositionMethod
    from repro.core.mlp_predictor import MLPTranspositionPredictor

    return TranspositionMethod(
        partial(
            MLPTranspositionPredictor,
            hidden_units=params.mlp_hidden_units,
            epochs=params.mlp_epochs,
            seed=params.seed,
        ),
        "MLP^T",
    )


def _make_gaknn(params: MethodParams) -> "RankingMethod":
    from repro.baselines.ga_knn import BatchedGAKNN

    return BatchedGAKNN(
        k=params.knn_neighbours, ga_config=params.ga_config(), seed=params.seed
    )


def _make_gaknn_per_cell(params: MethodParams) -> "RankingMethod":
    from repro.baselines.ga_knn import GAKNNBaseline

    return GAKNNBaseline(
        k=params.knn_neighbours, ga_config=params.ga_config(), seed=params.seed
    )


def _make_suite_mean(params: MethodParams) -> "RankingMethod":
    from repro.baselines.naive import SuiteMeanBaseline

    return SuiteMeanBaseline()


def _make_domain_mean(params: MethodParams) -> "RankingMethod":
    from repro.baselines.naive import DomainMeanBaseline

    return DomainMeanBaseline()


def _make_most_similar(params: MethodParams) -> "RankingMethod":
    from repro.baselines.proxy import MostSimilarBenchmarkBaseline

    return MostSimilarBenchmarkBaseline()


register_method(
    "NN^T",
    _make_nnt,
    ["batched", "backend"],
    description="data transposition, per-(predictive,target) linear fits; "
    "rank-one leave-one-out downdating on the backend kernel",
)
register_method(
    "NN^T/per-cell",
    _make_nnt_per_cell,
    ["per-cell"],
    label="NN^T",
    description="sequential NN^T reference (one refit per cell); "
    "equivalence baseline for the batched path",
)
register_method(
    "MLP^T",
    _make_mlpt,
    ["batched", "backend"],
    description="data transposition via MLP regression; all leave-one-out "
    "networks trained as one stacked SGD pass on the backend kernel",
    fallback="NN^T",
)
register_method(
    "MLP^T/per-cell",
    _make_mlpt_per_cell,
    ["per-cell"],
    label="MLP^T",
    description="sequential MLP^T reference (one network per cell); "
    "equivalence baseline for the batched path",
    fallback="NN^T/per-cell",
)
register_method(
    "GA-kNN",
    _make_gaknn,
    ["batched"],
    description="Hoste et al. prior art; all per-cell GAs evolved in "
    "lockstep with one stacked LOO-fitness tensor pass per generation",
    fallback="NN^T",
)
register_method(
    "GA-kNN/per-cell",
    _make_gaknn_per_cell,
    ["per-cell"],
    label="GA-kNN",
    description="sequential GA-kNN reference (one GA per cell); "
    "equivalence baseline for the batched path",
    fallback="NN^T/per-cell",
)
register_method(
    "SuiteMean",
    _make_suite_mean,
    ["per-cell"],
    description="naive baseline: rank machines by their mean score over "
    "the training suite",
)
register_method(
    "DomainMean",
    _make_domain_mean,
    ["per-cell"],
    description="naive baseline: rank machines by their mean score over "
    "the application's domain (integer/floating-point)",
)
register_method(
    "MostSimilarBenchmark",
    _make_most_similar,
    ["per-cell"],
    description="proxy baseline: rank machines by the scores of the most "
    "similar training benchmark",
)
