"""The data-transposition method.

:class:`DataTransposition` is the user-facing orchestrator: given a dataset,
a predictive/target machine split and an application of interest, it

1. extracts the training-benchmark scores on the predictive machines and the
   application's measured scores on those machines,
2. hands them to a transposition predictor (NNᵀ or MLPᵀ), and
3. returns the predicted scores / ranking of the target machines.

The class knows nothing about how the predictor works internally — anything
implementing ``predict(benchmark_scores_predictive, app_scores_predictive,
benchmark_scores_target)`` can be plugged in, which is also how the ablation
benches swap in variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.core.linear_predictor import LinearTranspositionPredictor
from repro.core.mlp_predictor import MLPTranspositionPredictor
from repro.core.ranking import MachineRanking
from repro.data.spec_dataset import SpecDataset
from repro.data.splits import MachineSplit

__all__ = ["TranspositionPredictor", "DataTransposition", "TranspositionResult"]


class TranspositionPredictor(Protocol):
    """Anything that maps predictive-machine measurements to target predictions."""

    def predict(
        self,
        benchmark_scores_predictive: np.ndarray,
        app_scores_predictive: np.ndarray,
        benchmark_scores_target: np.ndarray,
    ) -> np.ndarray:
        """Return predicted application scores, one per target machine."""
        ...  # pragma: no cover - protocol definition


@dataclass(frozen=True)
class TranspositionResult:
    """Predictions of one data-transposition run."""

    application: str
    split_name: str
    target_ids: tuple[str, ...]
    predicted_scores: tuple[float, ...]

    def ranking(self) -> MachineRanking:
        """The predicted machine ranking for the application of interest."""
        return MachineRanking(machine_ids=self.target_ids, scores=self.predicted_scores)


class DataTransposition:
    """Rank target machines for an application of interest by transposition.

    Parameters
    ----------
    predictor:
        A transposition predictor instance; defaults to the MLPᵀ model the
        paper found most accurate.  Use
        :class:`repro.core.linear_predictor.LinearTranspositionPredictor`
        for the NNᵀ flavour.

    Examples::

        >>> from repro.data import MachineSplit, build_default_dataset
        >>> dataset = build_default_dataset()
        >>> split = MachineSplit(
        ...     name="demo",
        ...     predictive_ids=tuple(dataset.machine_ids[:4]),
        ...     target_ids=tuple(dataset.machine_ids[4:8]),
        ... )
        >>> ranking = DataTransposition.with_linear_regression().rank_machines(
        ...     dataset, split, "gcc"
        ... )
        >>> len(ranking.top(2))
        2
    """

    def __init__(self, predictor: TranspositionPredictor | None = None) -> None:
        self.predictor = predictor if predictor is not None else MLPTranspositionPredictor()

    @classmethod
    def with_linear_regression(cls, **kwargs) -> "DataTransposition":
        """Convenience constructor for the NNᵀ flavour."""
        return cls(LinearTranspositionPredictor(**kwargs))

    @classmethod
    def with_mlp(cls, **kwargs) -> "DataTransposition":
        """Convenience constructor for the MLPᵀ flavour."""
        return cls(MLPTranspositionPredictor(**kwargs))

    # ------------------------------------------------------------------ API
    def predict_scores(
        self,
        dataset: SpecDataset,
        split: MachineSplit,
        application: str,
        training_benchmarks: Sequence[str] | None = None,
        app_scores_predictive: Sequence[float] | None = None,
    ) -> TranspositionResult:
        """Predict the application's score on every target machine of *split*.

        Parameters
        ----------
        dataset:
            The study dataset (matrix + metadata).
        split:
            Which machines are predictive vs. target.
        application:
            Name of the application of interest.  In the paper's leave-one-
            out evaluation this is one of the suite benchmarks; it is then
            removed from the training benchmarks automatically.
        training_benchmarks:
            Benchmarks to use as the "industry-standard suite"; defaults to
            every benchmark in the dataset except the application itself.
        app_scores_predictive:
            Measured scores of the application on the predictive machines.
            Defaults to the values recorded in the dataset matrix, which is
            what the leave-one-out evaluation uses; real users of the
            library pass their own measurements here.
        """
        if training_benchmarks is None:
            training_benchmarks = [
                name for name in dataset.benchmark_names if name != application
            ]
        else:
            training_benchmarks = list(training_benchmarks)
            if application in training_benchmarks:
                raise ValueError(
                    "the application of interest must not be part of the training benchmarks"
                )
        if not training_benchmarks:
            raise ValueError("at least one training benchmark is required")

        train_matrix = dataset.matrix.select_benchmarks(training_benchmarks)
        predictive = train_matrix.select_machines(split.predictive_ids)
        target = train_matrix.select_machines(split.target_ids)

        if app_scores_predictive is None:
            app_row = dataset.matrix.benchmark_scores(application)
            machine_index = dataset.matrix.machine_index_map
            app_scores = np.array(
                [app_row[machine_index[mid]] for mid in split.predictive_ids], dtype=float
            )
        else:
            app_scores = np.asarray(app_scores_predictive, dtype=float)
            if app_scores.shape != (len(split.predictive_ids),):
                raise ValueError(
                    "app_scores_predictive must provide one measurement per predictive machine"
                )

        predictions = self.predictor.predict(predictive.scores, app_scores, target.scores)
        return TranspositionResult(
            application=application,
            split_name=split.name,
            target_ids=tuple(split.target_ids),
            predicted_scores=tuple(float(value) for value in predictions),
        )

    def rank_machines(
        self,
        dataset: SpecDataset,
        split: MachineSplit,
        application: str,
        **kwargs,
    ) -> MachineRanking:
        """Predicted ranking of the target machines (best machine first in ``.top()``)."""
        return self.predict_scores(dataset, split, application, **kwargs).ranking()
