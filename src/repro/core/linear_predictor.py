"""NNᵀ — data transposition through linear regression.

Section 3.2.1 of the paper: for every target machine, fit a simple linear
regression against *each* predictive machine (the 28 training benchmarks are
the observations), keep the predictive machine whose model fits best — the
"nearest-neighbour machine" — and use that model to map the application of
interest's measured score on the predictive machine to a predicted score on
the target machine.

The per-pair univariate fits have a closed form, so the whole
(targets x predictive) grid of regressions is computed with a handful of
matrix operations rather than an explicit double loop, and the best-fit
selection uses a vectorised ``argpartition`` over the whole grid at once.

For the leave-one-out evaluation, :meth:`LinearTranspositionPredictor.
predict_leave_one_out` goes one step further: the sufficient statistics
(``sxx``, ``syy``, ``sxy``) are computed once on the full benchmark set and
every application's fit is derived by *downdating* them with that
application's row, instead of re-centering and refitting once per
application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["LinearFitDetail", "LinearTranspositionPredictor"]


@dataclass(frozen=True)
class LinearFitDetail:
    """Diagnostics of the model chosen for one target machine."""

    target_index: int
    chosen_predictive_index: int
    slope: float
    intercept: float
    r_squared: float


def _stable_top_k(quality: np.ndarray, k: int) -> np.ndarray:
    """Per-column indices of the *k* highest-quality rows, in quality order.

    Equivalent to ``np.argsort(-quality, axis=0, kind="mergesort")[:k]``
    (descending quality, ties broken by lower row index) but built on a
    vectorised ``argpartition`` so only the k candidates per column are
    sorted.  Columns with exact quality ties across the partition boundary
    — where the candidate *set* itself is ambiguous — fall back to the full
    stable sort, preserving the historical tie-breaking exactly.
    """
    n_rows = quality.shape[0]
    if k >= n_rows:
        return np.argsort(-quality, axis=0, kind="mergesort")
    candidates = np.sort(np.argpartition(-quality, k - 1, axis=0)[:k], axis=0)
    cand_quality = np.take_along_axis(quality, candidates, axis=0)
    order = np.argsort(-cand_quality, axis=0, kind="mergesort")
    chosen = np.take_along_axis(candidates, order, axis=0)
    boundary = cand_quality.min(axis=0)
    ambiguous = np.nonzero((quality >= boundary).sum(axis=0) > k)[0]
    if ambiguous.size:
        chosen[:, ambiguous] = np.argsort(
            -quality[:, ambiguous], axis=0, kind="mergesort"
        )[:k]
    return chosen


class LinearTranspositionPredictor:
    """Best-fitting single-predictive-machine linear regression (NNᵀ).

    Parameters
    ----------
    selection_criterion:
        ``"rss"`` keeps the predictive machine with the lowest residual sum
        of squares (equivalently the highest R², the paper's "best fit");
        ``"correlation"`` keeps the one with the highest absolute Pearson
        correlation.  Both criteria agree except in degenerate cases; the
        ablation bench compares them.
    top_k:
        Number of best-fitting predictive machines to average over.  The
        paper uses the single best machine (``top_k=1``); the ablation bench
        explores small ensembles.
    """

    def __init__(
        self,
        selection_criterion: str = "rss",
        top_k: int = 1,
        backend: "str | object | None" = None,
    ) -> None:
        if selection_criterion not in {"rss", "correlation"}:
            raise ValueError("selection_criterion must be 'rss' or 'correlation'")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.selection_criterion = selection_criterion
        self.top_k = int(top_k)
        self.backend = backend
        self.fit_details_: list[LinearFitDetail] = []

    # ------------------------------------------------------------- internals
    def _fit_from_statistics(
        self,
        sxx: np.ndarray,
        syy: np.ndarray,
        sxy: np.ndarray,
        mean_x: np.ndarray,
        mean_y: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Slopes, intercepts, residuals and selection quality from (P,)/(T,)/(P,T) stats."""
        degenerate = sxx <= 0.0
        safe_sxx = np.where(degenerate, 1.0, sxx)
        slopes = sxy / safe_sxx[:, None]                          # (P, T)
        slopes[degenerate, :] = 0.0
        intercepts = mean_y[None, :] - slopes * mean_x[:, None]

        # Residual sum of squares of each fit: syy - slope * sxy.
        rss = np.clip(syy[None, :] - slopes * sxy, 0.0, None)     # (P, T)

        if self.selection_criterion == "rss":
            quality = -rss
        else:
            denom = np.sqrt(np.outer(safe_sxx, np.where(syy <= 0.0, 1.0, syy)))
            quality = np.abs(sxy / denom)
            quality[degenerate, :] = 0.0
        return slopes, intercepts, rss, quality

    def _select_predictions(
        self,
        slopes: np.ndarray,
        intercepts: np.ndarray,
        quality: np.ndarray,
        app: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k averaged predictions per target, plus the best machine per target."""
        k = min(self.top_k, slopes.shape[0])
        chosen = _stable_top_k(quality, k)                        # (k, T)
        per_machine = (
            np.take_along_axis(slopes, chosen, axis=0) * app[chosen]
            + np.take_along_axis(intercepts, chosen, axis=0)
        )
        return per_machine.mean(axis=0), chosen[0]

    @staticmethod
    def _validate(pred: np.ndarray, target: np.ndarray) -> None:
        if pred.ndim != 2 or target.ndim != 2:
            raise ValueError("benchmark score matrices must be 2-D")
        if pred.shape[0] != target.shape[0]:
            raise ValueError(
                "predictive and target matrices must cover the same benchmarks: "
                f"{pred.shape[0]} vs {target.shape[0]}"
            )

    # ----------------------------------------------------------------- API
    def predict(
        self,
        benchmark_scores_predictive: np.ndarray,
        app_scores_predictive: np.ndarray,
        benchmark_scores_target: np.ndarray,
    ) -> np.ndarray:
        """Predict the application of interest's score on every target machine.

        Parameters
        ----------
        benchmark_scores_predictive:
            (benchmarks x predictive machines) training-benchmark scores on
            the machines the user can measure on.
        app_scores_predictive:
            (predictive machines,) measured scores of the application of
            interest on the predictive machines.
        benchmark_scores_target:
            (benchmarks x target machines) published training-benchmark
            scores on the machines being ranked.

        Returns
        -------
        (target machines,) predicted application-of-interest scores.
        """
        pred = np.asarray(benchmark_scores_predictive, dtype=float)
        app = np.asarray(app_scores_predictive, dtype=float)
        target = np.asarray(benchmark_scores_target, dtype=float)
        self._validate(pred, target)
        if pred.shape[0] < 2:
            raise ValueError("need at least two training benchmarks")
        if app.shape != (pred.shape[1],):
            raise ValueError(
                f"app_scores_predictive has shape {app.shape}, expected ({pred.shape[1]},)"
            )

        n_target = target.shape[1]

        # Closed-form simple regression for every (predictive, target) pair.
        mean_x = pred.mean(axis=0)
        mean_y = target.mean(axis=0)
        pred_centered = pred - mean_x[None, :]
        target_centered = target - mean_y[None, :]
        sxx = (pred_centered**2).sum(axis=0)                      # (P,)
        syy = (target_centered**2).sum(axis=0)                    # (T,)
        sxy = pred_centered.T @ target_centered                   # (P, T)

        slopes, intercepts, rss, quality = self._fit_from_statistics(
            sxx, syy, sxy, mean_x, mean_y
        )
        predictions, best = self._select_predictions(slopes, intercepts, quality, app)

        targets = np.arange(n_target)
        rss_best = rss[best, targets]
        ss_tot = syy
        r_squared = np.where(
            ss_tot == 0.0, 1.0, 1.0 - rss_best / np.where(ss_tot == 0.0, 1.0, ss_tot)
        )
        self.fit_details_ = [
            LinearFitDetail(
                target_index=int(t),
                chosen_predictive_index=int(best[t]),
                slope=float(slopes[best[t], t]),
                intercept=float(intercepts[best[t], t]),
                r_squared=float(r_squared[t]),
            )
            for t in targets
        ]
        return predictions

    def predict_leave_one_out(
        self,
        benchmark_scores_predictive: np.ndarray,
        benchmark_scores_target: np.ndarray,
        rows: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Leave-one-out predictions for benchmark rows in one pass.

        Output row *i* is what :meth:`predict` would return with benchmark
        ``rows[i]`` as the application of interest (its predictive-machine
        row as ``app_scores_predictive``) and all other benchmarks as the
        training set — but instead of re-centering and refitting per
        application, the full-set sufficient statistics are computed once
        and each application's fit is derived by a rank-one *downdate* with
        that application's row.  *rows* defaults to every benchmark.
        Agreement with the refit path is exact up to floating-point
        roundoff (~1e-12 relative); the equivalence suite enforces it.

        ``fit_details_`` is not populated by this entry point (there is one
        fit per application, not one); use :meth:`predict` for diagnostics.
        """
        pred = np.asarray(benchmark_scores_predictive, dtype=float)
        target = np.asarray(benchmark_scores_target, dtype=float)
        self._validate(pred, target)
        n_benchmarks = pred.shape[0]
        if n_benchmarks < 3:
            raise ValueError(
                "leave-one-out needs at least three benchmarks "
                "(two training benchmarks per fit)"
            )
        n_target = target.shape[1]
        row_indices = range(n_benchmarks) if rows is None else [int(r) for r in rows]
        if any(not 0 <= r < n_benchmarks for r in row_indices):
            raise ValueError("rows must index benchmark rows")

        # Downdating identities for removing row r (sample count B -> B - 1):
        #   mean' = (B * mean - row_r) / (B - 1)
        #   S'    = S - B / (B - 1) * (row_r - mean) ** 2   (and the cross term)
        # The stacked statistics kernel is backend-pluggable; the NumPy
        # reference computes each row's downdate with the historical
        # arithmetic, so predictions are bit-identical to the per-row loop.
        from repro.core.backends import resolve_backend

        row_array = np.fromiter(row_indices, dtype=np.intp)
        sxx_all, syy_all, sxy_all, mean_x_all, mean_y_all = resolve_backend(
            self.backend
        ).nnt_downdated_statistics(pred, target, row_array)

        predictions = np.empty((len(row_array), n_target))
        for i, r in enumerate(row_array):
            slopes, intercepts, _, quality = self._fit_from_statistics(
                sxx_all[i], syy_all[i], sxy_all[i], mean_x_all[i], mean_y_all[i]
            )
            predictions[i], _ = self._select_predictions(
                slopes, intercepts, quality, pred[r]
            )
        self.fit_details_ = []
        return predictions

    def chosen_predictive_machines(self) -> list[int]:
        """Index of the predictive machine chosen for each target machine."""
        return [detail.chosen_predictive_index for detail in self.fit_details_]
