"""NNᵀ — data transposition through linear regression.

Section 3.2.1 of the paper: for every target machine, fit a simple linear
regression against *each* predictive machine (the 28 training benchmarks are
the observations), keep the predictive machine whose model fits best — the
"nearest-neighbour machine" — and use that model to map the application of
interest's measured score on the predictive machine to a predicted score on
the target machine.

The per-pair univariate fits have a closed form, so the whole
(targets x predictive) grid of regressions is computed with a handful of
matrix operations rather than an explicit double loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LinearTranspositionPredictor", "LinearFitDetail"]


@dataclass(frozen=True)
class LinearFitDetail:
    """Diagnostics of the model chosen for one target machine."""

    target_index: int
    chosen_predictive_index: int
    slope: float
    intercept: float
    r_squared: float


class LinearTranspositionPredictor:
    """Best-fitting single-predictive-machine linear regression (NNᵀ).

    Parameters
    ----------
    selection_criterion:
        ``"rss"`` keeps the predictive machine with the lowest residual sum
        of squares (equivalently the highest R², the paper's "best fit");
        ``"correlation"`` keeps the one with the highest absolute Pearson
        correlation.  Both criteria agree except in degenerate cases; the
        ablation bench compares them.
    top_k:
        Number of best-fitting predictive machines to average over.  The
        paper uses the single best machine (``top_k=1``); the ablation bench
        explores small ensembles.
    """

    def __init__(self, selection_criterion: str = "rss", top_k: int = 1) -> None:
        if selection_criterion not in {"rss", "correlation"}:
            raise ValueError("selection_criterion must be 'rss' or 'correlation'")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.selection_criterion = selection_criterion
        self.top_k = int(top_k)
        self.fit_details_: list[LinearFitDetail] = []

    def predict(
        self,
        benchmark_scores_predictive: np.ndarray,
        app_scores_predictive: np.ndarray,
        benchmark_scores_target: np.ndarray,
    ) -> np.ndarray:
        """Predict the application of interest's score on every target machine.

        Parameters
        ----------
        benchmark_scores_predictive:
            (benchmarks x predictive machines) training-benchmark scores on
            the machines the user can measure on.
        app_scores_predictive:
            (predictive machines,) measured scores of the application of
            interest on the predictive machines.
        benchmark_scores_target:
            (benchmarks x target machines) published training-benchmark
            scores on the machines being ranked.

        Returns
        -------
        (target machines,) predicted application-of-interest scores.
        """
        pred = np.asarray(benchmark_scores_predictive, dtype=float)
        app = np.asarray(app_scores_predictive, dtype=float)
        target = np.asarray(benchmark_scores_target, dtype=float)
        if pred.ndim != 2 or target.ndim != 2:
            raise ValueError("benchmark score matrices must be 2-D")
        if pred.shape[0] != target.shape[0]:
            raise ValueError(
                "predictive and target matrices must cover the same benchmarks: "
                f"{pred.shape[0]} vs {target.shape[0]}"
            )
        if pred.shape[0] < 2:
            raise ValueError("need at least two training benchmarks")
        if app.shape != (pred.shape[1],):
            raise ValueError(
                f"app_scores_predictive has shape {app.shape}, expected ({pred.shape[1]},)"
            )

        n_benchmarks, n_predictive = pred.shape
        n_target = target.shape[1]

        # Closed-form simple regression for every (predictive, target) pair.
        pred_centered = pred - pred.mean(axis=0, keepdims=True)
        target_centered = target - target.mean(axis=0, keepdims=True)
        sxx = (pred_centered**2).sum(axis=0)                      # (P,)
        syy = (target_centered**2).sum(axis=0)                    # (T,)
        sxy = pred_centered.T @ target_centered                   # (P, T)

        safe_sxx = np.where(sxx == 0.0, 1.0, sxx)
        slopes = sxy / safe_sxx[:, None]                          # (P, T)
        slopes[sxx == 0.0, :] = 0.0
        intercepts = target.mean(axis=0)[None, :] - slopes * pred.mean(axis=0)[:, None]

        # Residual sum of squares of each fit: syy - slope * sxy.
        rss = syy[None, :] - slopes * sxy                         # (P, T)
        rss = np.clip(rss, 0.0, None)

        if self.selection_criterion == "rss":
            quality = -rss
        else:
            denom = np.sqrt(np.outer(safe_sxx, np.where(syy == 0.0, 1.0, syy)))
            corr = np.abs(sxy / denom)
            corr[sxx == 0.0, :] = 0.0
            quality = corr

        predictions = np.empty(n_target, dtype=float)
        self.fit_details_ = []
        k = min(self.top_k, n_predictive)
        for t in range(n_target):
            order = np.argsort(-quality[:, t], kind="mergesort")
            chosen = order[:k]
            per_machine = slopes[chosen, t] * app[chosen] + intercepts[chosen, t]
            predictions[t] = float(per_machine.mean())
            best = int(chosen[0])
            ss_tot = float(syy[t])
            r_squared = 1.0 if ss_tot == 0.0 else 1.0 - float(rss[best, t]) / ss_tot
            self.fit_details_.append(
                LinearFitDetail(
                    target_index=t,
                    chosen_predictive_index=best,
                    slope=float(slopes[best, t]),
                    intercept=float(intercepts[best, t]),
                    r_squared=r_squared,
                )
            )
        return predictions

    def chosen_predictive_machines(self) -> list[int]:
        """Index of the predictive machine chosen for each target machine."""
        return [detail.chosen_predictive_index for detail in self.fit_details_]
