"""Predictive-machine selection.

Section 6.5 of the paper asks how the handful of predictive machines should
be chosen when only a few are affordable.  Two strategies are compared in
Figure 8: random selection and k-medoid clustering of the machines in the
benchmark-score space (the medoids become the predictive machines, giving a
diverse set that "maximises the coverage relative to the target machines").
A greedy farthest-point heuristic is included as an extra ablation point.
"""

from __future__ import annotations

import numpy as np

from repro.data.spec_dataset import SpecDataset
from repro.ml.distances import pairwise_distances
from repro.ml.kmedoids import KMedoids
from repro.ml.preprocessing import StandardScaler

__all__ = [
    "machine_feature_matrix",
    "select_random",
    "select_k_medoids",
    "select_farthest_point",
]


def machine_feature_matrix(dataset: SpecDataset, machine_ids: list[str]) -> np.ndarray:
    """One row per machine: its standardised benchmark-score vector.

    Machines are points in the benchmark-score space; standardising each
    benchmark dimension keeps high-scoring benchmarks from dominating the
    distances used by clustering.
    """
    if not machine_ids:
        raise ValueError("machine_ids must not be empty")
    columns = dataset.matrix.select_machines(machine_ids).scores.T
    return StandardScaler().fit_transform(columns)


def select_random(candidate_ids: list[str], count: int, seed: int = 0) -> list[str]:
    """Uniformly random selection of *count* predictive machines.

    Examples::

        >>> select_random(["m1", "m2", "m3", "m4"], 2, seed=0)
        ['m3', 'm4']
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if count > len(candidate_ids):
        raise ValueError(
            f"cannot select {count} machines from {len(candidate_ids)} candidates"
        )
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(candidate_ids), size=count, replace=False)
    return [candidate_ids[i] for i in sorted(chosen)]


def select_k_medoids(
    dataset: SpecDataset, candidate_ids: list[str], count: int, seed: int = 0
) -> list[str]:
    """Select *count* predictive machines as k-medoid cluster centres.

    This is the paper's diversity-maximising strategy: the medoids of a
    k-medoid clustering of the candidate machines in benchmark-score space.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if count > len(candidate_ids):
        raise ValueError(
            f"cannot select {count} machines from {len(candidate_ids)} candidates"
        )
    features = machine_feature_matrix(dataset, candidate_ids)
    model = KMedoids(n_clusters=count, seed=seed).fit(features)
    return [candidate_ids[i] for i in sorted(model.medoid_indices_.tolist())]


def select_farthest_point(
    dataset: SpecDataset, candidate_ids: list[str], count: int, seed: int = 0
) -> list[str]:
    """Greedy farthest-point selection (an alternative diversity heuristic).

    Starts from a random machine and repeatedly adds the candidate whose
    minimum distance to the already-selected set is largest.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if count > len(candidate_ids):
        raise ValueError(
            f"cannot select {count} machines from {len(candidate_ids)} candidates"
        )
    features = machine_feature_matrix(dataset, candidate_ids)
    distances = pairwise_distances(features)
    rng = np.random.default_rng(seed)
    selected = [int(rng.integers(0, len(candidate_ids)))]
    while len(selected) < count:
        min_dist_to_selected = distances[:, selected].min(axis=1)
        min_dist_to_selected[selected] = -1.0
        selected.append(int(np.argmax(min_dist_to_selected)))
    return [candidate_ids[i] for i in sorted(selected)]
