"""MLPᵀ — data transposition through a multi-layer perceptron.

Section 3.2.2 of the paper: train a neural network whose inputs are the
scores of the training benchmarks on a machine and whose output is the
score of the application of interest on that machine.  The training samples
are the predictive machines (where both quantities were measured); once
trained, the network is applied to each target machine's published
benchmark scores to predict the application of interest's score there.
The implicit assumption — that the benchmark/application relationship
transfers from predictive to target machines — is exactly the
machine-similarity bet data transposition makes.
"""

from __future__ import annotations

import numpy as np

from repro.ml.mlp import MLPRegressor

__all__ = ["MLPTranspositionPredictor"]


class MLPTranspositionPredictor:
    """Multi-layer-perceptron predictor over benchmark-score features (MLPᵀ).

    Parameters
    ----------
    hidden_units:
        Hidden layer size; ``None`` uses WEKA's ``(n_features + 1) // 2``
        default, i.e. 14 units for 28 training benchmarks.
    epochs, learning_rate, momentum:
        SGD hyper-parameters.  Epochs and momentum follow WEKA's
        MultilayerPerceptron defaults (500, 0.2); the learning rate defaults
        to 0.05 rather than WEKA's 0.3 because plain per-sample SGD at 0.3
        diverges on the very small predictive-machine training sets used in
        Tables 3/4 and Figure 8 (WEKA's implementation decays its rate and
        validates internally).  Experiments that sweep many cells lower
        ``epochs`` to keep runtimes laptop-friendly; the accuracy impact is
        measured by the ablation bench.
    seed:
        Seed for weight initialisation / shuffling, so runs are repeatable.
    gradient_clip:
        Per-sample error-signal clip threshold forwarded to
        :class:`repro.ml.mlp.MLPRegressor`; raise it when tuning
        ``learning_rate``, since the clip caps the error signal regardless
        of the step size.
    """

    def __init__(
        self,
        hidden_units: int | None = None,
        epochs: int = 500,
        learning_rate: float = 0.05,
        momentum: float = 0.2,
        seed: int = 0,
        gradient_clip: float = MLPRegressor.GRADIENT_CLIP,
    ) -> None:
        self.hidden_units = hidden_units
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self.seed = int(seed)
        self.gradient_clip = float(gradient_clip)
        self.model_: MLPRegressor | None = None

    def predict(
        self,
        benchmark_scores_predictive: np.ndarray,
        app_scores_predictive: np.ndarray,
        benchmark_scores_target: np.ndarray,
    ) -> np.ndarray:
        """Predict the application of interest's score on every target machine.

        Parameters mirror
        :meth:`repro.core.linear_predictor.LinearTranspositionPredictor.predict`;
        the samples fed to the network are machines (columns), the features
        are the training benchmarks (rows).
        """
        pred = np.asarray(benchmark_scores_predictive, dtype=float)
        app = np.asarray(app_scores_predictive, dtype=float)
        target = np.asarray(benchmark_scores_target, dtype=float)
        if pred.ndim != 2 or target.ndim != 2:
            raise ValueError("benchmark score matrices must be 2-D")
        if pred.shape[0] != target.shape[0]:
            raise ValueError(
                "predictive and target matrices must cover the same benchmarks: "
                f"{pred.shape[0]} vs {target.shape[0]}"
            )
        if app.shape != (pred.shape[1],):
            raise ValueError(
                f"app_scores_predictive has shape {app.shape}, expected ({pred.shape[1]},)"
            )
        if pred.shape[1] < 2:
            raise ValueError("MLPᵀ needs at least two predictive machines to train on")

        # machines are samples, benchmarks are features
        train_features = pred.T
        train_targets = app
        self.model_ = MLPRegressor(
            hidden_units=self.hidden_units,
            learning_rate=self.learning_rate,
            momentum=self.momentum,
            epochs=self.epochs,
            seed=self.seed,
            gradient_clip=self.gradient_clip,
        ).fit(train_features, train_targets)
        return self.model_.predict(target.T)
