"""Batched cross-validation engine.

The evaluation grid of Figure 5 is (machine splits x applications of
interest x methods).  Historically the pipeline walked that grid one cell at
a time, re-extracting sub-matrices and retraining from scratch per cell.
This module provides the split-level machinery that collapses the
application axis:

* :class:`SplitContext` — the per-split working set (predictive/target score
  blocks, benchmark row map), built once per split and cached, instead of
  once per cell;
* :class:`BatchedRankingMethod` — the protocol batch-capable methods
  implement on top of the per-cell :class:`~repro.core.pipeline.
  RankingMethod` protocol: one ``predict_all_applications`` call per split
  covers every leave-one-out application;
* :class:`BatchedLinearTransposition` (NNᵀ) — derives all leave-one-out fits
  from full-set sufficient statistics by rank-one downdating; and
* :class:`BatchedMLPTransposition` (MLPᵀ) — trains all leave-one-out
  networks of a split simultaneously with
  :class:`~repro.ml.batched_mlp.BatchedMLPRegressor`.

GA-kNN's batched entry point lives with its baseline
(:class:`repro.baselines.ga_knn.BatchedGAKNN`); methods without one keep
using the per-cell path, and the pipeline dispatches per method via
:func:`supports_batched_prediction`.  Method *construction* is the
registry's job (:mod:`repro.core.engine`) — this module only defines the
implementations and the batch protocol.

The module also provides the cache hooks the online prediction service
(:mod:`repro.service`) builds on: :func:`split_cache_key` derives a stable,
process-independent identity for a ``(dataset, split)`` pair from the
dataset's content fingerprint, and every :class:`SplitContext` carries the
digested form as :attr:`SplitContext.fingerprint`.
"""

from __future__ import annotations

import hashlib
import weakref
from functools import partial
from typing import Mapping, Protocol, Sequence

import numpy as np

from repro.core.linear_predictor import LinearTranspositionPredictor
from repro.core.mlp_predictor import MLPTranspositionPredictor
from repro.core.transposition import TranspositionPredictor
from repro.data.spec_dataset import SpecDataset
from repro.data.splits import MachineSplit
from repro.ml.batched_mlp import BatchedMLPRegressor
from repro.ml.mlp import MLPRegressor

__all__ = [
    "BatchedLinearTransposition",
    "BatchedMLPTransposition",
    "BatchedRankingMethod",
    "SplitContext",
    "TranspositionMethod",
    "split_cache_key",
    "split_fingerprint",
    "supports_batched_prediction",
]


def split_cache_key(
    dataset: SpecDataset, split: MachineSplit
) -> tuple[str, tuple[str, ...], tuple[str, ...]]:
    """Stable cache key identifying ``(dataset, split)`` by content.

    The key is ``(dataset fingerprint, predictive machine ids, target
    machine ids)`` — hashable, picklable and identical across processes, so
    it can address shared caches the way ``id()``-based keys (used by the
    in-process :meth:`SplitContext.for_split` fast path) cannot.  The
    prediction service keys its :class:`~repro.service.cache.
    SplitContextCache` with it: any client presenting the same machine sets
    against byte-identical scores hits the same trained state.

    Examples::

        >>> from repro.data import build_default_dataset, family_cross_validation_splits
        >>> dataset = build_default_dataset()
        >>> split = family_cross_validation_splits(dataset)[0]
        >>> key = split_cache_key(dataset, split)
        >>> key == (dataset.fingerprint, split.predictive_ids, split.target_ids)
        True
    """
    return (dataset.fingerprint, split.predictive_ids, split.target_ids)


def split_fingerprint(dataset: SpecDataset, split: MachineSplit) -> str:
    """Hex SHA-256 digest of :func:`split_cache_key` — a short content address.

    One digest definition shared by :attr:`SplitContext.fingerprint` and the
    service's reply ``split_fingerprint``, so traces from either side refer
    to the same identifier.

    Examples::

        >>> from repro.data import build_default_dataset, family_cross_validation_splits
        >>> dataset = build_default_dataset()
        >>> split = family_cross_validation_splits(dataset)[0]
        >>> split_fingerprint(dataset, split) == SplitContext.for_split(
        ...     dataset, split
        ... ).fingerprint
        True
    """
    return hashlib.sha256(repr(split_cache_key(dataset, split)).encode()).hexdigest()


class BatchedRankingMethod(Protocol):
    """A method that predicts every application of a split in one pass."""

    def predict_all_applications(
        self,
        dataset: SpecDataset,
        split: MachineSplit,
        applications: Sequence[str],
    ) -> Mapping[str, np.ndarray]:
        """Per-application predicted scores on ``split.target_ids``.

        Each application is trained leave-one-out: its training benchmarks
        are every dataset benchmark except itself, exactly as the per-cell
        pipeline loop would hand them over.
        """
        ...  # pragma: no cover - protocol definition


def supports_batched_prediction(method: object) -> bool:
    """True when *method* implements :class:`BatchedRankingMethod`.

    The pipeline and the prediction service use this predicate to dispatch
    between the one-pass-per-split path and the per-cell fallback.

    Examples::

        >>> from repro.core.linear_predictor import LinearTranspositionPredictor
        >>> supports_batched_prediction(BatchedLinearTransposition())
        True
        >>> supports_batched_prediction(
        ...     TranspositionMethod(LinearTranspositionPredictor, "NN^T")
        ... )
        False
    """
    return callable(getattr(method, "predict_all_applications", None))


class SplitContext:
    """Per-split working set shared by every cell of that split.

    Extracting the predictive/target score blocks involves machine-index
    lookups and column gathers that the per-cell path used to repeat for
    every application; building them once per split removes that overhead
    and gives the batched methods contiguous tensors to slice from.
    Contexts are cached per ``(dataset, split)`` via :meth:`for_split`.

    Attributes
    ----------
    split:
        The :class:`~repro.data.splits.MachineSplit` this context serves.
    fingerprint:
        Hex SHA-256 digest of :func:`split_cache_key`, i.e. a stable
        content address for this (dataset, split) pair.  The prediction
        service uses it to route entries to cache shards deterministically
        (``hash()`` would vary with ``PYTHONHASHSEED``).
    predictive_scores / target_scores:
        Contiguous ``(benchmarks x machines)`` score blocks for the
        predictive and target machine sets.

    Examples::

        >>> from repro.data import build_default_dataset, family_cross_validation_splits
        >>> dataset = build_default_dataset()
        >>> split = family_cross_validation_splits(dataset)[0]
        >>> context = SplitContext.for_split(dataset, split)
        >>> context.predictive_scores.shape == (29, split.n_predictive)
        True
        >>> len(context.fingerprint)
        64
    """

    _cache: dict[tuple[int, MachineSplit], tuple["weakref.ref[SpecDataset]", "SplitContext"]] = {}
    _CACHE_LIMIT = 64

    def __init__(self, dataset: SpecDataset, split: MachineSplit) -> None:
        matrix = dataset.matrix
        machine_index = matrix.machine_index_map
        # Deliberately no reference back to the dataset: the cache tracks
        # dataset lifetime with a weakref, which a strong reference here
        # would keep alive forever.
        self.split = split
        self.fingerprint = split_fingerprint(dataset, split)
        self.benchmark_row: Mapping[str, int] = matrix.benchmark_index_map
        predictive_cols = [machine_index[mid] for mid in split.predictive_ids]
        target_cols = [machine_index[mid] for mid in split.target_ids]
        #: (benchmarks x predictive machines) scores, all benchmark rows.
        self.predictive_scores = np.ascontiguousarray(matrix.scores[:, predictive_cols])
        #: (benchmarks x target machines) scores, all benchmark rows.
        self.target_scores = np.ascontiguousarray(matrix.scores[:, target_cols])

    @classmethod
    def for_split(cls, dataset: SpecDataset, split: MachineSplit) -> "SplitContext":
        """Cached context for ``(dataset, split)`` (built on first use).

        Entries are validated against a weak reference to the dataset, so a
        recycled ``id()`` can never serve another dataset's scores.  Every
        miss sweeps entries whose dataset has been garbage-collected (their
        score blocks would otherwise outlive it); if the cache is still full
        the oldest entries are evicted.
        """
        key = (id(dataset), split)
        entry = cls._cache.get(key)
        if entry is not None:
            dataset_ref, context = entry
            if dataset_ref() is dataset:
                return context
        context = cls(dataset, split)
        for stale in [k for k, (ref, _) in cls._cache.items() if ref() is None]:
            del cls._cache[stale]
        while len(cls._cache) >= cls._CACHE_LIMIT:
            cls._cache.pop(next(iter(cls._cache)))
        cls._cache[key] = (weakref.ref(dataset), context)
        return context

    # ------------------------------------------------------------- accessors
    def rows_for(self, benchmarks: Sequence[str]) -> np.ndarray:
        """Row indices of the given benchmarks, in the given order."""
        row = self.benchmark_row
        return np.array([row[name] for name in benchmarks], dtype=np.intp)

    def training_row_matrix(self, applications: Sequence[str]) -> np.ndarray:
        """(applications x benchmarks-1) leave-one-out training row indices."""
        n_benchmarks = len(self.benchmark_row)
        app_rows = self.rows_for(applications)
        all_rows = np.arange(n_benchmarks, dtype=np.intp)
        return np.stack([all_rows[all_rows != r] for r in app_rows])

    def app_predictive_scores(self, application: str) -> np.ndarray:
        """The application's measured scores on the predictive machines."""
        return self.predictive_scores[self.benchmark_row[application]]

    def actual_target_scores(self, application: str) -> np.ndarray:
        """The application's measured scores on the target machines."""
        return self.target_scores[self.benchmark_row[application]]


class TranspositionMethod:
    """Adapter exposing a transposition predictor through the pipeline protocol.

    A fresh predictor is constructed per cell via *predictor_factory* so no
    state leaks between applications of interest.  Sub-matrix extraction
    goes through the split-level :class:`SplitContext` cache rather than
    re-slicing the performance matrix per cell.

    This per-cell form is the fallback the engine keeps for methods without
    a batched entry point and the baseline the engine benches measure
    against; the batched subclasses below add the one-pass-per-split path.

    Examples::

        >>> from repro.core.linear_predictor import LinearTranspositionPredictor
        >>> from repro.data import build_default_dataset, family_cross_validation_splits
        >>> dataset = build_default_dataset()
        >>> split = family_cross_validation_splits(dataset)[0]
        >>> method = TranspositionMethod(LinearTranspositionPredictor, "NN^T")
        >>> training = [b for b in dataset.benchmark_names if b != "gcc"]
        >>> scores = method.predict_application_scores(dataset, split, "gcc", training)
        >>> scores.shape == (split.n_target,)
        True
    """

    def __init__(self, predictor_factory, name: str) -> None:
        self.predictor_factory = predictor_factory
        self.name = name

    def predict_application_scores(
        self,
        dataset: SpecDataset,
        split: MachineSplit,
        application: str,
        training_benchmarks: Sequence[str],
    ) -> np.ndarray:
        if application in training_benchmarks:
            raise ValueError(
                "the application of interest must not be part of the training benchmarks"
            )
        if not training_benchmarks:
            raise ValueError("at least one training benchmark is required")
        context = SplitContext.for_split(dataset, split)
        rows = context.rows_for(training_benchmarks)
        predictor: TranspositionPredictor = self.predictor_factory()
        predictions = predictor.predict(
            context.predictive_scores[rows],
            context.app_predictive_scores(application),
            context.target_scores[rows],
        )
        return np.asarray(predictions)


class BatchedLinearTransposition(TranspositionMethod):
    """NNᵀ with a split-level batched entry point.

    The per-cell path refits the (predictive x target) regression grid for
    every application; the batched path computes the sufficient statistics
    once on the full benchmark set and derives each application's
    leave-one-out fit by rank-one downdating
    (:meth:`~repro.core.linear_predictor.LinearTranspositionPredictor.
    predict_leave_one_out`).

    Examples::

        >>> from repro.data import build_default_dataset, family_cross_validation_splits
        >>> dataset = build_default_dataset()
        >>> split = family_cross_validation_splits(dataset)[0]
        >>> scores = BatchedLinearTransposition().predict_all_applications(
        ...     dataset, split, ["gcc", "mcf"]
        ... )
        >>> sorted(scores) == ["gcc", "mcf"]
        True
        >>> scores["gcc"].shape == (split.n_target,)
        True
    """

    def __init__(
        self,
        selection_criterion: str = "rss",
        top_k: int = 1,
        name: str = "NN^T",
        backend: "str | object | None" = None,
    ) -> None:
        super().__init__(
            partial(
                LinearTranspositionPredictor,
                selection_criterion=selection_criterion,
                top_k=top_k,
                backend=backend,
            ),
            name,
        )
        self.selection_criterion = selection_criterion
        self.top_k = int(top_k)
        self.backend = backend

    def predict_all_applications(
        self,
        dataset: SpecDataset,
        split: MachineSplit,
        applications: Sequence[str],
    ) -> dict[str, np.ndarray]:
        context = SplitContext.for_split(dataset, split)
        predictor: LinearTranspositionPredictor = self.predictor_factory()
        leave_one_out = predictor.predict_leave_one_out(
            context.predictive_scores,
            context.target_scores,
            rows=context.rows_for(applications),
        )
        return {app: leave_one_out[i] for i, app in enumerate(applications)}


class BatchedMLPTransposition(TranspositionMethod):
    """MLPᵀ with a split-level batched entry point.

    Every leave-one-out cell of a split trains a network of identical shape,
    hyper-parameters and seed, so all of them advance through SGD together
    as one stacked tensor pass (:class:`~repro.ml.batched_mlp.
    BatchedMLPRegressor`), matching the per-cell results to ~1e-10.

    Examples::

        >>> from repro.data import build_default_dataset, family_cross_validation_splits
        >>> dataset = build_default_dataset()
        >>> split = family_cross_validation_splits(dataset)[0]
        >>> method = BatchedMLPTransposition(epochs=5, seed=0)
        >>> scores = method.predict_all_applications(dataset, split, ["gcc"])
        >>> scores["gcc"].shape == (split.n_target,)
        True
    """

    def __init__(
        self,
        hidden_units: int | None = None,
        epochs: int = 500,
        learning_rate: float = 0.05,
        momentum: float = 0.2,
        seed: int = 0,
        gradient_clip: float = MLPRegressor.GRADIENT_CLIP,
        name: str = "MLP^T",
        backend: "str | object | None" = None,
    ) -> None:
        super().__init__(
            partial(
                MLPTranspositionPredictor,
                hidden_units=hidden_units,
                epochs=epochs,
                learning_rate=learning_rate,
                momentum=momentum,
                seed=seed,
                gradient_clip=gradient_clip,
            ),
            name,
        )
        self.hidden_units = hidden_units
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self.seed = int(seed)
        self.gradient_clip = float(gradient_clip)
        self.backend = backend

    def predict_all_applications(
        self,
        dataset: SpecDataset,
        split: MachineSplit,
        applications: Sequence[str],
    ) -> dict[str, np.ndarray]:
        if split.n_predictive < 2:
            raise ValueError("MLPᵀ needs at least two predictive machines to train on")
        context = SplitContext.for_split(dataset, split)
        training_rows = context.training_row_matrix(applications)      # (N, B-1)
        app_rows = context.rows_for(applications)
        # Machines are samples, training benchmarks are features.
        features = context.predictive_scores[training_rows].transpose(0, 2, 1)
        targets = context.predictive_scores[app_rows]                  # (N, P)
        queries = context.target_scores[training_rows].transpose(0, 2, 1)
        model = BatchedMLPRegressor(
            hidden_units=self.hidden_units,
            learning_rate=self.learning_rate,
            momentum=self.momentum,
            epochs=self.epochs,
            seed=self.seed,
            gradient_clip=self.gradient_clip,
            backend=self.backend,
        )
        predictions = model.fit(features, targets).predict(queries)    # (N, T)
        return {app: predictions[i] for i, app in enumerate(applications)}
