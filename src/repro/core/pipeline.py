"""Cross-validation experiment pipeline.

Runs one or more ranking methods over a set of machine splits with the
benchmark-level leave-one-out loop of Figure 5, collecting the three paper
metrics per cell.  Both data-transposition flavours and the GA-kNN baseline
are driven through the same :class:`RankingMethod` protocol so every table
and figure of the evaluation is produced by this single driver.
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence

import numpy as np

from repro.core.ranking import MachineRanking, compare_rankings
from repro.core.results import CellResult, MethodResults
from repro.core.transposition import DataTransposition, TranspositionPredictor
from repro.data.spec_dataset import SpecDataset
from repro.data.splits import MachineSplit

__all__ = ["RankingMethod", "TranspositionMethod", "run_cross_validation", "actual_ranking"]


class RankingMethod(Protocol):
    """A method that predicts application scores on the target machines."""

    def predict_application_scores(
        self,
        dataset: SpecDataset,
        split: MachineSplit,
        application: str,
        training_benchmarks: Sequence[str],
    ) -> np.ndarray:
        """Return one predicted score per machine in ``split.target_ids``."""
        ...  # pragma: no cover - protocol definition


class TranspositionMethod:
    """Adapter exposing :class:`DataTransposition` through the pipeline protocol.

    A fresh predictor is constructed per cell via *predictor_factory* so no
    state leaks between applications of interest.
    """

    def __init__(self, predictor_factory, name: str) -> None:
        self.predictor_factory = predictor_factory
        self.name = name

    def predict_application_scores(
        self,
        dataset: SpecDataset,
        split: MachineSplit,
        application: str,
        training_benchmarks: Sequence[str],
    ) -> np.ndarray:
        predictor: TranspositionPredictor = self.predictor_factory()
        method = DataTransposition(predictor)
        result = method.predict_scores(
            dataset, split, application, training_benchmarks=training_benchmarks
        )
        return np.asarray(result.predicted_scores)


def actual_ranking(dataset: SpecDataset, split: MachineSplit, application: str) -> MachineRanking:
    """Ranking of the target machines by the application's measured scores."""
    row = dataset.matrix.benchmark_scores(application)
    index = {mid: i for i, mid in enumerate(dataset.matrix.machines)}
    actual_scores = [row[index[mid]] for mid in split.target_ids]
    return MachineRanking.from_scores(split.target_ids, actual_scores)


def run_cross_validation(
    dataset: SpecDataset,
    splits: Sequence[MachineSplit],
    methods: Mapping[str, RankingMethod],
    applications: Sequence[str] | None = None,
) -> dict[str, MethodResults]:
    """Run every method over every (split, application) cell.

    Parameters
    ----------
    dataset:
        The study dataset.
    splits:
        Machine splits to evaluate (e.g. the 17 family splits for Table 2,
        or a single temporal split for Table 3).
    methods:
        Mapping from method name to a :class:`RankingMethod`.
    applications:
        Applications of interest; defaults to all benchmarks (the full
        leave-one-out loop).  Restricting this list is how tests and quick
        benches bound runtime.

    Returns
    -------
    Mapping from method name to its collected :class:`MethodResults`.
    """
    if not splits:
        raise ValueError("at least one machine split is required")
    if not methods:
        raise ValueError("at least one method is required")
    app_names = list(applications) if applications is not None else dataset.benchmark_names
    unknown = set(app_names) - set(dataset.benchmark_names)
    if unknown:
        raise ValueError(f"unknown applications of interest: {sorted(unknown)}")

    results = {name: MethodResults(method=name) for name in methods}
    for split in splits:
        for application in app_names:
            training = [name for name in dataset.benchmark_names if name != application]
            reference = actual_ranking(dataset, split, application)
            for name, method in methods.items():
                predicted_scores = method.predict_application_scores(
                    dataset, split, application, training
                )
                predicted = MachineRanking.from_scores(split.target_ids, predicted_scores)
                comparison = compare_rankings(predicted, reference)
                results[name].add(
                    CellResult(
                        method=name,
                        split_name=split.name,
                        application=application,
                        rank_correlation=comparison.rank_correlation,
                        top1_error_percent=comparison.top1_error_percent,
                        mean_error_percent=comparison.mean_error_percent,
                    )
                )
    return results
