"""Cross-validation experiment pipeline.

Runs one or more ranking methods over a set of machine splits with the
benchmark-level leave-one-out loop of Figure 5, collecting the three paper
metrics per cell.  Both data-transposition flavours and the GA-kNN baseline
are driven through the same :class:`RankingMethod` protocol so every table
and figure of the evaluation is produced by this single driver.

The driver is a *batched* engine: per split it builds the shared working
set once (:class:`~repro.core.batch.SplitContext`) and, for methods that
implement :class:`~repro.core.batch.BatchedRankingMethod` (the standard
NNᵀ/MLPᵀ/GA-kNN line-up all does), evaluates all leave-one-out
applications in a single vectorised pass.  Methods without a batched entry
point fall back to the historical per-cell loop, and an opt-in ``n_jobs``
process pool fans the splits out across cores for them.

Method resolution goes through the registry (:mod:`repro.core.engine`):
callers may pass registered method *names* instead of instances, and this
module never branches on a method name itself — capability dispatch
(:func:`~repro.core.batch.supports_batched_prediction`) is the only
per-method decision it makes.

:func:`predict_split_scores` is the shared fit/predict entry point beneath
both consumers of the engine: this offline cross-validation driver and the
online prediction service (:mod:`repro.service`).  Both hand it the same
(dataset, split, methods, applications) and get the same score tensors
back, which is what makes service answers bit-identical to the offline
tables.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Mapping, Protocol, Sequence

import numpy as np

from repro.core.batch import TranspositionMethod, supports_batched_prediction
from repro.core.engine import resolve_methods
from repro.core.ranking import MachineRanking, compare_rankings
from repro.core.results import CellResult, MethodResults
from repro.data.spec_dataset import SpecDataset
from repro.data.splits import MachineSplit

__all__ = [
    "RankingMethod",
    "TranspositionMethod",
    "actual_ranking",
    "predict_split_scores",
    "run_cross_validation",
]


class RankingMethod(Protocol):
    """A method that predicts application scores on the target machines."""

    def predict_application_scores(
        self,
        dataset: SpecDataset,
        split: MachineSplit,
        application: str,
        training_benchmarks: Sequence[str],
    ) -> np.ndarray:
        """Return one predicted score per machine in ``split.target_ids``."""
        ...  # pragma: no cover - protocol definition


def actual_ranking(dataset: SpecDataset, split: MachineSplit, application: str) -> MachineRanking:
    """Ranking of the target machines by the application's measured scores.

    Examples::

        >>> from repro.data import build_default_dataset, family_cross_validation_splits
        >>> dataset = build_default_dataset()
        >>> split = family_cross_validation_splits(dataset)[0]
        >>> reference = actual_ranking(dataset, split, "gcc")
        >>> set(reference.machine_ids) == set(split.target_ids)
        True
    """
    row = dataset.matrix.benchmark_scores(application)
    index = dataset.matrix.machine_index_map
    actual_scores = [row[index[mid]] for mid in split.target_ids]
    return MachineRanking.from_scores(split.target_ids, actual_scores)


def predict_split_scores(
    dataset: SpecDataset,
    split: MachineSplit,
    methods: "Mapping[str, RankingMethod] | Sequence[str] | str",
    applications: Sequence[str],
) -> dict[str, dict[str, np.ndarray]]:
    """Predicted target-machine scores for every (method, application) of one split.

    This is the shared fit/predict entry point of the engine: the offline
    :func:`run_cross_validation` driver and the online
    :class:`~repro.service.PredictionService` both obtain their predictions
    here, so the two surfaces are bit-identical by construction.  Each
    application is trained leave-one-out against every other dataset
    benchmark; batch-capable methods cover all applications in one
    vectorised pass per split, the rest run the per-cell loop.

    Parameters
    ----------
    dataset:
        The study dataset.
    split:
        The predictive/target machine division to predict for.
    methods:
        Mapping from method name to :class:`RankingMethod`, or registered
        method name(s) resolved through :func:`repro.core.engine.
        resolve_methods` (batch-capable methods are detected via
        :func:`~repro.core.batch.supports_batched_prediction`).
    applications:
        Applications of interest (dataset benchmark names).

    Returns
    -------
    ``{method name: {application: scores}}`` where ``scores`` is one
    predicted value per machine in ``split.target_ids``.

    Examples::

        >>> from repro.core import BatchedLinearTransposition, predict_split_scores
        >>> from repro.data import build_default_dataset, family_cross_validation_splits
        >>> dataset = build_default_dataset()
        >>> split = family_cross_validation_splits(dataset)[0]
        >>> scores = predict_split_scores(
        ...     dataset, split, {"NN^T": BatchedLinearTransposition()}, ["gcc"]
        ... )
        >>> scores["NN^T"]["gcc"].shape == (split.n_target,)
        True
        >>> by_name = predict_split_scores(dataset, split, "NN^T", ["gcc"])
        >>> bool(np.array_equal(by_name["NN^T"]["gcc"], scores["NN^T"]["gcc"]))
        True
    """
    scores: dict[str, dict[str, np.ndarray]] = {}
    for name, method in resolve_methods(methods).items():
        if supports_batched_prediction(method):
            batched = method.predict_all_applications(dataset, split, applications)
            scores[name] = {app: np.asarray(batched[app]) for app in applications}
        else:
            per_cell: dict[str, np.ndarray] = {}
            for application in applications:
                training = [b for b in dataset.benchmark_names if b != application]
                per_cell[application] = np.asarray(
                    method.predict_application_scores(dataset, split, application, training)
                )
            scores[name] = per_cell
    return scores


def _run_single_split(
    dataset: SpecDataset,
    split: MachineSplit,
    methods: Mapping[str, "RankingMethod"],
    app_names: Sequence[str],
) -> dict[str, list[CellResult]]:
    """All cells of one split, with batch-capable methods run in one pass."""
    predicted_by_method = predict_split_scores(dataset, split, methods, app_names)
    cells: dict[str, list[CellResult]] = {name: [] for name in methods}
    for application in app_names:
        reference = actual_ranking(dataset, split, application)
        for name in methods:
            predicted_scores = predicted_by_method[name][application]
            predicted = MachineRanking.from_scores(split.target_ids, predicted_scores)
            comparison = compare_rankings(predicted, reference)
            cells[name].append(
                CellResult(
                    method=name,
                    split_name=split.name,
                    application=application,
                    rank_correlation=comparison.rank_correlation,
                    top1_error_percent=comparison.top1_error_percent,
                    mean_error_percent=comparison.mean_error_percent,
                )
            )
    return cells


def run_cross_validation(
    dataset: SpecDataset,
    splits: Sequence[MachineSplit],
    methods: "Mapping[str, RankingMethod] | Sequence[str] | str",
    applications: Sequence[str] | None = None,
    n_jobs: int = 1,
) -> dict[str, MethodResults]:
    """Run every method over every (split, application) cell.

    Parameters
    ----------
    dataset:
        The study dataset.
    splits:
        Machine splits to evaluate (e.g. the 17 family splits for Table 2,
        or a single temporal split for Table 3).
    methods:
        Mapping from method name to a :class:`RankingMethod`, or registered
        method name(s) (``["NN^T", "GA-kNN"]``, or a single name) resolved
        through :func:`repro.core.engine.resolve_methods` with default
        hyper-parameters.  Methods that additionally implement
        :class:`~repro.core.batch.BatchedRankingMethod` are evaluated with
        one batched pass per split instead of one call per cell.
    applications:
        Applications of interest; defaults to all benchmarks (the full
        leave-one-out loop).  Restricting this list is how tests and quick
        benches bound runtime.
    n_jobs:
        Number of worker processes to fan the splits out over (default 1 =
        in-process).  Useful for methods that stay sequential per cell
        (GA-kNN); requires picklable dataset/method objects, and method
        instance state mutated while predicting (e.g. learned weights) is
        not propagated back from the workers.  Results are identical to the
        in-process path regardless of worker count.

    Returns
    -------
    Mapping from method name to its collected :class:`MethodResults`.

    Examples::

        >>> from repro.core import BatchedLinearTransposition
        >>> from repro.data import build_default_dataset, family_cross_validation_splits
        >>> dataset = build_default_dataset()
        >>> splits = family_cross_validation_splits(dataset)[:2]
        >>> results = run_cross_validation(
        ...     dataset, splits, {"NN^T": BatchedLinearTransposition()}, ["gcc", "mcf"]
        ... )
        >>> len(results["NN^T"].cells)   # 2 splits x 2 applications
        4
    """
    if not splits:
        raise ValueError("at least one machine split is required")
    if not methods:
        raise ValueError("at least one method is required")
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    # Resolve once, up front: worker processes receive built instances, and
    # every split sees the same objects (split-level state reuse).
    methods = resolve_methods(methods)
    app_names = list(applications) if applications is not None else dataset.benchmark_names
    unknown = set(app_names) - set(dataset.benchmark_names)
    if unknown:
        raise ValueError(f"unknown applications of interest: {sorted(unknown)}")

    n_workers = min(n_jobs, len(splits))
    if n_workers > 1:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = [
                pool.submit(_run_single_split, dataset, split, methods, app_names)
                for split in splits
            ]
            split_cells = [future.result() for future in futures]
    else:
        split_cells = [
            _run_single_split(dataset, split, methods, app_names) for split in splits
        ]

    results = {name: MethodResults(method=name) for name in methods}
    for cells in split_cells:
        for name, method_cells in cells.items():
            results[name].extend(method_cells)
    return results
