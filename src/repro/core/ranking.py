"""Machine rankings.

Turning predicted scores into a machine ranking — and measuring how well
that ranking matches the one induced by measured scores — is the end goal of
the whole methodology (Section 6.1).  :class:`MachineRanking` is a small
value object pairing machine identifiers with scores; the module-level
helpers compute the Spearman agreement and purchasing-loss metrics between a
predicted and an actual ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stats.correlation import spearman_correlation
from repro.stats.metrics import mean_absolute_percentage_error, top_n_deficiency
from repro.stats.ranking import top_n_indices

__all__ = ["MachineRanking", "compare_rankings", "RankingComparison"]


@dataclass(frozen=True)
class MachineRanking:
    """Machines ordered by a performance score for one application.

    Examples::

        >>> ranking = MachineRanking.from_scores(["m1", "m2", "m3"], [1.0, 3.0, 2.0])
        >>> ranking.ordered_ids()
        ['m2', 'm3', 'm1']
        >>> ranking.top(1)
        ['m2']
        >>> ranking.score_of("m3")
        2.0
    """

    machine_ids: tuple[str, ...]
    scores: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.machine_ids) != len(self.scores):
            raise ValueError("machine_ids and scores must have the same length")
        if len(self.machine_ids) == 0:
            raise ValueError("a ranking needs at least one machine")
        if len(set(self.machine_ids)) != len(self.machine_ids):
            raise ValueError("machine identifiers must be unique")

    @classmethod
    def from_scores(cls, machine_ids: Sequence[str], scores: Sequence[float]) -> "MachineRanking":
        """Build a ranking from parallel id/score sequences (any order)."""
        return cls(machine_ids=tuple(machine_ids), scores=tuple(float(s) for s in scores))

    def ordered_ids(self) -> list[str]:
        """Machine identifiers from best (highest score) to worst."""
        order = np.argsort(-np.asarray(self.scores), kind="mergesort")
        return [self.machine_ids[i] for i in order]

    def top(self, n: int = 1) -> list[str]:
        """The predicted top-*n* machines, best first."""
        indices = top_n_indices(self.scores, n)
        return [self.machine_ids[i] for i in indices]

    def score_of(self, machine_id: str) -> float:
        """Score of one machine; raises KeyError for unknown identifiers."""
        try:
            index = self.machine_ids.index(machine_id)
        except ValueError:
            raise KeyError(f"unknown machine {machine_id!r}") from None
        return self.scores[index]


@dataclass(frozen=True)
class RankingComparison:
    """Agreement metrics between a predicted and an actual ranking."""

    rank_correlation: float
    top1_error_percent: float
    mean_error_percent: float
    predicted_top1: str
    actual_top1: str

    @property
    def predicted_best_is_actual_best(self) -> bool:
        """Whether the purchase recommendation is exactly right."""
        return self.predicted_top1 == self.actual_top1


def compare_rankings(predicted: MachineRanking, actual: MachineRanking) -> RankingComparison:
    """Compute the paper's three metrics between two rankings of the same machines.

    Examples::

        >>> predicted = MachineRanking.from_scores(["m1", "m2"], [10.0, 20.0])
        >>> actual = MachineRanking.from_scores(["m1", "m2"], [11.0, 19.0])
        >>> comparison = compare_rankings(predicted, actual)
        >>> comparison.rank_correlation
        1.0
        >>> comparison.predicted_best_is_actual_best
        True
    """
    if set(predicted.machine_ids) != set(actual.machine_ids):
        raise ValueError("rankings must cover the same set of machines")
    # Align the actual scores to the predicted ranking's machine order.
    aligned_actual = np.array([actual.score_of(mid) for mid in predicted.machine_ids])
    predicted_scores = np.asarray(predicted.scores)
    return RankingComparison(
        rank_correlation=spearman_correlation(predicted_scores, aligned_actual),
        top1_error_percent=top_n_deficiency(predicted_scores, aligned_actual, n=1),
        mean_error_percent=mean_absolute_percentage_error(predicted_scores, aligned_actual),
        predicted_top1=predicted.top(1)[0],
        actual_top1=actual.top(1)[0],
    )
