"""Core: the data-transposition method and its evaluation pipeline."""

from repro.core.backends import ArrayBackend, available_backends, resolve_backend
from repro.core.batch import (
    BatchedLinearTransposition,
    BatchedMLPTransposition,
    BatchedRankingMethod,
    SplitContext,
    split_cache_key,
    supports_batched_prediction,
)
from repro.core.engine import (
    DEFAULT_METHOD,
    CapabilityMismatchError,
    DuplicateMethodError,
    MethodParams,
    MethodRegistryError,
    MethodSpec,
    UnknownMethodError,
    create_method,
    create_methods,
    method_spec,
    register_method,
    registered_methods,
    resolve_methods,
    unregister_method,
)
from repro.core.linear_predictor import LinearFitDetail, LinearTranspositionPredictor
from repro.core.mlp_predictor import MLPTranspositionPredictor
from repro.core.ranking import MachineRanking, RankingComparison, compare_rankings
from repro.core.results import CellResult, MethodResults, MethodSummary
from repro.core.selection import (
    machine_feature_matrix,
    select_farthest_point,
    select_k_medoids,
    select_random,
)
from repro.core.transposition import (
    DataTransposition,
    TranspositionPredictor,
    TranspositionResult,
)
from repro.core.pipeline import (
    RankingMethod,
    TranspositionMethod,
    actual_ranking,
    predict_split_scores,
    run_cross_validation,
)

__all__ = [
    "ArrayBackend",
    "BatchedLinearTransposition",
    "BatchedMLPTransposition",
    "BatchedRankingMethod",
    "CapabilityMismatchError",
    "CellResult",
    "DEFAULT_METHOD",
    "DataTransposition",
    "DuplicateMethodError",
    "LinearFitDetail",
    "LinearTranspositionPredictor",
    "MLPTranspositionPredictor",
    "MachineRanking",
    "MethodParams",
    "MethodRegistryError",
    "MethodResults",
    "MethodSpec",
    "MethodSummary",
    "RankingComparison",
    "RankingMethod",
    "SplitContext",
    "TranspositionMethod",
    "TranspositionPredictor",
    "TranspositionResult",
    "UnknownMethodError",
    "actual_ranking",
    "available_backends",
    "compare_rankings",
    "create_method",
    "create_methods",
    "machine_feature_matrix",
    "method_spec",
    "predict_split_scores",
    "register_method",
    "registered_methods",
    "resolve_backend",
    "resolve_methods",
    "run_cross_validation",
    "split_cache_key",
    "supports_batched_prediction",
    "select_farthest_point",
    "select_k_medoids",
    "select_random",
    "unregister_method",
]
