"""Core: the data-transposition method and its evaluation pipeline."""

from repro.core.batch import (
    BatchedLinearTransposition,
    BatchedMLPTransposition,
    BatchedRankingMethod,
    SplitContext,
    split_cache_key,
    supports_batched_prediction,
)
from repro.core.linear_predictor import LinearFitDetail, LinearTranspositionPredictor
from repro.core.mlp_predictor import MLPTranspositionPredictor
from repro.core.ranking import MachineRanking, RankingComparison, compare_rankings
from repro.core.results import CellResult, MethodResults, MethodSummary
from repro.core.selection import (
    machine_feature_matrix,
    select_farthest_point,
    select_k_medoids,
    select_random,
)
from repro.core.transposition import (
    DataTransposition,
    TranspositionPredictor,
    TranspositionResult,
)
from repro.core.pipeline import (
    RankingMethod,
    TranspositionMethod,
    actual_ranking,
    predict_split_scores,
    run_cross_validation,
)

__all__ = [
    "BatchedLinearTransposition",
    "BatchedMLPTransposition",
    "BatchedRankingMethod",
    "CellResult",
    "DataTransposition",
    "LinearFitDetail",
    "LinearTranspositionPredictor",
    "MLPTranspositionPredictor",
    "MachineRanking",
    "MethodResults",
    "MethodSummary",
    "RankingComparison",
    "RankingMethod",
    "SplitContext",
    "TranspositionMethod",
    "TranspositionPredictor",
    "TranspositionResult",
    "actual_ranking",
    "compare_rankings",
    "machine_feature_matrix",
    "predict_split_scores",
    "run_cross_validation",
    "split_cache_key",
    "supports_batched_prediction",
    "select_farthest_point",
    "select_k_medoids",
    "select_random",
]
