"""Result containers and aggregation.

The evaluation produces one result *cell* per (machine split, application of
interest, method): the three paper metrics for that combination.  The
containers here collect the cells, aggregate them into the
``average (worst case)`` presentation the paper's tables use, and render the
per-benchmark breakdowns that back Figures 6 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.stats.metrics import MetricSummary, summarize

__all__ = ["CellResult", "MethodResults", "MethodSummary"]


@dataclass(frozen=True)
class CellResult:
    """Metrics of one method on one (split, application) experiment cell."""

    method: str
    split_name: str
    application: str
    rank_correlation: float
    top1_error_percent: float
    mean_error_percent: float


@dataclass(frozen=True)
class MethodSummary:
    """Aggregated metrics of one method, in the paper's table format."""

    method: str
    rank_correlation: MetricSummary
    top1_error: MetricSummary
    mean_error: MetricSummary
    cells: int

    def as_table_row(self) -> dict[str, str]:
        """Row of "mean (worst)" strings keyed by metric name."""
        return {
            "method": self.method,
            "rank_correlation": self.rank_correlation.as_paper_cell(),
            "top1_error": self.top1_error.as_paper_cell(),
            "mean_error": self.mean_error.as_paper_cell(),
        }


@dataclass
class MethodResults:
    """All experiment cells produced by one method.

    Examples::

        >>> results = MethodResults(method="NN^T")
        >>> results.add(CellResult(
        ...     method="NN^T", split_name="family:a", application="gcc",
        ...     rank_correlation=0.9, top1_error_percent=1.0, mean_error_percent=2.0,
        ... ))
        >>> summary = results.summary()
        >>> (summary.cells, summary.rank_correlation.mean)
        (1, 0.9)
    """

    method: str
    cells: list[CellResult] = field(default_factory=list)

    def add(self, cell: CellResult) -> None:
        """Append one experiment cell (must belong to this method)."""
        if cell.method != self.method:
            raise ValueError(f"cell belongs to {cell.method!r}, not {self.method!r}")
        self.cells.append(cell)

    def extend(self, cells: Iterable[CellResult]) -> None:
        """Append several experiment cells."""
        for cell in cells:
            self.add(cell)

    def summary(self) -> MethodSummary:
        """Aggregate all cells into mean / worst-case metrics."""
        if not self.cells:
            raise ValueError(f"no results recorded for method {self.method!r}")
        return MethodSummary(
            method=self.method,
            rank_correlation=summarize(
                [cell.rank_correlation for cell in self.cells], higher_is_better=True
            ),
            top1_error=summarize(
                [cell.top1_error_percent for cell in self.cells], higher_is_better=False
            ),
            mean_error=summarize(
                [cell.mean_error_percent for cell in self.cells], higher_is_better=False
            ),
            cells=len(self.cells),
        )

    def per_application(self) -> dict[str, dict[str, float]]:
        """Per-benchmark averages across splits (the Figure 6/7 series)."""
        if not self.cells:
            raise ValueError(f"no results recorded for method {self.method!r}")
        grouped: dict[str, list[CellResult]] = {}
        for cell in self.cells:
            grouped.setdefault(cell.application, []).append(cell)
        breakdown: dict[str, dict[str, float]] = {}
        for application, cells in grouped.items():
            breakdown[application] = {
                "rank_correlation": float(np.mean([c.rank_correlation for c in cells])),
                "top1_error_percent": float(np.mean([c.top1_error_percent for c in cells])),
                "mean_error_percent": float(np.mean([c.mean_error_percent for c in cells])),
            }
        return breakdown

    def worst_application(self, metric: str = "rank_correlation") -> str:
        """Name of the benchmark with the worst average value of *metric*.

        For rank correlation "worst" means lowest; for the error metrics it
        means highest.  Used to check that the outlier benchmarks the paper
        calls out (leslie3d, cactusADM, libquantum) are indeed the hard ones.
        """
        breakdown = self.per_application()
        if metric == "rank_correlation":
            return min(breakdown, key=lambda name: breakdown[name][metric])
        if metric in {"top1_error_percent", "mean_error_percent"}:
            return max(breakdown, key=lambda name: breakdown[name][metric])
        raise ValueError(f"unknown metric {metric!r}")
