"""Pluggable array backends for the engine's dense kernels.

The hottest loops of the engine — the stacked-network SGD inside
:class:`~repro.ml.batched_mlp.BatchedMLPRegressor` and the rank-one
leave-one-out downdating inside :class:`~repro.core.linear_predictor.
LinearTranspositionPredictor` — are expressed here as *backend kernels*:
coarse-grained operations an :class:`ArrayBackend` implements end to end.
Kernel granularity (rather than op-by-op indirection) keeps the NumPy
reference path free of per-call dispatch overhead and gives alternative
array libraries enough work per call to amortise their own.

Two backends ship:

* :class:`NumpyBackend` — the reference implementation, always available.
  Its kernels are the historical inner loops moved verbatim, so results
  are bit-identical to the pre-backend code (the equivalence suite pins
  this).
* :class:`TorchBackend` — an optional PyTorch port (float64, same
  operation order).  It is opt-in via configuration or the
  ``REPRO_BACKEND`` environment variable and degrades cleanly: when torch
  is not importable, :func:`resolve_backend` warns once and falls back to
  the NumPy backend, so a ``REPRO_BACKEND=torch`` run never fails on a
  box without the dependency.

Selection order for every kernel consumer: an explicit ``backend=``
argument (name or instance) wins, otherwise ``REPRO_BACKEND``, otherwise
NumPy.

Examples::

    >>> resolve_backend().name
    'numpy'
    >>> resolve_backend("numpy") is resolve_backend("numpy")   # cached singleton
    True
    >>> sorted(BACKENDS)
    ['numpy', 'torch']
"""

from __future__ import annotations

import importlib.util
import os
import warnings
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = [
    "ArrayBackend",
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "NumpyBackend",
    "TorchBackend",
    "available_backends",
    "resolve_backend",
]

#: Environment variable consulted when no backend is named explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"


@runtime_checkable
class ArrayBackend(Protocol):
    """The kernel surface an array backend must provide.

    A backend owns two dense kernels.  Inputs and outputs are NumPy
    arrays regardless of the backend's internal representation, so the
    callers (``repro.ml`` / ``repro.core``) never see backend-native
    tensors.
    """

    name: str

    def mlp_sgd(
        self,
        x_samples: np.ndarray,
        y_samples: np.ndarray,
        w_hidden: np.ndarray,
        b_hidden: np.ndarray,
        w_output: np.ndarray,
        b_output: np.ndarray,
        shuffle_orders: np.ndarray,
        learning_rate: float,
        momentum: float,
        gradient_clip: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Run the stacked-network SGD loop; return the trained weights.

        ``x_samples`` is ``(samples, networks, features)`` sample-major
        training data, ``y_samples`` is ``(samples, networks)``;
        ``shuffle_orders`` is ``(epochs, samples)`` — one precomputed
        visiting order per epoch (the RNG draws stay in the caller so the
        stream is backend-independent).  The initial weight tensors are
        consumed and must not be relied on afterwards.
        """
        ...  # pragma: no cover - protocol definition

    def nnt_downdated_statistics(
        self,
        pred: np.ndarray,
        target: np.ndarray,
        rows: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Leave-one-out sufficient statistics for every requested row.

        Given ``(benchmarks x predictive)`` / ``(benchmarks x target)``
        score matrices and the row indices to leave out, return the
        stacked downdated statistics ``(sxx, syy, sxy, mean_x, mean_y)``
        with shapes ``(rows, P)``, ``(rows, T)``, ``(rows, P, T)``,
        ``(rows, P)`` and ``(rows, T)``.
        """
        ...  # pragma: no cover - protocol definition


class NumpyBackend:
    """Reference backend: the historical inner loops, moved verbatim.

    Every kernel preserves the exact operation order of the code it was
    extracted from, so results are bit-identical to the pre-backend
    implementation (and therefore to the sequential per-cell paths the
    batched engine is benchmarked against).
    """

    name = "numpy"

    @staticmethod
    def is_available() -> bool:
        """NumPy is a hard dependency, so the reference backend always is."""
        return True

    def mlp_sgd(
        self,
        x_samples: np.ndarray,
        y_samples: np.ndarray,
        w_hidden: np.ndarray,
        b_hidden: np.ndarray,
        w_output: np.ndarray,
        b_output: np.ndarray,
        shuffle_orders: np.ndarray,
        learning_rate: float,
        momentum: float,
        gradient_clip: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        n_networks, n_features, n_hidden = w_hidden.shape

        vel_w_hidden = np.zeros_like(w_hidden)
        vel_b_hidden = np.zeros_like(b_hidden)
        vel_w_output = np.zeros_like(w_output)
        vel_b_output = np.zeros(n_networks)

        lr = learning_rate
        clip = gradient_clip

        # Scratch buffers reused across the whole SGD loop; every update
        # below preserves the sequential implementation's operation order,
        # so each stacked network follows bit-for-bit the same trajectory
        # an individually trained MLPRegressor would.
        hidden_pre = np.empty((n_networks, 1, n_hidden))
        hidden_act = np.empty((n_networks, n_hidden))
        one_minus_act = np.empty_like(hidden_act)
        output = np.empty((n_networks, 1, 1))
        error = np.empty(n_networks)
        grad_w_output = np.empty_like(w_output)
        delta_hidden = np.empty_like(b_hidden)
        grad_w_hidden = np.empty_like(w_hidden)

        for indices in shuffle_orders:
            for idx in indices:
                xi = x_samples[idx]                                 # (N, F)
                np.matmul(xi[:, None, :], w_hidden, out=hidden_pre)
                np.add(hidden_pre[:, 0, :], b_hidden, out=hidden_act)
                np.clip(hidden_act, -60.0, 60.0, out=hidden_act)
                np.negative(hidden_act, out=hidden_act)
                np.exp(hidden_act, out=hidden_act)
                hidden_act += 1.0
                np.reciprocal(hidden_act, out=hidden_act)

                np.matmul(hidden_act[:, None, :], w_output[:, :, None], out=output)
                np.add(output[:, 0, 0], b_output, out=error)
                error -= y_samples[idx]
                np.clip(error, -clip, clip, out=error)

                np.multiply(error[:, None], hidden_act, out=grad_w_output)
                np.multiply(error[:, None], w_output, out=delta_hidden)
                delta_hidden *= hidden_act
                np.subtract(1.0, hidden_act, out=one_minus_act)
                delta_hidden *= one_minus_act
                np.multiply(xi[:, :, None], delta_hidden[:, None, :], out=grad_w_hidden)

                vel_w_output *= momentum
                grad_w_output *= lr
                vel_w_output -= grad_w_output
                vel_b_output *= momentum
                error *= lr
                vel_b_output -= error
                vel_w_hidden *= momentum
                grad_w_hidden *= lr
                vel_w_hidden -= grad_w_hidden
                vel_b_hidden *= momentum
                delta_hidden *= lr
                vel_b_hidden -= delta_hidden

                w_output += vel_w_output
                b_output += vel_b_output
                w_hidden += vel_w_hidden
                b_hidden += vel_b_hidden

        return w_hidden, b_hidden, w_output, b_output

    def nnt_downdated_statistics(
        self,
        pred: np.ndarray,
        target: np.ndarray,
        rows: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        n_benchmarks = pred.shape[0]
        factor = n_benchmarks / (n_benchmarks - 1.0)

        # Full-set sufficient statistics, computed once.
        mean_x = pred.mean(axis=0)                                # (P,)
        mean_y = target.mean(axis=0)                              # (T,)
        dx = pred - mean_x[None, :]                               # (B, P)
        dy = target - mean_y[None, :]                             # (B, T)
        sxx_full = (dx**2).sum(axis=0)                            # (P,)
        syy_full = (dy**2).sum(axis=0)                            # (T,)
        sxy_full = dx.T @ dy                                      # (P, T)

        # Stacked rank-one downdates for all requested rows at once; each
        # arithmetic step is elementwise, so row i matches the historical
        # one-row-at-a-time downdate bit for bit.
        dxr = dx[rows]                                            # (R, P)
        dyr = dy[rows]                                            # (R, T)
        sxx = np.clip(sxx_full[None, :] - factor * dxr**2, 0.0, None)
        syy = np.clip(syy_full[None, :] - factor * dyr**2, 0.0, None)
        outer = dxr[:, :, None] * dyr[:, None, :]                 # (R, P, T)
        sxy = sxy_full[None, :, :] - factor * outer
        loo_mean_x = (n_benchmarks * mean_x[None, :] - pred[rows]) / (n_benchmarks - 1)
        loo_mean_y = (n_benchmarks * mean_y[None, :] - target[rows]) / (n_benchmarks - 1)
        return sxx, syy, sxy, loo_mean_x, loo_mean_y


class TorchBackend:
    """Optional PyTorch port of the kernels (float64, same operation order).

    Torch's elementwise/matmul kernels follow IEEE double arithmetic, so
    agreement with the NumPy reference is tight (~1e-12 relative) but not
    guaranteed bit-exact; the backend equivalence tests assert the tight
    tolerance and are skipped when torch is absent.
    """

    name = "torch"

    def __init__(self) -> None:
        import torch  # noqa: F401 - availability gate

        self._torch = torch

    @staticmethod
    def is_available() -> bool:
        """True when the optional torch dependency is importable."""
        return importlib.util.find_spec("torch") is not None

    def mlp_sgd(
        self,
        x_samples: np.ndarray,
        y_samples: np.ndarray,
        w_hidden: np.ndarray,
        b_hidden: np.ndarray,
        w_output: np.ndarray,
        b_output: np.ndarray,
        shuffle_orders: np.ndarray,
        learning_rate: float,
        momentum: float,
        gradient_clip: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        torch = self._torch
        as_t = lambda a: torch.from_numpy(np.ascontiguousarray(a))  # noqa: E731
        x = as_t(x_samples)
        y = as_t(y_samples)
        w_h = as_t(w_hidden).clone()
        b_h = as_t(b_hidden).clone()
        w_o = as_t(w_output).clone()
        b_o = as_t(b_output).clone()
        vel_w_h = torch.zeros_like(w_h)
        vel_b_h = torch.zeros_like(b_h)
        vel_w_o = torch.zeros_like(w_o)
        vel_b_o = torch.zeros_like(b_o)
        lr, clip = learning_rate, gradient_clip

        for indices in shuffle_orders:
            for idx in indices:
                xi = x[idx]                                            # (N, F)
                hidden_act = torch.sigmoid(
                    torch.clamp(
                        torch.matmul(xi.unsqueeze(1), w_h).squeeze(1) + b_h,
                        -60.0,
                        60.0,
                    )
                )
                output = torch.matmul(
                    hidden_act.unsqueeze(1), w_o.unsqueeze(2)
                ).reshape(-1)
                error = torch.clamp(output + b_o - y[idx], -clip, clip)

                grad_w_o = error.unsqueeze(1) * hidden_act
                delta_h = error.unsqueeze(1) * w_o * hidden_act * (1.0 - hidden_act)
                grad_w_h = xi.unsqueeze(2) * delta_h.unsqueeze(1)

                vel_w_o = momentum * vel_w_o - lr * grad_w_o
                vel_b_o = momentum * vel_b_o - lr * error
                vel_w_h = momentum * vel_w_h - lr * grad_w_h
                vel_b_h = momentum * vel_b_h - lr * delta_h

                w_o += vel_w_o
                b_o += vel_b_o
                w_h += vel_w_h
                b_h += vel_b_h

        return (w_h.numpy(), b_h.numpy(), w_o.numpy(), b_o.numpy())

    def nnt_downdated_statistics(
        self,
        pred: np.ndarray,
        target: np.ndarray,
        rows: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        torch = self._torch
        p = torch.from_numpy(np.ascontiguousarray(pred))
        t = torch.from_numpy(np.ascontiguousarray(target))
        r = torch.from_numpy(np.ascontiguousarray(rows))
        n = p.shape[0]
        factor = n / (n - 1.0)
        mean_x = p.mean(dim=0)
        mean_y = t.mean(dim=0)
        dx = p - mean_x.unsqueeze(0)
        dy = t - mean_y.unsqueeze(0)
        sxx_full = (dx**2).sum(dim=0)
        syy_full = (dy**2).sum(dim=0)
        sxy_full = dx.T @ dy
        dxr = dx[r]
        dyr = dy[r]
        sxx = torch.clamp(sxx_full.unsqueeze(0) - factor * dxr**2, min=0.0)
        syy = torch.clamp(syy_full.unsqueeze(0) - factor * dyr**2, min=0.0)
        sxy = sxy_full.unsqueeze(0) - factor * (dxr.unsqueeze(2) * dyr.unsqueeze(1))
        loo_mean_x = (n * mean_x.unsqueeze(0) - p[r]) / (n - 1)
        loo_mean_y = (n * mean_y.unsqueeze(0) - t[r]) / (n - 1)
        return (
            sxx.numpy(),
            syy.numpy(),
            sxy.numpy(),
            loo_mean_x.numpy(),
            loo_mean_y.numpy(),
        )


#: Known backends, by configuration name.
BACKENDS: dict[str, type] = {
    NumpyBackend.name: NumpyBackend,
    TorchBackend.name: TorchBackend,
}

_INSTANCES: dict[str, ArrayBackend] = {}
_WARNED: set[str] = set()


def available_backends() -> tuple[str, ...]:
    """Names of the backends whose dependencies are importable right now.

    Examples::

        >>> "numpy" in available_backends()
        True
    """
    return tuple(name for name, cls in BACKENDS.items() if cls.is_available())


def resolve_backend(backend: "str | ArrayBackend | None" = None) -> ArrayBackend:
    """Resolve a backend name/instance/None to a ready :class:`ArrayBackend`.

    Resolution order: an explicit instance is returned as-is; an explicit
    name is looked up in :data:`BACKENDS`; ``None`` consults the
    ``REPRO_BACKEND`` environment variable and defaults to ``"numpy"``.
    A known but unavailable backend (e.g. ``torch`` without torch
    installed) warns once per process and falls back to the NumPy
    reference so opt-in configurations degrade instead of failing;
    an unknown name raises ``ValueError``.

    Examples::

        >>> resolve_backend(None).name
        'numpy'
        >>> resolve_backend(NumpyBackend()).name
        'numpy'
    """
    if backend is not None and not isinstance(backend, str):
        return backend
    name = backend if backend is not None else os.environ.get(BACKEND_ENV_VAR, "numpy")
    name = name.strip().lower() or "numpy"
    if name not in BACKENDS:
        raise ValueError(
            f"unknown array backend {name!r} (known: {sorted(BACKENDS)})"
        )
    cls = BACKENDS[name]
    if not cls.is_available():
        if name not in _WARNED:
            _WARNED.add(name)
            warnings.warn(
                f"array backend {name!r} is not available "
                "(optional dependency missing); falling back to 'numpy'",
                RuntimeWarning,
                stacklevel=2,
            )
        name = NumpyBackend.name
        cls = NumpyBackend
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = cls()
        _INSTANCES[name] = instance
    return instance
