"""The assembled study dataset.

:class:`SpecDataset` bundles everything an experiment needs: the performance
matrix, the machine catalogue (with family/year metadata for the
cross-validation splits) and the benchmark characteristics (for the GA-kNN
baseline).  :func:`build_default_dataset` produces the study configuration —
29 SPEC CPU2006 benchmarks on 117 machines — and caches it per process
because every experiment starts from the same dataset.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property, lru_cache
from typing import Sequence

import numpy as np

from repro.data.benchmarks import SPEC_CPU2006_BENCHMARKS, benchmark_by_name
from repro.data.machines import (
    MachineSpec,
    build_machine_catalogue,
    machines_by_family,
    machines_by_year,
)
from repro.data.matrix import PerformanceMatrix
from repro.data.synthetic import generate_performance_matrix
from repro.simulator.workload import WorkloadCharacteristics

__all__ = ["SpecDataset", "build_default_dataset"]


@dataclass(frozen=True)
class SpecDataset:
    """Performance matrix plus machine and benchmark metadata."""

    matrix: PerformanceMatrix
    machines: tuple[MachineSpec, ...]
    benchmarks: tuple[WorkloadCharacteristics, ...]

    def __post_init__(self) -> None:
        machine_ids = [machine.machine_id for machine in self.machines]
        if machine_ids != self.matrix.machines:
            raise ValueError("machine catalogue does not match the matrix columns")
        benchmark_names = [workload.name for workload in self.benchmarks]
        if benchmark_names != self.matrix.benchmarks:
            raise ValueError("benchmark list does not match the matrix rows")

    # ------------------------------------------------------------- identity
    @cached_property
    def fingerprint(self) -> str:
        """Stable content digest of the dataset (hex SHA-256).

        Two datasets share a fingerprint exactly when their benchmark rows,
        machine columns and score values are identical, regardless of which
        process built them.  This is the dataset half of the prediction
        service's cache key (:func:`repro.core.batch.split_cache_key`):
        unlike ``id(dataset)``, it survives pickling across the ``n_jobs``
        process pool and server restarts, so cached trained state is reused
        if and only if it was derived from the same scores.

        The digest covers the row/column *order* as well as the values —
        a reordered matrix is a different dataset to every consumer that
        works with positional score blocks.

        Examples::

            >>> from repro.data import build_default_dataset
            >>> dataset = build_default_dataset()
            >>> dataset.fingerprint == build_default_dataset().fingerprint
            True
            >>> len(dataset.fingerprint)
            64
        """
        digest = hashlib.sha256()
        digest.update("\x1f".join(self.matrix.benchmarks).encode())
        digest.update(b"\x1e")
        digest.update("\x1f".join(self.matrix.machines).encode())
        digest.update(b"\x1e")
        digest.update(np.ascontiguousarray(self.matrix.scores).tobytes())
        return digest.hexdigest()

    # ------------------------------------------------------------- metadata
    @property
    def machine_ids(self) -> list[str]:
        """Machine identifiers in matrix column order."""
        return list(self.matrix.machines)

    @property
    def benchmark_names(self) -> list[str]:
        """Benchmark names in matrix row order."""
        return list(self.matrix.benchmarks)

    def machine(self, machine_id: str) -> MachineSpec:
        """Look up one machine's metadata by identifier."""
        for spec in self.machines:
            if spec.machine_id == machine_id:
                return spec
        raise KeyError(f"unknown machine {machine_id!r}")

    def benchmark(self, name: str) -> WorkloadCharacteristics:
        """Look up one benchmark's characteristics by name."""
        for workload in self.benchmarks:
            if workload.name == name:
                return workload
        raise KeyError(f"unknown benchmark {name!r}")

    def families(self) -> dict[str, list[MachineSpec]]:
        """Machines grouped by processor family."""
        return machines_by_family(list(self.machines))

    def years(self) -> dict[int, list[MachineSpec]]:
        """Machines grouped by release year."""
        return machines_by_year(list(self.machines))

    # ------------------------------------------------------------- features
    def benchmark_feature_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Microarchitecture-independent (MICA-style) features, one row per benchmark.

        This is the feature space the GA-kNN baseline works in: the partial,
        profile-measurable view of each workload
        (:meth:`repro.simulator.workload.WorkloadCharacteristics.mica_features`),
        not the simulator's full ground-truth parameter vector.  *names*
        restricts and orders the rows (default: matrix row order).
        """
        selected = names if names is not None else self.benchmark_names
        return np.vstack([benchmark_by_name(name).mica_features() for name in selected])

    # ------------------------------------------------------------ sub-setting
    def restrict_machines(self, machine_ids: Sequence[str]) -> "SpecDataset":
        """Dataset containing only the given machines, in the given order."""
        id_set = list(machine_ids)
        by_id = {machine.machine_id: machine for machine in self.machines}
        missing = [mid for mid in id_set if mid not in by_id]
        if missing:
            raise KeyError(f"unknown machines: {missing}")
        return SpecDataset(
            matrix=self.matrix.select_machines(id_set),
            machines=tuple(by_id[mid] for mid in id_set),
            benchmarks=self.benchmarks,
        )


@lru_cache(maxsize=4)
def build_default_dataset(noise_sigma: float = 0.03, seed: int = 0) -> SpecDataset:
    """Build (and cache) the default 29-benchmark x 117-machine dataset."""
    machines = tuple(build_machine_catalogue())
    benchmarks = tuple(SPEC_CPU2006_BENCHMARKS)
    matrix = generate_performance_matrix(
        machines=machines, benchmarks=benchmarks, noise_sigma=noise_sigma, seed=seed
    )
    return SpecDataset(matrix=matrix, machines=machines, benchmarks=benchmarks)
