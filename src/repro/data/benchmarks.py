"""SPEC CPU2006 benchmark definitions.

The 29 benchmarks of the SPEC CPU2006 suite (12 integer + 17 floating point)
used by the paper, each described by the microarchitecture-independent
characteristics consumed by the simulator and by the GA-kNN baseline.  The
characteristic values are set from the well-documented behaviour of the
suite (instruction mixes, working sets and memory-boundedness reported in
the SPEC CPU2006 characterisation literature); their exact magnitudes are
less important than the qualitative structure:

* **memory-bound outliers** — mcf, lbm, libquantum, leslie3d, cactusADM,
  milc, GemsFDTD and soplex have multi-megabyte to multi-gigabyte working
  sets and live or die by last-level cache capacity and memory bandwidth;
* **compute-bound codes** — namd, hmmer, gamess, povray, h264ref, gromacs
  and calculix have small working sets and reward high clock frequency and
  wide issue;
* **branch-heavy integer codes** — gobmk, sjeng, astar and gcc stress the
  branch predictor.

This is exactly the diversity that makes some benchmarks "outliers with
respect to the benchmark suite" (Section 6.2), which is what the paper's
method handles better than prior work.
"""

from __future__ import annotations

from repro.simulator.workload import WorkloadCharacteristics

__all__ = [
    "SPEC_CPU2006_BENCHMARKS",
    "SPEC_INT_2006",
    "SPEC_FP_2006",
    "benchmark_by_name",
    "benchmark_names",
]


def _workload(name, domain, instr, mem, br, fp, ilp, ws_mb, loc, ent, mlp, vec, desc):
    return WorkloadCharacteristics(
        name=name,
        domain=domain,
        dynamic_instructions=instr,
        memory_fraction=mem,
        branch_fraction=br,
        fp_fraction=fp,
        ilp=ilp,
        working_set_mb=ws_mb,
        locality_exponent=loc,
        branch_entropy=ent,
        memory_level_parallelism=mlp,
        vectorizable_fraction=vec,
        description=desc,
    )


#: The 12 SPECint 2006 benchmarks.
SPEC_INT_2006: tuple[WorkloadCharacteristics, ...] = (
    _workload("perlbench", "int", 2100, 0.42, 0.21, 0.00, 2.1, 0.9, 1.30, 0.30, 1.5, 0.00,
              "Perl interpreter running spam-filtering and HTML-diffing scripts"),
    _workload("bzip2", "int", 2400, 0.38, 0.15, 0.00, 2.4, 6.0, 0.95, 0.32, 1.8, 0.05,
              "Block-sorting compression of mixed input data"),
    _workload("gcc", "int", 1100, 0.45, 0.22, 0.00, 1.8, 4.5, 0.85, 0.38, 1.6, 0.00,
              "C compiler building pre-processed source files"),
    _workload("mcf", "int", 330, 0.48, 0.19, 0.00, 1.2, 860.0, 0.45, 0.34, 2.6, 0.00,
              "Single-depot vehicle scheduling via network simplex; pointer chasing over a huge graph"),
    _workload("gobmk", "int", 1600, 0.36, 0.24, 0.00, 1.9, 1.2, 1.20, 0.45, 1.4, 0.00,
              "Go-playing engine; deep recursion and hard-to-predict branches"),
    _workload("hmmer", "int", 3200, 0.41, 0.08, 0.00, 3.2, 0.3, 1.60, 0.10, 1.3, 0.30,
              "Profile HMM search over a protein database; tight compute loop"),
    _workload("sjeng", "int", 2300, 0.34, 0.23, 0.00, 1.9, 1.7, 1.10, 0.44, 1.4, 0.00,
              "Chess engine with alpha-beta search"),
    _workload("libquantum", "int", 3600, 0.33, 0.14, 0.00, 2.0, 64.0, 0.50, 0.12, 6.0, 0.55,
              "Quantum computer simulation; perfectly streaming gate applications"),
    _workload("h264ref", "int", 3000, 0.40, 0.10, 0.02, 2.8, 1.9, 1.40, 0.22, 1.6, 0.35,
              "H.264 video encoder reference implementation"),
    _workload("omnetpp", "int", 690, 0.44, 0.20, 0.00, 1.5, 150.0, 0.55, 0.36, 1.9, 0.00,
              "Discrete-event Ethernet network simulation; pointer-rich heap"),
    _workload("astar", "int", 1100, 0.41, 0.18, 0.00, 1.7, 24.0, 0.70, 0.40, 1.8, 0.00,
              "A* path-finding over large game maps"),
    _workload("xalancbmk", "int", 1200, 0.43, 0.25, 0.00, 1.7, 60.0, 0.65, 0.33, 1.7, 0.00,
              "XSLT processor transforming XML documents"),
)

#: The 17 SPECfp 2006 benchmarks.
SPEC_FP_2006: tuple[WorkloadCharacteristics, ...] = (
    _workload("bwaves", "fp", 1600, 0.46, 0.03, 0.42, 2.6, 400.0, 0.60, 0.06, 4.5, 0.60,
              "Blast-wave CFD solver on large 3-D grids"),
    _workload("gamess", "fp", 4800, 0.36, 0.06, 0.40, 3.0, 0.6, 1.70, 0.08, 1.3, 0.40,
              "Quantum chemistry (self-consistent field); cache resident"),
    _workload("milc", "fp", 930, 0.47, 0.04, 0.40, 2.2, 500.0, 0.50, 0.05, 3.8, 0.55,
              "Lattice QCD with sparse matrix-vector kernels"),
    _workload("zeusmp", "fp", 1600, 0.44, 0.04, 0.40, 2.5, 250.0, 0.62, 0.06, 3.4, 0.50,
              "Astrophysical magnetohydrodynamics on structured grids"),
    _workload("gromacs", "fp", 2100, 0.37, 0.05, 0.45, 3.0, 1.2, 1.55, 0.09, 1.4, 0.45,
              "Molecular dynamics of biomolecules; compute dense"),
    _workload("cactusADM", "fp", 1300, 0.48, 0.02, 0.44, 2.4, 340.0, 0.48, 0.04, 5.0, 0.65,
              "Numerical relativity (Einstein equations); streaming stencil with huge footprint"),
    _workload("leslie3d", "fp", 1300, 0.47, 0.03, 0.43, 2.3, 380.0, 0.46, 0.05, 5.2, 0.62,
              "Large-eddy turbulence simulation; bandwidth-hungry stencil outlier"),
    _workload("namd", "fp", 2500, 0.35, 0.05, 0.48, 3.3, 0.4, 1.75, 0.07, 1.3, 0.42,
              "Molecular dynamics (NAMD); small working set, FP-latency bound"),
    _workload("dealII", "fp", 2100, 0.42, 0.16, 0.30, 2.2, 20.0, 0.80, 0.24, 1.8, 0.20,
              "Adaptive finite elements with the deal.II library"),
    _workload("soplex", "fp", 700, 0.45, 0.16, 0.25, 1.9, 290.0, 0.55, 0.28, 2.4, 0.15,
              "Simplex linear-program solver over sparse matrices"),
    _workload("povray", "fp", 1200, 0.36, 0.13, 0.35, 2.7, 0.5, 1.60, 0.25, 1.3, 0.20,
              "Ray tracer; tiny working set, branchy FP"),
    _workload("calculix", "fp", 3200, 0.40, 0.05, 0.40, 2.8, 3.5, 1.25, 0.10, 1.6, 0.40,
              "Structural mechanics finite elements (SPOOLES solver)"),
    _workload("GemsFDTD", "fp", 1400, 0.48, 0.03, 0.42, 2.3, 430.0, 0.52, 0.05, 4.2, 0.55,
              "Finite-difference time-domain electromagnetics; streaming 3-D sweeps"),
    _workload("tonto", "fp", 2600, 0.39, 0.08, 0.38, 2.6, 2.2, 1.30, 0.12, 1.5, 0.30,
              "Quantum crystallography in Fortran 95"),
    _workload("lbm", "fp", 1300, 0.49, 0.01, 0.42, 2.5, 410.0, 0.45, 0.03, 5.5, 0.70,
              "Lattice-Boltzmann fluid dynamics; the canonical bandwidth-bound streaming code"),
    _workload("wrf", "fp", 1700, 0.43, 0.06, 0.38, 2.4, 120.0, 0.68, 0.10, 2.8, 0.45,
              "Weather research and forecasting model"),
    _workload("sphinx3", "fp", 2200, 0.42, 0.09, 0.32, 2.3, 45.0, 0.72, 0.15, 2.2, 0.35,
              "Speech recognition (CMU Sphinx acoustic scoring)"),
)

#: All 29 benchmarks in the canonical (alphabetical-by-suite) order used by
#: the paper's figures.
SPEC_CPU2006_BENCHMARKS: tuple[WorkloadCharacteristics, ...] = tuple(
    sorted(SPEC_INT_2006 + SPEC_FP_2006, key=lambda workload: workload.name.lower())
)

_BY_NAME = {workload.name: workload for workload in SPEC_CPU2006_BENCHMARKS}


def benchmark_names() -> list[str]:
    """Names of all 29 benchmarks in canonical order."""
    return [workload.name for workload in SPEC_CPU2006_BENCHMARKS]


def benchmark_by_name(name: str) -> WorkloadCharacteristics:
    """Look up one benchmark's characteristics by name.

    Raises KeyError with the list of valid names when the benchmark is
    unknown, which catches typos in experiment configuration early.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; valid names: {', '.join(sorted(_BY_NAME))}"
        ) from None
