"""The benchmark-by-machine performance matrix.

Figure 2 of the paper frames everything around a data matrix whose rows are
benchmarks and whose columns are machines, holding SPEC-style speed ratios.
:class:`PerformanceMatrix` is that object: a labelled 2-D array with
row/column lookup by benchmark or machine name, sub-matrix selection (the
cross-validation splitters carve predictive/target machine sets and remove
the application of interest from the training rows), the transposition the
method is named after, and CSV round-tripping so generated datasets can be
inspected or swapped for real SPEC exports.
"""

from __future__ import annotations

import csv
from pathlib import Path
from types import MappingProxyType
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["PerformanceMatrix"]


class PerformanceMatrix:
    """Labelled benchmarks x machines matrix of performance scores."""

    def __init__(
        self,
        benchmarks: Sequence[str],
        machines: Sequence[str],
        scores: np.ndarray | Sequence[Sequence[float]],
    ) -> None:
        self.benchmarks = list(benchmarks)
        self.machines = list(machines)
        # Own, immutable copy: downstream consumers (the split-level caches
        # of the batched engine in particular) may retain derived blocks, so
        # silent in-place edits would desynchronise them.  Mutating the
        # scores raises instead; build a new matrix to change values.
        self.scores = np.array(scores, dtype=float)
        if self.scores.shape != (len(self.benchmarks), len(self.machines)):
            raise ValueError(
                f"scores shape {self.scores.shape} does not match "
                f"({len(self.benchmarks)} benchmarks, {len(self.machines)} machines)"
            )
        if len(set(self.benchmarks)) != len(self.benchmarks):
            raise ValueError("benchmark names must be unique")
        if len(set(self.machines)) != len(self.machines):
            raise ValueError("machine names must be unique")
        if not np.all(np.isfinite(self.scores)):
            raise ValueError("scores must all be finite")
        if np.any(self.scores <= 0):
            raise ValueError("SPEC-style speed ratios must be positive")
        self.scores.flags.writeable = False
        self._benchmark_index = {name: i for i, name in enumerate(self.benchmarks)}
        self._machine_index = {name: i for i, name in enumerate(self.machines)}

    # ------------------------------------------------------------- accessors
    @property
    def shape(self) -> tuple[int, int]:
        """(number of benchmarks, number of machines)."""
        return self.scores.shape

    def benchmark_index(self, benchmark: str) -> int:
        """Row index of *benchmark*; raises KeyError for unknown names."""
        try:
            return self._benchmark_index[benchmark]
        except KeyError:
            raise KeyError(f"unknown benchmark {benchmark!r}") from None

    def machine_index(self, machine: str) -> int:
        """Column index of *machine*; raises KeyError for unknown names."""
        try:
            return self._machine_index[machine]
        except KeyError:
            raise KeyError(f"unknown machine {machine!r}") from None

    @property
    def machine_index_map(self) -> Mapping[str, int]:
        """Read-only ``{machine_id: column}`` mapping, built once at construction.

        Hot paths (the cross-validation pipeline visits every matrix cell)
        use this instead of rebuilding the dict per lookup batch.
        """
        return MappingProxyType(self._machine_index)

    @property
    def benchmark_index_map(self) -> Mapping[str, int]:
        """Read-only ``{benchmark: row}`` mapping, built once at construction."""
        return MappingProxyType(self._benchmark_index)

    def score(self, benchmark: str, machine: str) -> float:
        """Single cell: the score of *benchmark* on *machine*."""
        return float(self.scores[self.benchmark_index(benchmark), self.machine_index(machine)])

    def benchmark_scores(self, benchmark: str) -> np.ndarray:
        """One row: *benchmark*'s score on every machine (read-only view)."""
        row = self.scores[self.benchmark_index(benchmark)].view()
        row.flags.writeable = False
        return row

    def machine_scores(self, machine: str) -> np.ndarray:
        """One column: every benchmark's score on *machine* (read-only view)."""
        column = self.scores[:, self.machine_index(machine)].view()
        column.flags.writeable = False
        return column

    # ------------------------------------------------------------- selection
    def select_machines(self, machines: Iterable[str]) -> "PerformanceMatrix":
        """Sub-matrix containing only the given machines (columns), in order."""
        names = list(machines)
        indices = [self.machine_index(name) for name in names]
        return PerformanceMatrix(self.benchmarks, names, self.scores[:, indices])

    def select_benchmarks(self, benchmarks: Iterable[str]) -> "PerformanceMatrix":
        """Sub-matrix containing only the given benchmarks (rows), in order."""
        names = list(benchmarks)
        indices = [self.benchmark_index(name) for name in names]
        return PerformanceMatrix(names, self.machines, self.scores[indices, :])

    def drop_benchmark(self, benchmark: str) -> "PerformanceMatrix":
        """Matrix without one benchmark row (the leave-one-out application of interest)."""
        remaining = [name for name in self.benchmarks if name != benchmark]
        if len(remaining) == len(self.benchmarks):
            raise KeyError(f"unknown benchmark {benchmark!r}")
        return self.select_benchmarks(remaining)

    def drop_machines(self, machines: Iterable[str]) -> "PerformanceMatrix":
        """Matrix without the given machine columns."""
        to_drop = set(machines)
        unknown = to_drop - set(self.machines)
        if unknown:
            raise KeyError(f"unknown machines: {sorted(unknown)}")
        remaining = [name for name in self.machines if name not in to_drop]
        return self.select_machines(remaining)

    # ---------------------------------------------------------- transposition
    def transposed(self) -> "PerformanceMatrix":
        """The transposed matrix: rows become machines, columns benchmarks.

        This is the literal operation that gives the paper's method its
        name — after transposition, "find the most similar row" means
        finding the most similar *machine* rather than the most similar
        benchmark.
        """
        return PerformanceMatrix(self.machines, self.benchmarks, self.scores.T)

    # ----------------------------------------------------------------- stats
    def machine_means(self) -> np.ndarray:
        """Mean score per machine across the suite (the naive purchase metric)."""
        return self.scores.mean(axis=0)

    def benchmark_means(self) -> np.ndarray:
        """Mean score per benchmark across machines."""
        return self.scores.mean(axis=1)

    # ------------------------------------------------------------------- csv
    def to_csv(self, path: str | Path) -> Path:
        """Write the matrix (benchmarks as rows) to a CSV file and return its path."""
        target = Path(path)
        with target.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["benchmark", *self.machines])
            for benchmark, row in zip(self.benchmarks, self.scores):
                writer.writerow([benchmark, *(f"{value:.6g}" for value in row)])
        return target

    @classmethod
    def from_csv(cls, path: str | Path) -> "PerformanceMatrix":
        """Read a matrix previously written by :meth:`to_csv`."""
        source = Path(path)
        with source.open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if not header or header[0] != "benchmark":
                raise ValueError(f"{source} is not a performance-matrix CSV")
            machines = header[1:]
            benchmarks: list[str] = []
            rows: list[list[float]] = []
            for record in reader:
                if not record:
                    continue
                benchmarks.append(record[0])
                rows.append([float(value) for value in record[1:]])
        return cls(benchmarks, machines, np.asarray(rows))

    # ------------------------------------------------------------------ misc
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PerformanceMatrix({len(self.benchmarks)} benchmarks x "
            f"{len(self.machines)} machines)"
        )
