"""The commercial-machine catalogue (Table 1 of the paper).

The paper selects 117 machines from the SPEC CPU2006 submission database:
39 CPU nicknames across 17 processor families, three machines per nickname
(submissions differ in clock grade, memory configuration and vendor
platform).  This module reconstructs that catalogue.  For every nickname a
base micro-architecture configuration is defined from public spec sheets;
the three concrete machines per nickname are derived variants with slightly
different clock grades and memory speeds, mirroring how real submissions of
the same CPU differ.

The catalogue provides machine metadata (processor family, vendor, ISA and
release year) that the cross-validation splitters in
:mod:`repro.data.splits` group by, exactly as the paper's evaluation does
(family-level cross-validation in Section 6.2, release-year splits in
Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.simulator.microarch import MicroarchConfig

__all__ = [
    "MachineSpec",
    "NICKNAME_SPECS",
    "build_machine_catalogue",
    "machines_by_family",
    "machines_by_year",
    "PROCESSOR_FAMILIES",
]


@dataclass(frozen=True)
class MachineSpec:
    """One commercial machine: identity metadata plus its simulator config."""

    machine_id: str
    family: str
    nickname: str
    vendor: str
    release_year: int
    config: MicroarchConfig

    @property
    def name(self) -> str:
        """Human-readable name, identical to the simulator config name."""
        return self.config.name

    @property
    def isa(self) -> str:
        """Instruction-set architecture of the machine."""
        return self.config.isa


def _config(name, isa, freq, issue, rob, pipe, l1, l2, l3, lat, bw, bp, fp, simd, eff):
    return MicroarchConfig(
        name=name,
        isa=isa,
        frequency_ghz=freq,
        issue_width=issue,
        rob_size=rob,
        pipeline_depth=pipe,
        l1_kb=l1,
        l2_kb=l2,
        l3_kb=l3,
        mem_latency_ns=lat,
        mem_bandwidth_gbs=bw,
        branch_predictor_quality=bp,
        fp_throughput=fp,
        simd_width=simd,
        isa_efficiency=eff,
    )


#: (family, nickname, vendor, release year, base configuration).
#: One entry per CPU nickname of Table 1; 39 entries in total.
NICKNAME_SPECS: tuple[tuple[str, str, str, int, MicroarchConfig], ...] = (
    # ----------------------------------------------------------------- AMD
    ("AMD Opteron (K10)", "Barcelona", "AMD", 2008,
     _config("AMD Opteron Barcelona", "x86", 2.3, 3, 72, 12, 64, 512, 2048, 60.0, 10.6, 0.93, 1.0, 2, 1.00)),
    ("AMD Opteron (K10)", "Istanbul", "AMD", 2009,
     _config("AMD Opteron Istanbul", "x86", 2.6, 3, 72, 12, 64, 512, 6144, 58.0, 12.8, 0.93, 1.0, 2, 1.00)),
    ("AMD Opteron (K10)", "Shanghai", "AMD", 2009,
     _config("AMD Opteron Shanghai", "x86", 2.7, 3, 72, 12, 64, 512, 6144, 58.0, 12.8, 0.93, 1.0, 2, 1.00)),
    ("AMD Opteron (K8)", "Santa Rosa", "AMD", 2006,
     _config("AMD Opteron Santa Rosa", "x86", 2.8, 3, 72, 12, 64, 1024, 0, 70.0, 6.4, 0.90, 0.8, 2, 1.00)),
    ("AMD Opteron (K8)", "Troy", "AMD", 2005,
     _config("AMD Opteron Troy", "x86", 2.6, 3, 72, 12, 64, 1024, 0, 75.0, 5.3, 0.90, 0.8, 2, 1.00)),
    ("AMD Phenom", "Agena", "AMD", 2008,
     _config("AMD Phenom Agena", "x86", 2.3, 3, 72, 12, 64, 512, 2048, 62.0, 8.5, 0.93, 1.0, 2, 1.00)),
    ("AMD Phenom", "Deneb", "AMD", 2009,
     _config("AMD Phenom II Deneb", "x86", 3.0, 3, 72, 12, 64, 512, 6144, 58.0, 10.6, 0.93, 1.0, 2, 1.00)),
    ("AMD Turion", "Trinidad", "AMD", 2006,
     _config("AMD Turion Trinidad", "x86", 2.0, 3, 72, 12, 64, 512, 0, 80.0, 3.2, 0.90, 0.8, 2, 1.00)),
    # ----------------------------------------------------------------- IBM
    ("IBM POWER 5", "POWER5+", "IBM", 2005,
     _config("IBM POWER5+", "power", 1.9, 5, 100, 16, 32, 1920, 36864, 90.0, 12.0, 0.92, 1.5, 1, 1.10)),
    ("IBM POWER 6", "POWER6", "IBM", 2007,
     _config("IBM POWER6", "power", 4.7, 5, 48, 13, 64, 4096, 32768, 100.0, 20.0, 0.93, 1.3, 2, 1.10)),
    # -------------------------------------------------------- Intel Core 2
    ("Intel Core 2", "Allendale", "Intel", 2007,
     _config("Intel Core 2 Allendale", "x86", 2.2, 4, 96, 14, 32, 2048, 0, 85.0, 6.4, 0.95, 1.0, 2, 1.00)),
    ("Intel Core 2", "Conroe", "Intel", 2006,
     _config("Intel Core 2 Conroe", "x86", 2.4, 4, 96, 14, 32, 4096, 0, 85.0, 6.4, 0.95, 1.0, 2, 1.00)),
    ("Intel Core 2", "Kentsfield", "Intel", 2007,
     _config("Intel Core 2 Kentsfield", "x86", 2.66, 4, 96, 14, 32, 4096, 0, 88.0, 8.5, 0.95, 1.0, 2, 1.00)),
    ("Intel Core 2", "Merom-2M", "Intel", 2006,
     _config("Intel Core 2 Merom-2M", "x86", 2.0, 4, 96, 14, 32, 2048, 0, 95.0, 5.3, 0.95, 1.0, 2, 1.00)),
    ("Intel Core 2", "Penryn-3M", "Intel", 2008,
     _config("Intel Core 2 Penryn-3M", "x86", 2.4, 4, 96, 14, 32, 3072, 0, 85.0, 8.5, 0.95, 1.1, 2, 1.00)),
    ("Intel Core 2", "Wolfdale", "Intel", 2008,
     _config("Intel Core 2 Wolfdale", "x86", 3.0, 4, 96, 14, 32, 6144, 0, 80.0, 10.6, 0.95, 1.1, 2, 1.00)),
    ("Intel Core 2", "Yorkfield", "Intel", 2008,
     _config("Intel Core 2 Yorkfield", "x86", 2.83, 4, 96, 14, 32, 6144, 0, 82.0, 10.6, 0.95, 1.1, 2, 1.00)),
    # ------------------------------------------------------ other Intel CPUs
    ("Intel Core Duo", "Yonah", "Intel", 2006,
     _config("Intel Core Duo Yonah", "x86", 1.83, 3, 48, 12, 32, 2048, 0, 95.0, 5.3, 0.94, 0.8, 2, 1.00)),
    ("Intel Core i7", "Bloomfield XE", "Intel", 2009,
     _config("Intel Core i7 Bloomfield XE", "x86", 3.2, 4, 128, 14, 32, 256, 8192, 50.0, 25.6, 0.96, 1.2, 2, 1.00)),
    ("Intel Itanium", "Montecito", "Intel", 2007,
     _config("Intel Itanium Montecito", "ia64", 1.6, 6, 48, 8, 16, 256, 12288, 120.0, 8.5, 0.90, 2.0, 2, 1.30)),
    ("Intel Pentium D", "Presler", "Intel", 2006,
     _config("Intel Pentium D Presler", "x86", 3.4, 3, 126, 31, 16, 2048, 0, 95.0, 6.4, 0.92, 0.8, 2, 1.00)),
    ("Intel Pentium Dual-Core", "Allendale", "Intel", 2007,
     _config("Intel Pentium Dual-Core Allendale", "x86", 2.0, 4, 96, 14, 32, 1024, 0, 90.0, 5.3, 0.95, 1.0, 2, 1.00)),
    ("Intel Pentium M", "Dothan", "Intel", 2004,
     _config("Intel Pentium M Dothan", "x86", 2.0, 3, 48, 12, 32, 2048, 0, 110.0, 3.2, 0.93, 0.7, 2, 1.00)),
    # ------------------------------------------------------------ Intel Xeon
    ("Intel Xeon", "Bloomfield", "Intel", 2009,
     _config("Intel Xeon Bloomfield", "x86", 3.2, 4, 128, 14, 32, 256, 8192, 50.0, 25.6, 0.96, 1.2, 2, 1.00)),
    ("Intel Xeon", "Clovertown", "Intel", 2007,
     _config("Intel Xeon Clovertown", "x86", 2.66, 4, 96, 14, 32, 4096, 0, 95.0, 8.5, 0.95, 1.0, 2, 1.00)),
    ("Intel Xeon", "Conroe", "Intel", 2006,
     _config("Intel Xeon Conroe", "x86", 2.4, 4, 96, 14, 32, 4096, 0, 90.0, 6.4, 0.95, 1.0, 2, 1.00)),
    ("Intel Xeon", "Dunnington", "Intel", 2008,
     _config("Intel Xeon Dunnington", "x86", 2.66, 4, 96, 14, 32, 3072, 16384, 95.0, 8.5, 0.95, 1.1, 2, 1.00)),
    ("Intel Xeon", "Gainestown", "Intel", 2009,
     _config("Intel Xeon Gainestown", "x86", 2.93, 4, 128, 14, 32, 256, 8192, 45.0, 32.0, 0.96, 1.2, 2, 1.00)),
    ("Intel Xeon", "Harpertown", "Intel", 2007,
     _config("Intel Xeon Harpertown", "x86", 3.0, 4, 96, 14, 32, 6144, 0, 90.0, 10.6, 0.95, 1.1, 2, 1.00)),
    ("Intel Xeon", "Kentsfield", "Intel", 2007,
     _config("Intel Xeon Kentsfield", "x86", 2.66, 4, 96, 14, 32, 4096, 0, 90.0, 8.5, 0.95, 1.0, 2, 1.00)),
    ("Intel Xeon", "Lynnfield", "Intel", 2009,
     _config("Intel Xeon Lynnfield", "x86", 2.93, 4, 128, 14, 32, 256, 8192, 55.0, 21.0, 0.96, 1.2, 2, 1.00)),
    ("Intel Xeon", "Tigerton", "Intel", 2007,
     _config("Intel Xeon Tigerton", "x86", 2.93, 4, 96, 14, 32, 4096, 0, 100.0, 8.5, 0.95, 1.0, 2, 1.00)),
    ("Intel Xeon", "Tulsa", "Intel", 2006,
     _config("Intel Xeon Tulsa", "x86", 3.4, 3, 126, 31, 16, 1024, 16384, 110.0, 6.4, 0.92, 0.8, 2, 1.00)),
    ("Intel Xeon", "Wolfdale-DP", "Intel", 2008,
     _config("Intel Xeon Wolfdale-DP", "x86", 3.16, 4, 96, 14, 32, 6144, 0, 80.0, 10.6, 0.95, 1.1, 2, 1.00)),
    ("Intel Xeon", "Woodcrest", "Intel", 2006,
     _config("Intel Xeon Woodcrest", "x86", 3.0, 4, 96, 14, 32, 4096, 0, 85.0, 8.5, 0.95, 1.0, 2, 1.00)),
    ("Intel Xeon", "Yorkfield", "Intel", 2008,
     _config("Intel Xeon Yorkfield", "x86", 2.83, 4, 96, 14, 32, 6144, 0, 85.0, 10.6, 0.95, 1.1, 2, 1.00)),
    # ---------------------------------------------------------------- SPARC
    ("SPARC64 VI", "Olympus-C", "Fujitsu", 2007,
     _config("SPARC64 VI Olympus-C", "sparc", 2.15, 4, 64, 15, 128, 6144, 0, 105.0, 8.5, 0.92, 1.2, 1, 1.12)),
    ("SPARC64 VII", "Jupiter", "Fujitsu", 2008,
     _config("SPARC64 VII Jupiter", "sparc", 2.52, 4, 64, 15, 128, 6144, 0, 100.0, 10.6, 0.92, 1.3, 1, 1.12)),
    ("UltraSPARC III", "Cheetah+", "Sun", 2002,
     _config("UltraSPARC III Cheetah+", "sparc", 1.2, 4, 16, 14, 64, 8192, 0, 180.0, 2.4, 0.88, 0.7, 1, 1.15)),
)

#: The 17 processor families of Table 1.
PROCESSOR_FAMILIES: tuple[str, ...] = tuple(
    dict.fromkeys(family for family, *_ in NICKNAME_SPECS)
)

#: Per-variant (clock multiplier, memory-bandwidth multiplier, latency
#: multiplier): three SPEC submissions of the same CPU nickname typically
#: differ in clock grade and platform memory configuration.
_VARIANT_FACTORS: tuple[tuple[float, float, float], ...] = (
    (0.85, 0.92, 1.06),
    (1.00, 1.00, 1.00),
    (1.13, 1.08, 0.95),
)


def build_machine_catalogue() -> list[MachineSpec]:
    """Construct the full 117-machine catalogue (39 nicknames x 3 machines).

    Machine identifiers are stable (``<nickname-slug>-<variant>``) so that
    experiment results can be traced back to a concrete configuration.
    """
    catalogue: list[MachineSpec] = []
    for family, nickname, vendor, year, base in NICKNAME_SPECS:
        family_slug = family.lower().replace(" ", "-").replace("(", "").replace(")", "")
        nickname_slug = nickname.lower().replace(" ", "-")
        for variant, (clock_factor, bandwidth_factor, latency_factor) in enumerate(
            _VARIANT_FACTORS, start=1
        ):
            config = replace(
                base,
                name=f"{base.name} #{variant}",
                frequency_ghz=round(base.frequency_ghz * clock_factor, 3),
                mem_bandwidth_gbs=round(base.mem_bandwidth_gbs * bandwidth_factor, 3),
                mem_latency_ns=round(base.mem_latency_ns * latency_factor, 3),
            )
            catalogue.append(
                MachineSpec(
                    machine_id=f"{family_slug}-{nickname_slug}-{variant}",
                    family=family,
                    nickname=nickname,
                    vendor=vendor,
                    release_year=year,
                    config=config,
                )
            )
    return catalogue


def machines_by_family(machines: list[MachineSpec]) -> dict[str, list[MachineSpec]]:
    """Group machines by processor family (the Table 2 cross-validation unit)."""
    grouped: dict[str, list[MachineSpec]] = {}
    for machine in machines:
        grouped.setdefault(machine.family, []).append(machine)
    return grouped


def machines_by_year(machines: list[MachineSpec]) -> dict[int, list[MachineSpec]]:
    """Group machines by release year (the Table 3 temporal-split unit)."""
    grouped: dict[int, list[MachineSpec]] = {}
    for machine in machines:
        grouped.setdefault(machine.release_year, []).append(machine)
    return grouped
