"""Synthetic SPEC dataset generation.

Glue between the machine catalogue, the benchmark definitions and the
simulator: run every benchmark through every machine's interval model and
assemble the resulting SPEC-style speed ratios into a
:class:`repro.data.matrix.PerformanceMatrix`.  See DESIGN.md for why this
substitutes for the published spec.org submission data the paper used.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.benchmarks import SPEC_CPU2006_BENCHMARKS
from repro.data.machines import MachineSpec, build_machine_catalogue
from repro.data.matrix import PerformanceMatrix
from repro.simulator.spec_score import MachineSimulator
from repro.simulator.workload import WorkloadCharacteristics

__all__ = ["generate_performance_matrix", "score_application"]


def generate_performance_matrix(
    machines: Sequence[MachineSpec] | None = None,
    benchmarks: Sequence[WorkloadCharacteristics] | None = None,
    noise_sigma: float = 0.03,
    seed: int = 0,
) -> PerformanceMatrix:
    """Simulate every benchmark on every machine and return the score matrix.

    Parameters
    ----------
    machines:
        Machine specifications; defaults to the full 117-machine catalogue.
    benchmarks:
        Workloads; defaults to the 29 SPEC CPU2006 benchmarks.
    noise_sigma:
        Log-normal measurement noise passed to the simulator (0 disables it).
    seed:
        Base seed for the per-cell noise draws.
    """
    machine_specs = list(machines) if machines is not None else build_machine_catalogue()
    workloads = list(benchmarks) if benchmarks is not None else list(SPEC_CPU2006_BENCHMARKS)
    if not machine_specs:
        raise ValueError("at least one machine is required")
    if not workloads:
        raise ValueError("at least one benchmark is required")

    scores = np.empty((len(workloads), len(machine_specs)), dtype=float)
    for column, machine in enumerate(machine_specs):
        simulator = MachineSimulator(machine.config, noise_sigma=noise_sigma, seed=seed)
        scores[:, column] = simulator.score_suite(workloads)

    return PerformanceMatrix(
        benchmarks=[workload.name for workload in workloads],
        machines=[machine.machine_id for machine in machine_specs],
        scores=scores,
    )


def score_application(
    application: WorkloadCharacteristics,
    machines: Sequence[MachineSpec],
    noise_sigma: float = 0.03,
    seed: int = 0,
) -> np.ndarray:
    """Simulated scores of one application of interest on the given machines.

    Used by the examples and the applications layer to obtain the "ground
    truth" an experiment compares predictions against, and to produce the
    measurements the user would collect on the predictive machines.
    """
    return np.array(
        [
            MachineSimulator(machine.config, noise_sigma=noise_sigma, seed=seed).score(application)
            for machine in machines
        ],
        dtype=float,
    )
