"""Cross-validation splitters.

The paper evaluates data transposition under three machine-split regimes:

* **processor-family cross-validation** (Section 6.2, Table 2): one family
  is the target set, all other families form the predictive set — 17
  predictive/target pairs in total;
* **temporal splits** (Section 6.3, Table 3): machines released in 2009 are
  the targets, machines released in 2008 / 2007 / earlier are the
  predictive set; and
* **limited predictive subsets** (Section 6.4, Table 4): a random subset of
  10 / 5 / 3 machines from the 2008 release year.

On top of every machine split, the benchmark dimension uses leave-one-out:
each benchmark in turn plays the application of interest while the other 28
are the "industry-standard benchmarks" (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.data.spec_dataset import SpecDataset

__all__ = [
    "MachineSplit",
    "family_cross_validation_splits",
    "temporal_split",
    "predictive_subset_split",
    "leave_one_benchmark_out",
]


@dataclass(frozen=True)
class MachineSplit:
    """One predictive/target division of the machine set."""

    name: str
    predictive_ids: tuple[str, ...]
    target_ids: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.predictive_ids:
            raise ValueError(f"split {self.name!r} has no predictive machines")
        if not self.target_ids:
            raise ValueError(f"split {self.name!r} has no target machines")
        overlap = set(self.predictive_ids) & set(self.target_ids)
        if overlap:
            raise ValueError(
                f"split {self.name!r} has overlapping predictive/target machines: {sorted(overlap)}"
            )

    @property
    def n_predictive(self) -> int:
        """Number of predictive machines."""
        return len(self.predictive_ids)

    @property
    def n_target(self) -> int:
        """Number of target machines."""
        return len(self.target_ids)


def family_cross_validation_splits(dataset: SpecDataset) -> list[MachineSplit]:
    """One split per processor family: that family is the target set.

    Mirrors Figure 5 / Section 6.2: "for a given set of predictive machines —
    a processor family in this study — we remove those machine types from the
    set of target machines."  Every family in turn becomes the *target*
    (unseen architecture); all other families are available as predictive
    machines.
    """
    families = dataset.families()
    splits: list[MachineSplit] = []
    for family, members in families.items():
        target_ids = tuple(machine.machine_id for machine in members)
        predictive_ids = tuple(
            machine.machine_id for machine in dataset.machines if machine.family != family
        )
        splits.append(
            MachineSplit(name=f"family:{family}", predictive_ids=predictive_ids, target_ids=target_ids)
        )
    return splits


def temporal_split(
    dataset: SpecDataset,
    target_year: int = 2009,
    predictive_years: Sequence[int] | None = None,
    predictive_before: int | None = None,
) -> MachineSplit:
    """Targets released in *target_year*, predictive machines from older years.

    Exactly one of *predictive_years* (an explicit list, e.g. ``[2008]``) or
    *predictive_before* (every machine released strictly before that year)
    must be given.
    """
    if (predictive_years is None) == (predictive_before is None):
        raise ValueError("specify exactly one of predictive_years or predictive_before")

    target_ids = tuple(
        machine.machine_id for machine in dataset.machines if machine.release_year == target_year
    )
    if predictive_years is not None:
        year_set = set(predictive_years)
        if target_year in year_set:
            raise ValueError("predictive years must not include the target year")
        predictive_ids = tuple(
            machine.machine_id
            for machine in dataset.machines
            if machine.release_year in year_set
        )
        label = ",".join(str(year) for year in sorted(year_set))
    else:
        if predictive_before > target_year:
            raise ValueError("predictive_before must not exceed the target year")
        predictive_ids = tuple(
            machine.machine_id
            for machine in dataset.machines
            if machine.release_year < predictive_before
        )
        label = f"pre-{predictive_before}"
    return MachineSplit(
        name=f"temporal:{label}->{target_year}",
        predictive_ids=predictive_ids,
        target_ids=target_ids,
    )


def predictive_subset_split(
    dataset: SpecDataset,
    subset_size: int,
    target_year: int = 2009,
    source_year: int = 2008,
    seed: int = 0,
) -> MachineSplit:
    """Targets from *target_year*, a random subset of *subset_size* predictive machines from *source_year*.

    Reproduces the Table 4 setup ("the predictive machines are a subset of
    the machines released in 2008", subset sizes 10/5/3).
    """
    if subset_size < 1:
        raise ValueError("subset_size must be >= 1")
    source_ids = [
        machine.machine_id for machine in dataset.machines if machine.release_year == source_year
    ]
    if subset_size > len(source_ids):
        raise ValueError(
            f"requested {subset_size} predictive machines but only {len(source_ids)} "
            f"were released in {source_year}"
        )
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(source_ids), size=subset_size, replace=False)
    predictive_ids = tuple(source_ids[i] for i in sorted(chosen))
    target_ids = tuple(
        machine.machine_id for machine in dataset.machines if machine.release_year == target_year
    )
    return MachineSplit(
        name=f"subset:{source_year}[{subset_size}]->{target_year}",
        predictive_ids=predictive_ids,
        target_ids=target_ids,
    )


def leave_one_benchmark_out(dataset: SpecDataset) -> Iterator[tuple[str, list[str]]]:
    """Yield (application of interest, remaining benchmark names) pairs.

    The benchmark-level leave-one-out loop of Figure 5: each benchmark in
    turn is treated as the application of interest and removed from the
    training suite.
    """
    names = dataset.benchmark_names
    for name in names:
        yield name, [other for other in names if other != name]
