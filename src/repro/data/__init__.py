"""Dataset layer: machine catalogue, benchmark suite, matrix and splits."""

from repro.data.benchmarks import (
    SPEC_CPU2006_BENCHMARKS,
    SPEC_FP_2006,
    SPEC_INT_2006,
    benchmark_by_name,
    benchmark_names,
)
from repro.data.machines import (
    NICKNAME_SPECS,
    PROCESSOR_FAMILIES,
    MachineSpec,
    build_machine_catalogue,
    machines_by_family,
    machines_by_year,
)
from repro.data.matrix import PerformanceMatrix
from repro.data.synthetic import generate_performance_matrix, score_application
from repro.data.spec_dataset import SpecDataset, build_default_dataset
from repro.data.splits import (
    MachineSplit,
    family_cross_validation_splits,
    leave_one_benchmark_out,
    predictive_subset_split,
    temporal_split,
)

__all__ = [
    "MachineSpec",
    "MachineSplit",
    "NICKNAME_SPECS",
    "PROCESSOR_FAMILIES",
    "PerformanceMatrix",
    "SPEC_CPU2006_BENCHMARKS",
    "SPEC_FP_2006",
    "SPEC_INT_2006",
    "SpecDataset",
    "benchmark_by_name",
    "benchmark_names",
    "build_default_dataset",
    "build_machine_catalogue",
    "family_cross_validation_splits",
    "generate_performance_matrix",
    "leave_one_benchmark_out",
    "machines_by_family",
    "machines_by_year",
    "predictive_subset_split",
    "score_application",
    "temporal_split",
]
