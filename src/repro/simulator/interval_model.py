"""Interval-analysis CPI model.

The model follows the classic interval decomposition of out-of-order
processor performance: a base component set by how much of the workload's
inherent ILP the machine's issue width and window can extract, plus additive
penalty components for branch mispredictions and for the memory hierarchy.
Floating-point heavy codes are additionally limited by the machine's FP
throughput, and vectorisable codes gain from wider SIMD units.  The
resulting CPI is deliberately simple — analytical, deterministic and cheap —
but it exhibits the interactions the paper's empirical models must capture:
non-linear sensitivity to cache capacity, clock frequency versus memory
latency trade-offs, and ISA-dependent instruction counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.branch import BranchPredictorModel
from repro.simulator.cache import CacheHierarchy
from repro.simulator.memory import MemoryModel
from repro.simulator.microarch import MicroarchConfig
from repro.simulator.workload import WorkloadCharacteristics

__all__ = ["CPIBreakdown", "IntervalModel"]


@dataclass(frozen=True)
class CPIBreakdown:
    """Per-component contribution to the cycles-per-instruction estimate."""

    base: float
    branch: float
    cache: float
    memory: float
    fp: float

    @property
    def total(self) -> float:
        """Total cycles per instruction."""
        return self.base + self.branch + self.cache + self.memory + self.fp

    def dominant_component(self) -> str:
        """Name of the largest CPI contributor (useful for diagnostics)."""
        contributions = {
            "base": self.base,
            "branch": self.branch,
            "cache": self.cache,
            "memory": self.memory,
            "fp": self.fp,
        }
        return max(contributions, key=contributions.get)


class IntervalModel:
    """Analytical CPI model for one machine configuration."""

    def __init__(self, machine: MicroarchConfig) -> None:
        self.machine = machine
        self.caches = CacheHierarchy(machine)
        self.branches = BranchPredictorModel(machine)
        self.memory = MemoryModel(machine)

    # ------------------------------------------------------------ components
    def base_cpi(self, workload: WorkloadCharacteristics) -> float:
        """Dispatch-limited CPI in the absence of miss events.

        The achievable IPC is the minimum of the workload's inherent ILP,
        the machine's issue width and a window term that grows with the
        re-order buffer (diminishing returns, square-root law).
        """
        window_ipc = 0.6 * (self.machine.rob_size / 32.0) ** 0.5 + 0.4
        achievable_ipc = min(workload.ilp, float(self.machine.issue_width), window_ipc * self.machine.issue_width * 0.75)
        achievable_ipc = max(achievable_ipc, 0.1)
        return 1.0 / achievable_ipc

    def fp_cpi(self, workload: WorkloadCharacteristics) -> float:
        """Extra cycles per instruction from finite FP/SIMD throughput."""
        if workload.fp_fraction <= 0.0:
            return 0.0
        simd_speedup = 1.0 + 0.35 * (self.machine.simd_width - 1) * workload.vectorizable_fraction
        fp_cost = workload.fp_fraction / (self.machine.fp_throughput * simd_speedup)
        # only the part exceeding the base issue capacity shows up as extra CPI
        return float(max(fp_cost - workload.fp_fraction, 0.0))

    #: Fraction of a lower-level cache hit's latency that is actually exposed
    #: as stall time; out-of-order execution overlaps most of an L2/L3 hit
    #: with independent work.
    CACHE_HIT_EXPOSED_FRACTION = 0.2

    def cache_cpi(self, workload: WorkloadCharacteristics) -> float:
        """Cycles per instruction spent in cache hits beyond the L1 pipeline."""
        profile = self.caches.access_profile(workload)
        cycles = 0.0
        for level, hit_fraction in profile:
            if level.name == "L1":
                # L1 hits are pipelined into the base CPI.
                continue
            cycles += hit_fraction * level.latency_cycles * self.CACHE_HIT_EXPOSED_FRACTION
        return float(workload.memory_fraction * cycles)

    def memory_cpi(self, workload: WorkloadCharacteristics) -> float:
        """Cycles per instruction spent waiting on DRAM."""
        miss_fraction = self.caches.memory_miss_fraction(workload)
        return self.memory.penalty_cycles_per_instruction(workload, miss_fraction)

    # ----------------------------------------------------------------- total
    def cpi_breakdown(self, workload: WorkloadCharacteristics) -> CPIBreakdown:
        """Full additive CPI decomposition for *workload* on this machine."""
        return CPIBreakdown(
            base=self.base_cpi(workload),
            branch=self.branches.penalty_cycles_per_instruction(workload),
            cache=self.cache_cpi(workload),
            memory=self.memory_cpi(workload),
            fp=self.fp_cpi(workload),
        )

    def cpi(self, workload: WorkloadCharacteristics) -> float:
        """Total cycles per instruction."""
        return self.cpi_breakdown(workload).total

    def runtime_seconds(self, workload: WorkloadCharacteristics) -> float:
        """Estimated runtime of the workload's reference input on this machine."""
        instructions = workload.dynamic_instructions * 1e9 * self.machine.isa_efficiency
        cycles = instructions * self.cpi(workload)
        return float(cycles / (self.machine.frequency_ghz * 1e9))
