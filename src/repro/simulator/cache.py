"""Cache-hierarchy miss model.

Miss rates follow the classic power-law ("square-root rule" generalised)
relationship between cache capacity and miss rate: for a workload with a
dominant working set of ``W`` bytes and locality exponent ``alpha``, a cache
of capacity ``C`` captures the working set fully when ``C >= W`` and misses
with probability ``(C / W) ** -alpha`` otherwise.  Each level filters the
accesses that missed in the level above, which yields the familiar
inclusive-hierarchy behaviour: small-footprint codes are served by L1/L2,
large-footprint outliers (mcf, lbm, leslie3d, cactusADM, libquantum with
streaming behaviour) hammer the last level and DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.microarch import MicroarchConfig
from repro.simulator.workload import WorkloadCharacteristics

__all__ = ["CacheLevel", "CacheHierarchy"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy."""

    name: str
    capacity_kb: int
    latency_cycles: float

    def __post_init__(self) -> None:
        if self.capacity_kb <= 0:
            raise ValueError("capacity_kb must be positive")
        if self.latency_cycles <= 0:
            raise ValueError("latency_cycles must be positive")

    #: Spatial-locality factor: even when the working set vastly exceeds the
    #: cache, consecutive accesses to the same line still hit, so the
    #: per-access miss rate saturates well below 1.
    SPATIAL_LOCALITY_FACTOR = 0.35

    def miss_rate(self, workload: WorkloadCharacteristics) -> float:
        """Fraction of accesses reaching this level that miss in it."""
        working_set_kb = workload.working_set_mb * 1024.0
        if self.capacity_kb >= working_set_kb:
            # Working set fits: only cold/conflict misses remain.
            return 0.003
        ratio = self.capacity_kb / working_set_kb
        captured = ratio**workload.locality_exponent
        miss = (1.0 - captured) * self.SPATIAL_LOCALITY_FACTOR
        # A small floor keeps the model away from exactly 0 (cold misses) and
        # the cap below 1 keeps streaming codes from looking pathological.
        return float(min(max(miss, 0.003), 0.95))


class CacheHierarchy:
    """L1/L2/L3 hierarchy derived from a machine configuration.

    Latencies scale mildly with capacity (bigger caches are slower), which
    is what creates the non-trivial trade-off between large-LLC server parts
    and fast-clocked desktop parts — the machine-similarity structure the
    paper's empirical models learn.
    """

    def __init__(self, machine: MicroarchConfig) -> None:
        self.machine = machine
        self.levels: list[CacheLevel] = [
            CacheLevel("L1", machine.l1_kb, latency_cycles=3.0 + machine.l1_kb / 32.0)
        ]
        if machine.l2_kb > 0:
            self.levels.append(
                CacheLevel("L2", machine.l2_kb, latency_cycles=10.0 + machine.l2_kb / 512.0)
            )
        if machine.l3_kb > 0:
            self.levels.append(
                CacheLevel("L3", machine.l3_kb, latency_cycles=25.0 + machine.l3_kb / 2048.0)
            )

    def access_profile(self, workload: WorkloadCharacteristics) -> list[tuple[CacheLevel, float]]:
        """Per-level fraction of all memory accesses that *hit* in that level.

        Returns a list of ``(level, hit_fraction)`` pairs; the remaining
        fraction (``memory_miss_fraction``) goes to DRAM.
        """
        profile: list[tuple[CacheLevel, float]] = []
        reaching = 1.0
        for level in self.levels:
            miss = level.miss_rate(workload)
            hit_fraction = reaching * (1.0 - miss)
            profile.append((level, hit_fraction))
            reaching *= miss
        return profile

    def memory_miss_fraction(self, workload: WorkloadCharacteristics) -> float:
        """Fraction of memory accesses that miss every cache level."""
        reaching = 1.0
        for level in self.levels:
            reaching *= level.miss_rate(workload)
        return reaching

    def average_hit_latency(self, workload: WorkloadCharacteristics) -> float:
        """Average latency (cycles) of accesses served by some cache level.

        Weighted by the per-level hit fractions; excludes DRAM accesses,
        which the :class:`repro.simulator.memory.MemoryModel` prices.
        """
        profile = self.access_profile(workload)
        served = sum(fraction for _, fraction in profile)
        if served <= 0.0:
            return self.levels[-1].latency_cycles
        weighted = sum(level.latency_cycles * fraction for level, fraction in profile)
        return weighted / served
