"""Machine-performance simulator substrate.

The paper evaluates data transposition on performance numbers published on
spec.org for 117 commercial machines (SPEC CPU2006 base speed ratios as of
December 2009).  Those submissions are not redistributable and cannot be
downloaded offline, so this package provides the substitute described in
DESIGN.md: a mechanistic, analytical performance model that turns

* a per-machine micro-architecture configuration
  (:class:`repro.simulator.microarch.MicroarchConfig`), and
* a per-benchmark workload characterisation
  (:class:`repro.simulator.workload.WorkloadCharacteristics`)

into a SPEC-like speed ratio via an interval-analysis CPI model:

``CPI = CPI_base(ILP, issue width) + branch penalty + cache/memory penalty``

with cache miss rates derived from power-law working-set curves, a
misprediction model for the branch penalty and a bandwidth/MLP-aware DRAM
model.  The simulator preserves the structural properties data transposition
relies on — machines in the same family behave alike, memory-bound outlier
benchmarks favour different machines than compute-bound ones, and the
benchmark-score/machine relationship is non-linear — while remaining fully
deterministic and laptop-fast.
"""

from repro.simulator.workload import WorkloadCharacteristics
from repro.simulator.microarch import MicroarchConfig, REFERENCE_MACHINE
from repro.simulator.cache import CacheHierarchy, CacheLevel
from repro.simulator.branch import BranchPredictorModel
from repro.simulator.memory import MemoryModel
from repro.simulator.interval_model import IntervalModel, CPIBreakdown
from repro.simulator.spec_score import MachineSimulator, spec_ratio

__all__ = [
    "BranchPredictorModel",
    "CPIBreakdown",
    "CacheHierarchy",
    "CacheLevel",
    "IntervalModel",
    "MachineSimulator",
    "MemoryModel",
    "MicroarchConfig",
    "REFERENCE_MACHINE",
    "WorkloadCharacteristics",
    "spec_ratio",
]
