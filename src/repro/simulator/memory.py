"""DRAM model.

Off-chip accesses cost the machine's DRAM latency, but out-of-order cores
overlap independent misses: the effective penalty is the raw latency divided
by the exploitable memory-level parallelism, which is limited both by the
workload (how many independent misses exist) and by the machine (how many
the re-order buffer can keep in flight).  A bandwidth term adds queueing
delay when the demanded bandwidth approaches what the memory system
sustains — this is what separates bandwidth-starved FSB-era Xeons from
integrated-memory-controller parts on streaming workloads such as lbm,
libquantum and leslie3d.
"""

from __future__ import annotations

from repro.simulator.microarch import MicroarchConfig
from repro.simulator.workload import WorkloadCharacteristics

__all__ = ["MemoryModel"]


class MemoryModel:
    """Latency/bandwidth model for accesses that miss the whole hierarchy."""

    #: Cache line size in bytes, used to convert miss rates into bandwidth.
    LINE_BYTES = 64

    def __init__(self, machine: MicroarchConfig) -> None:
        self.machine = machine

    def exploitable_mlp(self, workload: WorkloadCharacteristics) -> float:
        """Memory-level parallelism the machine can actually exploit.

        The workload offers ``memory_level_parallelism`` independent misses;
        the machine sustains roughly one outstanding miss per 32 ROB entries.
        """
        machine_limit = max(1.0, self.machine.rob_size / 32.0)
        return float(min(workload.memory_level_parallelism, machine_limit))

    def bandwidth_pressure(self, workload: WorkloadCharacteristics, miss_fraction: float) -> float:
        """Queueing multiplier >= 1 reflecting bandwidth saturation.

        Demanded bandwidth is estimated from the miss traffic at the
        machine's nominal IPC of 1; the multiplier grows smoothly as demand
        approaches the sustainable bandwidth.
        """
        misses_per_instruction = workload.memory_fraction * miss_fraction
        # bytes per second at 1 IPC: misses/instr * line size * freq (GHz -> 1e9 instr/s)
        demanded_gbs = misses_per_instruction * self.LINE_BYTES * self.machine.frequency_ghz
        utilisation = demanded_gbs / self.machine.mem_bandwidth_gbs
        # Queueing delay grows with utilisation but saturates: contention makes
        # a starved memory system a few times slower, not orders of magnitude.
        return float(1.0 + 3.0 * utilisation / (1.0 + utilisation))

    def penalty_cycles_per_instruction(
        self, workload: WorkloadCharacteristics, miss_fraction: float
    ) -> float:
        """Average DRAM stall cycles charged to every instruction."""
        if miss_fraction <= 0.0:
            return 0.0
        latency_cycles = self.machine.memory_latency_cycles()
        effective_latency = latency_cycles / self.exploitable_mlp(workload)
        effective_latency *= self.bandwidth_pressure(workload, miss_fraction)
        return float(workload.memory_fraction * miss_fraction * effective_latency)
