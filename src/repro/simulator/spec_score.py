"""SPEC-style speed ratios.

SPEC CPU2006 reports the *speed ratio* of a machine on a benchmark as the
reference machine's runtime divided by the machine's runtime.  The reference
runtimes come from the same interval model evaluated on the
:data:`repro.simulator.microarch.REFERENCE_MACHINE` configuration, so ratios
are dimensionless and comparable across benchmarks exactly as the published
``SPECint_base2006`` / ``SPECfp_base2006`` speed scores are.

:class:`MachineSimulator` bundles the interval model with optional
deterministic measurement noise.  The noise models run-to-run variation,
compiler differences between submissions and every other effect the
analytical model leaves out; it is drawn from a log-normal distribution
seeded per (machine, benchmark) pair so the full dataset is reproducible.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.simulator.interval_model import IntervalModel
from repro.simulator.microarch import REFERENCE_MACHINE, MicroarchConfig
from repro.simulator.workload import WorkloadCharacteristics

__all__ = ["spec_ratio", "MachineSimulator"]


def spec_ratio(machine: MicroarchConfig, workload: WorkloadCharacteristics) -> float:
    """Noise-free SPEC-style speed ratio of *machine* on *workload*."""
    reference_runtime = IntervalModel(REFERENCE_MACHINE).runtime_seconds(workload)
    machine_runtime = IntervalModel(machine).runtime_seconds(workload)
    return reference_runtime / machine_runtime


class MachineSimulator:
    """Produce (optionally noisy) SPEC-style scores for one machine.

    Parameters
    ----------
    machine:
        The machine configuration to simulate.
    noise_sigma:
        Standard deviation of the log-normal measurement noise; 0 disables
        noise entirely.  The default of 0.03 corresponds to the few-percent
        run-to-run variation typical of published SPEC submissions.
    seed:
        Base seed mixed with the machine and benchmark names so that every
        (machine, benchmark) cell gets its own reproducible noise draw.
    """

    def __init__(self, machine: MicroarchConfig, noise_sigma: float = 0.03, seed: int = 0) -> None:
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        self.machine = machine
        self.noise_sigma = float(noise_sigma)
        self.seed = int(seed)
        self._model = IntervalModel(machine)
        self._reference_cache: dict[str, float] = {}

    def _reference_runtime(self, workload: WorkloadCharacteristics) -> float:
        if workload.name not in self._reference_cache:
            self._reference_cache[workload.name] = IntervalModel(
                REFERENCE_MACHINE
            ).runtime_seconds(workload)
        return self._reference_cache[workload.name]

    def _noise_factor(self, workload: WorkloadCharacteristics) -> float:
        if self.noise_sigma == 0.0:
            return 1.0
        key = f"{self.seed}|{self.machine.name}|{workload.name}".encode()
        digest = hashlib.sha256(key).digest()
        cell_seed = int.from_bytes(digest[:8], "little")
        rng = np.random.default_rng(cell_seed)
        return float(np.exp(rng.normal(0.0, self.noise_sigma)))

    def score(self, workload: WorkloadCharacteristics) -> float:
        """SPEC-style speed ratio including measurement noise."""
        clean = self._reference_runtime(workload) / self._model.runtime_seconds(workload)
        return clean * self._noise_factor(workload)

    def score_suite(self, workloads: list[WorkloadCharacteristics]) -> np.ndarray:
        """Scores for a list of workloads, in order."""
        return np.array([self.score(workload) for workload in workloads], dtype=float)

    def cpi(self, workload: WorkloadCharacteristics) -> float:
        """Noise-free cycles-per-instruction estimate (diagnostics)."""
        return self._model.cpi(workload)
