"""Workload characterisation.

Each SPEC CPU2006 benchmark (and any application of interest) is described
by a small vector of microarchitecture-independent characteristics — the
same role the MICA characteristics play in Hoste et al. [4]: instruction
mix, inherent instruction-level parallelism, working-set size, branch
behaviour and memory-level parallelism.  The interval model in
:mod:`repro.simulator.interval_model` combines these with a machine
configuration to produce a cycles-per-instruction estimate, and the GA-kNN
baseline uses the same vector as its benchmark feature space.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

__all__ = ["WorkloadCharacteristics"]


@dataclass(frozen=True)
class WorkloadCharacteristics:
    """Microarchitecture-independent description of one workload.

    Attributes
    ----------
    name:
        Benchmark name, e.g. ``"leslie3d"``.
    domain:
        ``"int"`` or ``"fp"`` — the SPEC CPU2006 sub-suite the benchmark
        belongs to (the application of interest may use either).
    dynamic_instructions:
        Dynamic instruction count of the reference input, in billions.
    memory_fraction:
        Fraction of dynamic instructions that are loads or stores.
    branch_fraction:
        Fraction of dynamic instructions that are (conditional) branches.
    fp_fraction:
        Fraction of dynamic instructions that are floating-point operations.
    ilp:
        Inherent instruction-level parallelism: the IPC an idealised machine
        with infinite resources but realistic dependencies would achieve.
    working_set_mb:
        Size of the dominant working set in megabytes; drives the cache
        miss-rate curve.
    locality_exponent:
        Exponent of the power-law miss curve; larger means the miss rate
        falls faster as the cache grows (better locality).
    branch_entropy:
        Predictability of the branch stream in [0, 1]; 0 means perfectly
        predictable, 1 means essentially random.
    memory_level_parallelism:
        Average number of overlapping outstanding misses; higher values hide
        more memory latency.
    vectorizable_fraction:
        Fraction of the computation that profits from SIMD units.
    """

    name: str
    domain: str
    dynamic_instructions: float
    memory_fraction: float
    branch_fraction: float
    fp_fraction: float
    ilp: float
    working_set_mb: float
    locality_exponent: float
    branch_entropy: float
    memory_level_parallelism: float
    vectorizable_fraction: float = 0.0
    description: str = field(default="", compare=False)

    # names of the numeric fields exposed as the MICA-like feature vector
    FEATURE_NAMES = (
        "dynamic_instructions",
        "memory_fraction",
        "branch_fraction",
        "fp_fraction",
        "ilp",
        "working_set_mb",
        "locality_exponent",
        "branch_entropy",
        "memory_level_parallelism",
        "vectorizable_fraction",
    )

    def __post_init__(self) -> None:
        if self.domain not in {"int", "fp"}:
            raise ValueError(f"domain must be 'int' or 'fp', got {self.domain!r}")
        if self.dynamic_instructions <= 0:
            raise ValueError("dynamic_instructions must be positive")
        for fraction_name in ("memory_fraction", "branch_fraction", "fp_fraction",
                              "branch_entropy", "vectorizable_fraction"):
            value = getattr(self, fraction_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{fraction_name} must be in [0, 1], got {value}")
        if self.memory_fraction + self.branch_fraction > 1.0:
            raise ValueError("memory_fraction + branch_fraction cannot exceed 1")
        if self.ilp <= 0:
            raise ValueError("ilp must be positive")
        if self.working_set_mb <= 0:
            raise ValueError("working_set_mb must be positive")
        if self.locality_exponent <= 0:
            raise ValueError("locality_exponent must be positive")
        if self.memory_level_parallelism < 1.0:
            raise ValueError("memory_level_parallelism must be >= 1")

    #: Characteristics a MICA-style profiling tool can actually measure in a
    #: microarchitecture-independent way (instruction mix, inherent ILP,
    #: working-set size, branch predictability).  Deliberately *excludes* the
    #: memory-level-parallelism, locality-exponent and vectorisability
    #: parameters: those describe how the workload interacts with a memory
    #: system and a compiler, which profiling the binary alone cannot reveal.
    #: The GA-kNN baseline sees only this partial view — that information gap
    #: is precisely why workload-similarity methods mispredict outliers.
    MICA_FEATURE_NAMES = (
        "dynamic_instructions",
        "memory_fraction",
        "branch_fraction",
        "fp_fraction",
        "ilp",
        "log2_working_set_mb",
        "branch_entropy",
    )

    def as_feature_vector(self) -> np.ndarray:
        """Return the full numeric characteristics as a 1-D feature vector.

        This is the simulator's ground-truth description of the workload;
        use :meth:`mica_features` for the partial view available to
        profiling-based methods such as GA-kNN.
        """
        return np.array([getattr(self, name) for name in self.FEATURE_NAMES], dtype=float)

    def mica_features(self) -> np.ndarray:
        """Microarchitecture-independent characteristics as measured by profiling.

        The working-set size is reported on a log2 scale, as footprint
        estimation tools do, and only the :data:`MICA_FEATURE_NAMES` subset
        is visible (see that constant for the rationale).
        """
        values = []
        for name in self.MICA_FEATURE_NAMES:
            if name == "log2_working_set_mb":
                values.append(float(np.log2(self.working_set_mb)))
            else:
                values.append(float(getattr(self, name)))
        return np.array(values, dtype=float)

    def is_memory_bound(self, threshold_mb: float = 8.0) -> bool:
        """Heuristic flag: does the dominant working set exceed typical LLCs?"""
        return self.working_set_mb >= threshold_mb

    def with_name(self, name: str, description: str = "") -> "WorkloadCharacteristics":
        """Return a copy of these characteristics under a different name.

        Useful for constructing synthetic "applications of interest" that
        behave like perturbed versions of an existing benchmark.
        """
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values["name"] = name
        values["description"] = description or self.description
        return WorkloadCharacteristics(**values)
