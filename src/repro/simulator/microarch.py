"""Micro-architecture configuration.

Every commercial machine in the study is modelled by a small set of
parameters that the interval model consumes: clock frequency, superscalar
width, re-order buffer depth, the cache hierarchy sizes, memory latency and
bandwidth, branch-predictor quality and per-ISA efficiency factors.  The
values in :mod:`repro.data.machines` are set from public spec sheets of the
CPU nicknames listed in Table 1 of the paper; they do not need to be exact —
only the relative structure (which machines are alike, which resources
matter for which workloads) needs to be realistic for the reproduction's
conclusions to carry over.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MicroarchConfig", "REFERENCE_MACHINE"]


@dataclass(frozen=True)
class MicroarchConfig:
    """Parameters of one machine's micro-architecture.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"Intel Xeon Gainestown #1"``.
    isa:
        Instruction-set architecture family (``"x86"``, ``"power"``,
        ``"sparc"``, ``"ia64"``); used for the instruction-count expansion
        factor.
    frequency_ghz:
        Core clock frequency in GHz.
    issue_width:
        Maximum instructions issued per cycle.
    rob_size:
        Re-order buffer capacity (drives how much ILP/MLP can be extracted).
    pipeline_depth:
        Front-end depth in stages; sets the branch misprediction penalty.
    l1_kb / l2_kb / l3_kb:
        Per-core data cache capacities in KiB (``l3_kb`` may be 0).
    mem_latency_ns:
        Round-trip latency to DRAM in nanoseconds.
    mem_bandwidth_gbs:
        Sustainable memory bandwidth in GB/s.
    branch_predictor_quality:
        Quality factor in [0, 1]; 1 means a perfect predictor.
    fp_throughput:
        Relative floating-point issue throughput (1.0 = one FP op/cycle).
    simd_width:
        SIMD register width in 64-bit words (2 = SSE2, 4 = AVX-class).
    isa_efficiency:
        Multiplier on the dynamic instruction count relative to the x86
        baseline (RISC ISAs execute more, CISC fewer instructions for the
        same work).
    """

    name: str
    isa: str
    frequency_ghz: float
    issue_width: int
    rob_size: int
    pipeline_depth: int
    l1_kb: int
    l2_kb: int
    l3_kb: int
    mem_latency_ns: float
    mem_bandwidth_gbs: float
    branch_predictor_quality: float
    fp_throughput: float
    simd_width: int
    isa_efficiency: float

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError("frequency_ghz must be positive")
        if self.issue_width < 1:
            raise ValueError("issue_width must be >= 1")
        if self.rob_size < 1:
            raise ValueError("rob_size must be >= 1")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        for cache_name in ("l1_kb", "l2_kb", "l3_kb"):
            if getattr(self, cache_name) < 0:
                raise ValueError(f"{cache_name} must be non-negative")
        if self.l1_kb == 0:
            raise ValueError("a level-1 cache is required")
        if self.mem_latency_ns <= 0:
            raise ValueError("mem_latency_ns must be positive")
        if self.mem_bandwidth_gbs <= 0:
            raise ValueError("mem_bandwidth_gbs must be positive")
        if not 0.0 <= self.branch_predictor_quality <= 1.0:
            raise ValueError("branch_predictor_quality must be in [0, 1]")
        if self.fp_throughput <= 0:
            raise ValueError("fp_throughput must be positive")
        if self.simd_width < 1:
            raise ValueError("simd_width must be >= 1")
        if self.isa_efficiency <= 0:
            raise ValueError("isa_efficiency must be positive")

    def memory_latency_cycles(self) -> float:
        """DRAM round-trip latency expressed in core cycles."""
        return self.mem_latency_ns * self.frequency_ghz

    def total_cache_kb(self) -> int:
        """Total per-core cache capacity across all levels."""
        return self.l1_kb + self.l2_kb + self.l3_kb


# The SPEC CPU2006 reference machine is a Sun Ultra Enterprise 2 with a
# 296 MHz UltraSPARC II processor; all speed ratios are relative to it.  The
# parameters below model a narrow in-order machine of that era.
REFERENCE_MACHINE = MicroarchConfig(
    name="SUN Ultra5_10 296MHz reference",
    isa="sparc",
    frequency_ghz=0.296,
    issue_width=2,
    rob_size=16,
    pipeline_depth=9,
    l1_kb=16,
    l2_kb=2048,
    l3_kb=0,
    mem_latency_ns=250.0,
    mem_bandwidth_gbs=0.5,
    branch_predictor_quality=0.82,
    fp_throughput=0.5,
    simd_width=1,
    isa_efficiency=1.15,
)
