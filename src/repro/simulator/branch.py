"""Branch-predictor model.

The misprediction rate of a workload on a machine is the product of the
workload's inherent branch entropy (how hard its branch stream is to
predict) and the machine's predictor quality.  Each misprediction costs a
pipeline refill, so the penalty per instruction is::

    branch_fraction * misprediction_rate * pipeline_depth

which is the standard first-order interval-analysis term.
"""

from __future__ import annotations

from repro.simulator.microarch import MicroarchConfig
from repro.simulator.workload import WorkloadCharacteristics

__all__ = ["BranchPredictorModel"]


class BranchPredictorModel:
    """First-order branch misprediction cost model."""

    #: Even a random branch stream is predicted correctly about half the
    #: time by always-taken style fallbacks, so the worst-case rate is 0.5.
    MAX_MISPREDICTION_RATE = 0.5

    def __init__(self, machine: MicroarchConfig) -> None:
        self.machine = machine

    def misprediction_rate(self, workload: WorkloadCharacteristics) -> float:
        """Mispredictions per executed branch, in [0, 0.5]."""
        raw = workload.branch_entropy * (1.0 - self.machine.branch_predictor_quality) * 2.5
        return float(min(raw, self.MAX_MISPREDICTION_RATE))

    def penalty_cycles_per_instruction(self, workload: WorkloadCharacteristics) -> float:
        """Average pipeline-refill cycles charged to every instruction."""
        per_branch = self.misprediction_rate(workload) * self.machine.pipeline_depth
        return float(workload.branch_fraction * per_branch)
