"""Linear regression models.

The NNᵀ flavour of data transposition (Section 3.2.1 of the paper) fits a
*simple* linear regression — one predictive machine's scores as the single
regressor — for every (target machine, predictive machine) pair and keeps
the best-fitting model.  :class:`SimpleLinearRegression` implements exactly
that closed-form univariate fit; :class:`LinearRegression` and
:class:`RidgeRegression` provide the general multivariate versions used by
baselines and ablations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["SimpleLinearRegression", "LinearRegression", "RidgeRegression"]


class SimpleLinearRegression:
    """Univariate least-squares fit ``y = slope * x + intercept``.

    Exposes the residual sum of squares and R² so the NNᵀ predictor can pick
    the predictive machine whose scores best explain the target machine's
    scores.
    """

    def __init__(self) -> None:
        self.slope_: float | None = None
        self.intercept_: float | None = None
        self.r_squared_: float | None = None
        self.residual_sum_of_squares_: float | None = None

    def fit(self, x: Sequence[float], y: Sequence[float]) -> "SimpleLinearRegression":
        """Fit the line through the (x, y) observations by least squares."""
        xa = np.asarray(x, dtype=float)
        ya = np.asarray(y, dtype=float)
        if xa.ndim != 1 or ya.ndim != 1:
            raise ValueError("SimpleLinearRegression expects 1-D inputs")
        if xa.size != ya.size:
            raise ValueError(f"length mismatch: {xa.size} vs {ya.size}")
        if xa.size < 2:
            raise ValueError("need at least two observations to fit a line")
        x_mean = xa.mean()
        y_mean = ya.mean()
        sxx = float(((xa - x_mean) ** 2).sum())
        sxy = float(((xa - x_mean) * (ya - y_mean)).sum())
        if sxx == 0.0:
            # A constant regressor carries no information; predict the mean.
            self.slope_ = 0.0
            self.intercept_ = float(y_mean)
        else:
            self.slope_ = sxy / sxx
            self.intercept_ = float(y_mean - self.slope_ * x_mean)
        predictions = self.slope_ * xa + self.intercept_
        ss_res = float(((ya - predictions) ** 2).sum())
        ss_tot = float(((ya - y_mean) ** 2).sum())
        self.residual_sum_of_squares_ = ss_res
        self.r_squared_ = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
        return self

    def predict(self, x: Sequence[float] | float) -> np.ndarray | float:
        """Predict y for scalar or vector x."""
        if self.slope_ is None or self.intercept_ is None:
            raise RuntimeError("predict called before fit")
        if np.isscalar(x):
            return float(self.slope_ * float(x) + self.intercept_)
        xa = np.asarray(x, dtype=float)
        return self.slope_ * xa + self.intercept_


class LinearRegression:
    """Ordinary least-squares multivariate regression with intercept."""

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    @staticmethod
    def _design(features: np.ndarray, fit_intercept: bool) -> np.ndarray:
        if fit_intercept:
            ones = np.ones((features.shape[0], 1))
            return np.hstack([ones, features])
        return features

    def fit(self, features: Sequence[Sequence[float]], targets: Sequence[float]) -> "LinearRegression":
        """Fit coefficients by solving the least-squares normal equations."""
        matrix = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("features must be a 2-D array (samples, features)")
        if y.ndim != 1 or y.size != matrix.shape[0]:
            raise ValueError("targets must be 1-D with one entry per sample")
        design = self._design(matrix, self.fit_intercept)
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(solution[0])
            self.coef_ = solution[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = solution
        return self

    def predict(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        """Predict targets for new feature rows."""
        if self.coef_ is None:
            raise RuntimeError("predict called before fit")
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        return matrix @ self.coef_ + self.intercept_


class RidgeRegression(LinearRegression):
    """L2-regularised linear regression.

    Useful when the number of predictive machines approaches the number of
    benchmarks used for training (28 after leave-one-out), where plain OLS
    becomes ill-conditioned.
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        super().__init__(fit_intercept=fit_intercept)
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = float(alpha)

    def fit(self, features: Sequence[Sequence[float]], targets: Sequence[float]) -> "RidgeRegression":
        """Fit coefficients by solving the regularised normal equations."""
        matrix = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("features must be a 2-D array (samples, features)")
        if y.ndim != 1 or y.size != matrix.shape[0]:
            raise ValueError("targets must be 1-D with one entry per sample")
        design = self._design(matrix, self.fit_intercept)
        n_params = design.shape[1]
        penalty = self.alpha * np.eye(n_params)
        if self.fit_intercept:
            penalty[0, 0] = 0.0  # never shrink the intercept
        gram = design.T @ design + penalty
        solution = np.linalg.solve(gram, design.T @ y)
        if self.fit_intercept:
            self.intercept_ = float(solution[0])
            self.coef_ = solution[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = solution
        return self
