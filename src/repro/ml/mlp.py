"""Multi-layer perceptron regression.

The MLPᵀ flavour of data transposition (Section 3.2.2 of the paper) trains
"the WEKA v3 Multilayer Perceptron implementation with default settings".
WEKA is not available offline, so this module re-implements the same model
class in NumPy:

* a single hidden layer of sigmoid units (WEKA default layer spec ``'a'`` =
  (#attributes + #outputs) / 2 units),
* a linear output unit for regression,
* stochastic gradient descent with momentum (defaults: learning rate 0.3,
  momentum 0.2, 500 epochs), and
* attribute/target normalisation into [-1, 1] as WEKA does internally.

The implementation is deterministic given a seed so experiments are exactly
reproducible.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ml.preprocessing import MinMaxScaler

__all__ = ["MLPRegressor"]


def _sigmoid(values: np.ndarray) -> np.ndarray:
    # Clip to avoid overflow in exp for badly scaled inputs.
    return 1.0 / (1.0 + np.exp(-np.clip(values, -60.0, 60.0)))


class MLPRegressor:
    """Feed-forward neural network with one hidden sigmoid layer.

    Parameters
    ----------
    hidden_units:
        Number of hidden units.  ``None`` selects WEKA's automatic rule
        ``(n_features + 1) // 2`` at fit time (the ``'a'`` wildcard).
    learning_rate:
        SGD step size (WEKA default 0.3).
    momentum:
        Momentum coefficient applied to the previous weight update (WEKA
        default 0.2).
    epochs:
        Number of passes over the training set (WEKA default 500).
    normalize:
        Scale inputs and targets into [-1, 1] before training, as WEKA's
        MultilayerPerceptron does by default.
    seed:
        Seed for weight initialisation and sample shuffling.
    gradient_clip:
        Maximum magnitude of the back-propagated error signal per sample.
        Plain SGD with momentum is prone to divergence on tiny, collinear
        training sets, so the per-sample error is clipped before the
        gradients are formed.  Note the clip caps the error signal even when
        ``learning_rate`` is tuned down to compensate; raise this threshold
        (or set it very large) when sweeping learning rates.
    """

    #: Default maximum magnitude of the back-propagated error signal per sample.
    GRADIENT_CLIP = 2.0

    def __init__(
        self,
        hidden_units: int | None = None,
        learning_rate: float = 0.3,
        momentum: float = 0.2,
        epochs: int = 500,
        normalize: bool = True,
        seed: int = 0,
        gradient_clip: float = GRADIENT_CLIP,
    ) -> None:
        if hidden_units is not None and hidden_units < 1:
            raise ValueError("hidden_units must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if gradient_clip <= 0:
            raise ValueError("gradient_clip must be positive")
        self.hidden_units = hidden_units
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self.epochs = int(epochs)
        self.normalize = bool(normalize)
        self.seed = int(seed)
        self.gradient_clip = float(gradient_clip)

        self._w_hidden: np.ndarray | None = None
        self._b_hidden: np.ndarray | None = None
        self._w_output: np.ndarray | None = None
        self._b_output: float = 0.0
        self._x_scaler: MinMaxScaler | None = None
        self._y_scaler: MinMaxScaler | None = None
        self.training_loss_: list[float] = []

    # ------------------------------------------------------------------ fit
    def fit(self, features: Sequence[Sequence[float]], targets: Sequence[float]) -> "MLPRegressor":
        """Train the network on (features, targets) with SGD + momentum."""
        x = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float)
        if x.ndim != 2:
            raise ValueError("features must be a 2-D array (samples, features)")
        if y.ndim != 1 or y.size != x.shape[0]:
            raise ValueError("targets must be 1-D with one entry per sample")
        if x.shape[0] < 2:
            raise ValueError("need at least two training samples")

        if self.normalize:
            self._x_scaler = MinMaxScaler(feature_range=(-1.0, 1.0))
            self._y_scaler = MinMaxScaler(feature_range=(-1.0, 1.0))
            x = self._x_scaler.fit_transform(x)
            y = self._y_scaler.fit_transform(y.reshape(-1, 1)).ravel()
        else:
            self._x_scaler = None
            self._y_scaler = None

        n_samples, n_features = x.shape
        n_hidden = self.hidden_units or max(1, (n_features + 1) // 2)

        rng = np.random.default_rng(self.seed)
        self._w_hidden = rng.uniform(-0.5, 0.5, size=(n_features, n_hidden))
        self._b_hidden = rng.uniform(-0.5, 0.5, size=n_hidden)
        self._w_output = rng.uniform(-0.5, 0.5, size=n_hidden)
        self._b_output = float(rng.uniform(-0.5, 0.5))

        vel_w_hidden = np.zeros_like(self._w_hidden)
        vel_b_hidden = np.zeros_like(self._b_hidden)
        vel_w_output = np.zeros_like(self._w_output)
        vel_b_output = 0.0

        self.training_loss_ = []
        indices = np.arange(n_samples)
        for _ in range(self.epochs):
            rng.shuffle(indices)
            epoch_loss = 0.0
            for idx in indices:
                xi = x[idx]
                yi = y[idx]
                hidden_pre = xi @ self._w_hidden + self._b_hidden
                hidden_act = _sigmoid(hidden_pre)
                output = float(hidden_act @ self._w_output + self._b_output)

                # Clip the error signal so a few bad samples cannot blow up
                # the weights (plain SGD with momentum is otherwise prone to
                # divergence on tiny, collinear training sets).
                error = float(np.clip(output - yi, -self.gradient_clip, self.gradient_clip))
                epoch_loss += 0.5 * error * error

                grad_w_output = error * hidden_act
                grad_b_output = error
                delta_hidden = error * self._w_output * hidden_act * (1.0 - hidden_act)
                grad_w_hidden = np.outer(xi, delta_hidden)
                grad_b_hidden = delta_hidden

                vel_w_output = self.momentum * vel_w_output - self.learning_rate * grad_w_output
                vel_b_output = self.momentum * vel_b_output - self.learning_rate * grad_b_output
                vel_w_hidden = self.momentum * vel_w_hidden - self.learning_rate * grad_w_hidden
                vel_b_hidden = self.momentum * vel_b_hidden - self.learning_rate * grad_b_hidden

                self._w_output += vel_w_output
                self._b_output += vel_b_output
                self._w_hidden += vel_w_hidden
                self._b_hidden += vel_b_hidden
            self.training_loss_.append(epoch_loss / n_samples)
        return self

    # -------------------------------------------------------------- predict
    def _forward(self, x: np.ndarray) -> np.ndarray:
        assert self._w_hidden is not None and self._b_hidden is not None
        assert self._w_output is not None
        hidden = _sigmoid(x @ self._w_hidden + self._b_hidden)
        return hidden @ self._w_output + self._b_output

    def predict(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        """Predict targets for new feature rows."""
        if self._w_hidden is None:
            raise RuntimeError("predict called before fit")
        x = np.asarray(features, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if self._x_scaler is not None:
            x = self._x_scaler.transform(x)
        outputs = self._forward(x)
        if self._y_scaler is not None:
            outputs = self._y_scaler.inverse_transform(outputs.reshape(-1, 1)).ravel()
        return outputs

    @property
    def n_hidden_units(self) -> int:
        """Number of hidden units actually used (resolved after fit)."""
        if self._w_hidden is None:
            raise RuntimeError("model has not been fitted")
        return int(self._w_hidden.shape[1])
