"""Real-valued genetic algorithm.

Hoste et al. [4] learn how differences in microarchitecture-independent
workload characteristics translate into performance differences by running
a genetic algorithm over per-characteristic weights; the learned weights
parameterise the distance used by the k-nearest-neighbour predictor.  This
module provides the GA machinery: tournament selection, blend crossover,
Gaussian mutation and elitism, all on fixed-length real-valued genomes
constrained to a box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["GAConfig", "GeneticAlgorithm"]


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the genetic algorithm.

    The defaults are sized for the GA-kNN baseline: genomes of ~10-20 weight
    genes, a modest population and enough generations to converge on the
    small training sets used in the paper's cross-validation setup.
    """

    population_size: int = 40
    generations: int = 30
    crossover_rate: float = 0.9
    mutation_rate: float = 0.15
    mutation_scale: float = 0.25
    tournament_size: int = 3
    elitism: int = 2
    lower_bound: float = 0.0
    upper_bound: float = 1.0

    def validate(self) -> None:
        """Raise ValueError if any hyper-parameter is out of range."""
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if self.mutation_scale <= 0.0:
            raise ValueError("mutation_scale must be positive")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be >= 1")
        if self.elitism < 0 or self.elitism >= self.population_size:
            raise ValueError("elitism must be in [0, population_size)")
        if self.upper_bound <= self.lower_bound:
            raise ValueError("upper_bound must exceed lower_bound")


class GeneticAlgorithm:
    """Minimising GA over fixed-length real genomes in a box.

    Parameters
    ----------
    genome_length:
        Number of genes (one weight per workload characteristic in GA-kNN).
    fitness:
        Callable mapping a genome (1-D array) to a cost; lower is better.
    config:
        Hyper-parameters; defaults are suitable for GA-kNN.
    seed:
        Seed for the random generator so runs are reproducible.
    """

    def __init__(
        self,
        genome_length: int,
        fitness: Callable[[np.ndarray], float],
        config: GAConfig | None = None,
        seed: int = 0,
    ) -> None:
        if genome_length < 1:
            raise ValueError("genome_length must be >= 1")
        self.genome_length = int(genome_length)
        self.fitness = fitness
        self.config = config or GAConfig()
        self.config.validate()
        self._rng = np.random.default_rng(seed)
        self.best_genome_: np.ndarray | None = None
        self.best_fitness_: float = float("inf")
        self.history_: list[float] = []

    # --------------------------------------------------------------- helpers
    def _random_population(self) -> np.ndarray:
        cfg = self.config
        return self._rng.uniform(
            cfg.lower_bound,
            cfg.upper_bound,
            size=(cfg.population_size, self.genome_length),
        )

    def _tournament(self, fitnesses: np.ndarray) -> int:
        contenders = self._rng.integers(0, fitnesses.size, size=self.config.tournament_size)
        return int(contenders[np.argmin(fitnesses[contenders])])

    def _crossover(self, parent_a: np.ndarray, parent_b: np.ndarray) -> np.ndarray:
        # Blend (BLX-style) crossover: child genes drawn uniformly between parents.
        mix = self._rng.uniform(0.0, 1.0, size=self.genome_length)
        return mix * parent_a + (1.0 - mix) * parent_b

    def _mutate(self, genome: np.ndarray) -> np.ndarray:
        cfg = self.config
        mask = self._rng.uniform(size=self.genome_length) < cfg.mutation_rate
        noise = self._rng.normal(0.0, cfg.mutation_scale, size=self.genome_length)
        mutated = genome + mask * noise * (cfg.upper_bound - cfg.lower_bound)
        return np.clip(mutated, cfg.lower_bound, cfg.upper_bound)

    # ------------------------------------------------------------------- run
    def run(self) -> np.ndarray:
        """Evolve the population and return the best genome found."""
        cfg = self.config
        population = self._random_population()
        fitnesses = np.array([self.fitness(genome) for genome in population])
        self.history_ = []

        for _ in range(cfg.generations):
            best_idx = int(np.argmin(fitnesses))
            if fitnesses[best_idx] < self.best_fitness_:
                self.best_fitness_ = float(fitnesses[best_idx])
                self.best_genome_ = population[best_idx].copy()
            self.history_.append(self.best_fitness_)

            elite_order = np.argsort(fitnesses, kind="mergesort")[: cfg.elitism]
            next_population = [population[i].copy() for i in elite_order]

            while len(next_population) < cfg.population_size:
                parent_a = population[self._tournament(fitnesses)]
                parent_b = population[self._tournament(fitnesses)]
                if self._rng.uniform() < cfg.crossover_rate:
                    child = self._crossover(parent_a, parent_b)
                else:
                    child = parent_a.copy()
                next_population.append(self._mutate(child))

            population = np.asarray(next_population)
            fitnesses = np.array([self.fitness(genome) for genome in population])

        best_idx = int(np.argmin(fitnesses))
        if fitnesses[best_idx] < self.best_fitness_:
            self.best_fitness_ = float(fitnesses[best_idx])
            self.best_genome_ = population[best_idx].copy()
        self.history_.append(self.best_fitness_)
        assert self.best_genome_ is not None
        return self.best_genome_
