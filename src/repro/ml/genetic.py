"""Real-valued genetic algorithm.

Hoste et al. [4] learn how differences in microarchitecture-independent
workload characteristics translate into performance differences by running
a genetic algorithm over per-characteristic weights; the learned weights
parameterise the distance used by the k-nearest-neighbour predictor.  This
module provides the GA machinery: tournament selection, blend crossover,
Gaussian mutation and elitism, all on fixed-length real-valued genomes
constrained to a box.

Two drivers share that machinery:

* :class:`GeneticAlgorithm` — one independent optimisation run; and
* :class:`LockstepGeneticAlgorithm` — S independent optimisation problems
  evolved simultaneously on **one shared random stream**.  The batched
  GA-kNN path uses it for the 29 leave-one-out cells of a split: every cell
  historically ran its own identically-seeded :class:`GeneticAlgorithm`, so
  all cells consume the same random draws in the same order and only the
  fitness values (hence parent selection) differ.  The lockstep driver
  draws each random quantity once, applies it to all S populations with
  vectorised arithmetic, and evaluates fitness as one stacked call —
  bit-identical per problem to S sequential runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["GAConfig", "GeneticAlgorithm", "LockstepGeneticAlgorithm"]


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the genetic algorithm.

    The defaults are sized for the GA-kNN baseline: genomes of ~10-20 weight
    genes, a modest population and enough generations to converge on the
    small training sets used in the paper's cross-validation setup.
    """

    population_size: int = 40
    generations: int = 30
    crossover_rate: float = 0.9
    mutation_rate: float = 0.15
    mutation_scale: float = 0.25
    tournament_size: int = 3
    elitism: int = 2
    lower_bound: float = 0.0
    upper_bound: float = 1.0

    def validate(self) -> None:
        """Raise ValueError if any hyper-parameter is out of range."""
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if self.mutation_scale <= 0.0:
            raise ValueError("mutation_scale must be positive")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be >= 1")
        if self.elitism < 0 or self.elitism >= self.population_size:
            raise ValueError("elitism must be in [0, population_size)")
        if self.upper_bound <= self.lower_bound:
            raise ValueError("upper_bound must exceed lower_bound")


class GeneticAlgorithm:
    """Minimising GA over fixed-length real genomes in a box.

    Parameters
    ----------
    genome_length:
        Number of genes (one weight per workload characteristic in GA-kNN).
    fitness:
        Callable mapping a genome (1-D array) to a cost; lower is better.
    config:
        Hyper-parameters; defaults are suitable for GA-kNN.
    seed:
        Seed for the random generator so runs are reproducible.
    """

    def __init__(
        self,
        genome_length: int,
        fitness: Callable[[np.ndarray], float],
        config: GAConfig | None = None,
        seed: int = 0,
    ) -> None:
        if genome_length < 1:
            raise ValueError("genome_length must be >= 1")
        self.genome_length = int(genome_length)
        self.fitness = fitness
        self.config = config or GAConfig()
        self.config.validate()
        self._rng = np.random.default_rng(seed)
        self.best_genome_: np.ndarray | None = None
        self.best_fitness_: float = float("inf")
        self.history_: list[float] = []

    # --------------------------------------------------------------- helpers
    def _random_population(self) -> np.ndarray:
        cfg = self.config
        return self._rng.uniform(
            cfg.lower_bound,
            cfg.upper_bound,
            size=(cfg.population_size, self.genome_length),
        )

    def _tournament(self, fitnesses: np.ndarray) -> int:
        contenders = self._rng.integers(0, fitnesses.size, size=self.config.tournament_size)
        return int(contenders[np.argmin(fitnesses[contenders])])

    def _crossover(self, parent_a: np.ndarray, parent_b: np.ndarray) -> np.ndarray:
        # Blend (BLX-style) crossover: child genes drawn uniformly between parents.
        mix = self._rng.uniform(0.0, 1.0, size=self.genome_length)
        return mix * parent_a + (1.0 - mix) * parent_b

    def _mutate(self, genome: np.ndarray) -> np.ndarray:
        cfg = self.config
        mask = self._rng.uniform(size=self.genome_length) < cfg.mutation_rate
        noise = self._rng.normal(0.0, cfg.mutation_scale, size=self.genome_length)
        mutated = genome + mask * noise * (cfg.upper_bound - cfg.lower_bound)
        return np.clip(mutated, cfg.lower_bound, cfg.upper_bound)

    # ------------------------------------------------------------------- run
    def run(self) -> np.ndarray:
        """Evolve the population and return the best genome found."""
        cfg = self.config
        population = self._random_population()
        fitnesses = np.array([self.fitness(genome) for genome in population])
        self.history_ = []

        for _ in range(cfg.generations):
            best_idx = int(np.argmin(fitnesses))
            if fitnesses[best_idx] < self.best_fitness_:
                self.best_fitness_ = float(fitnesses[best_idx])
                self.best_genome_ = population[best_idx].copy()
            self.history_.append(self.best_fitness_)

            elite_order = np.argsort(fitnesses, kind="mergesort")[: cfg.elitism]
            next_population = [population[i].copy() for i in elite_order]

            while len(next_population) < cfg.population_size:
                parent_a = population[self._tournament(fitnesses)]
                parent_b = population[self._tournament(fitnesses)]
                if self._rng.uniform() < cfg.crossover_rate:
                    child = self._crossover(parent_a, parent_b)
                else:
                    child = parent_a.copy()
                next_population.append(self._mutate(child))

            population = np.asarray(next_population)
            fitnesses = np.array([self.fitness(genome) for genome in population])

        best_idx = int(np.argmin(fitnesses))
        if fitnesses[best_idx] < self.best_fitness_:
            self.best_fitness_ = float(fitnesses[best_idx])
            self.best_genome_ = population[best_idx].copy()
        self.history_.append(self.best_fitness_)
        assert self.best_genome_ is not None
        return self.best_genome_


class LockstepGeneticAlgorithm:
    """Evolve S independent GA problems in lockstep on one random stream.

    Equivalent to running :class:`GeneticAlgorithm` S times with the same
    seed but a different fitness function each time: the sequential runs
    all draw the identical random sequence (populations, tournaments,
    crossover mixes, mutations — none of the draw *counts* depend on
    fitness), so one shared stream reproduces every run bit for bit while
    the per-problem arithmetic is vectorised over a leading problem axis.

    Elites are copied verbatim between generations, so their fitness is
    reused from the previous evaluation instead of recomputed — the values
    are identical (fitness is deterministic), only the redundant work is
    deduplicated.

    Parameters
    ----------
    n_problems:
        Number of independent problems S evolved together.
    genome_length:
        Number of genes per genome (shared by all problems).
    fitness:
        Callable mapping a stacked ``(S, pop, genes)`` population block to
        ``(S, pop)`` costs; lower is better.  Each problem's column must
        equal what the sequential fitness would return for that genome.
    config / seed:
        As for :class:`GeneticAlgorithm`.
    """

    def __init__(
        self,
        n_problems: int,
        genome_length: int,
        fitness: Callable[[np.ndarray], np.ndarray],
        config: GAConfig | None = None,
        seed: int = 0,
    ) -> None:
        if n_problems < 1:
            raise ValueError("n_problems must be >= 1")
        if genome_length < 1:
            raise ValueError("genome_length must be >= 1")
        self.n_problems = int(n_problems)
        self.genome_length = int(genome_length)
        self.fitness = fitness
        self.config = config or GAConfig()
        self.config.validate()
        self._rng = np.random.default_rng(seed)
        self.best_genomes_: np.ndarray | None = None
        self.best_fitnesses_: np.ndarray | None = None
        self.history_: list[np.ndarray] = []

    # --------------------------------------------------------------- helpers
    def _evaluate(self, block: np.ndarray) -> np.ndarray:
        values = np.asarray(self.fitness(block), dtype=float)
        if values.shape != block.shape[:2]:
            raise ValueError(
                f"stacked fitness returned shape {values.shape}, "
                f"expected {block.shape[:2]}"
            )
        return values

    def _draw_breeding_plan(
        self, n_children: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """All random draws for one generation's children, in stream order.

        Returns ``(contenders, crossed, mix, mutation)`` where *contenders*
        is ``(children, 2, tournament)`` parent-candidate indices, *crossed*
        flags which children blend both parents, *mix* holds the blend
        coefficients (rows of un-crossed children are unused), and
        *mutation* is the ``mask * noise`` perturbation per child.  The
        draws happen child by child in exactly the order the sequential
        loop consumes them, so the shared stream stays aligned; only the
        arithmetic that *applies* them is vectorised by the caller.
        """
        cfg = self.config
        rng = self._rng
        genes = self.genome_length
        contenders = np.empty((n_children, 2, cfg.tournament_size), dtype=np.intp)
        crossed = np.empty(n_children, dtype=bool)
        mix = np.empty((n_children, genes))
        mutation = np.empty((n_children, genes))
        for child in range(n_children):
            contenders[child, 0] = rng.integers(
                0, cfg.population_size, size=cfg.tournament_size
            )
            contenders[child, 1] = rng.integers(
                0, cfg.population_size, size=cfg.tournament_size
            )
            crossed[child] = rng.uniform() < cfg.crossover_rate
            if crossed[child]:
                mix[child] = rng.uniform(0.0, 1.0, size=genes)
            else:
                # No draw for un-crossed children (stream alignment); the
                # zero fill is arithmetic padding np.where discards.
                mix[child] = 0.0
            mask = rng.uniform(size=genes) < cfg.mutation_rate
            noise = rng.normal(0.0, cfg.mutation_scale, size=genes)
            mutation[child] = mask * noise
        return contenders, crossed, mix, mutation

    # ------------------------------------------------------------------- run
    def run(self) -> np.ndarray:
        """Evolve all problems and return the ``(S, genes)`` best genomes."""
        cfg = self.config
        rng = self._rng
        n_problems = self.n_problems
        pop_size = cfg.population_size
        problem_index = np.arange(n_problems)
        span = cfg.upper_bound - cfg.lower_bound

        # All problems start from the same seed, hence the same population.
        population = np.broadcast_to(
            rng.uniform(
                cfg.lower_bound, cfg.upper_bound, size=(pop_size, self.genome_length)
            ),
            (n_problems, pop_size, self.genome_length),
        ).copy()
        fitnesses = self._evaluate(population)
        best_fitness = np.full(n_problems, np.inf)
        best_genome = np.empty((n_problems, self.genome_length))
        self.history_ = []

        for _ in range(cfg.generations):
            best_idx = np.argmin(fitnesses, axis=1)
            generation_best = fitnesses[problem_index, best_idx]
            improved = generation_best < best_fitness
            best_fitness[improved] = generation_best[improved]
            best_genome[improved] = population[improved, best_idx[improved]]
            self.history_.append(best_fitness.copy())

            elite_order = np.argsort(fitnesses, axis=1, kind="mergesort")[
                :, : cfg.elitism
            ]
            next_population = np.empty_like(population)
            next_fitnesses = np.empty_like(fitnesses)
            next_population[:, : cfg.elitism] = np.take_along_axis(
                population, elite_order[:, :, None], axis=1
            )
            next_fitnesses[:, : cfg.elitism] = np.take_along_axis(
                fitnesses, elite_order, axis=1
            )

            # Draw child by child (stream order), apply vectorised: every
            # elementwise step below reproduces the sequential per-child
            # arithmetic, just over a (problems, children, genes) block.
            n_children = pop_size - cfg.elitism
            contenders, crossed, mix, mutation = self._draw_breeding_plan(n_children)
            # np.argmin keeps the first minimum, matching the sequential
            # ``contenders[np.argmin(fitnesses[contenders])]`` tie-breaking.
            winner = np.argmin(fitnesses[:, contenders], axis=-1)  # (S, children, 2)
            parent_idx = np.take_along_axis(
                np.broadcast_to(contenders, winner.shape + (cfg.tournament_size,)),
                winner[..., None],
                axis=-1,
            )[..., 0]
            parent_a = population[problem_index[:, None], parent_idx[:, :, 0]]
            parent_b = population[problem_index[:, None], parent_idx[:, :, 1]]
            children = np.where(
                crossed[None, :, None],
                mix[None] * parent_a + (1.0 - mix[None]) * parent_b,
                parent_a,
            )
            children += mutation[None] * span
            np.clip(children, cfg.lower_bound, cfg.upper_bound, out=children)
            next_population[:, cfg.elitism :] = children

            population = next_population
            # Evaluate only the bred children; elite fitnesses carry over.
            next_fitnesses[:, cfg.elitism :] = self._evaluate(
                population[:, cfg.elitism :]
            )
            fitnesses = next_fitnesses

        best_idx = np.argmin(fitnesses, axis=1)
        final_best = fitnesses[problem_index, best_idx]
        improved = final_best < best_fitness
        best_fitness[improved] = final_best[improved]
        best_genome[improved] = population[improved, best_idx[improved]]
        self.history_.append(best_fitness.copy())

        self.best_genomes_ = best_genome
        self.best_fitnesses_ = best_fitness
        return best_genome
