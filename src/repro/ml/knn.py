"""k-nearest-neighbour regression.

The GA-kNN baseline (Hoste et al. [4]) predicts the performance of the
application of interest on a target machine as a (distance-weighted)
average of the performance of its k = 10 most similar benchmarks on that
machine, where similarity is a weighted Euclidean distance in the
microarchitecture-independent characteristic space.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["KNNRegressor"]


class KNNRegressor:
    """Weighted k-nearest-neighbour regression.

    Parameters
    ----------
    k:
        Number of neighbours (the paper uses k = 10 for GA-kNN).
    weighting:
        ``"uniform"`` averages the k neighbour targets; ``"distance"``
        weights each neighbour by the inverse of its distance, which is what
        makes predictions degrade gracefully when the query point is far
        from every training point.
    feature_weights:
        Optional non-negative per-feature weights applied inside the
        Euclidean distance (the quantity the genetic algorithm optimises).
    """

    def __init__(
        self,
        k: int = 10,
        weighting: str = "distance",
        feature_weights: Sequence[float] | None = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if weighting not in {"uniform", "distance"}:
            raise ValueError("weighting must be 'uniform' or 'distance'")
        self.k = int(k)
        self.weighting = weighting
        self.feature_weights = (
            None if feature_weights is None else np.asarray(feature_weights, dtype=float)
        )
        if self.feature_weights is not None and np.any(self.feature_weights < 0):
            raise ValueError("feature weights must be non-negative")
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, features: Sequence[Sequence[float]], targets: Sequence[float]) -> "KNNRegressor":
        """Store the training points (kNN is a lazy learner)."""
        x = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float)
        if x.ndim != 2:
            raise ValueError("features must be a 2-D array (samples, features)")
        if y.ndim != 1 or y.size != x.shape[0]:
            raise ValueError("targets must be 1-D with one entry per sample")
        if self.feature_weights is not None and self.feature_weights.size != x.shape[1]:
            raise ValueError("feature_weights length must match the number of features")
        self._x = x
        self._y = y
        return self

    def _distances(self, query: np.ndarray) -> np.ndarray:
        assert self._x is not None
        diff = self._x - query
        if self.feature_weights is not None:
            sq = (self.feature_weights * diff**2).sum(axis=1)
        else:
            sq = (diff**2).sum(axis=1)
        return np.sqrt(np.clip(sq, 0.0, None))

    def predict_one(self, query: Sequence[float]) -> float:
        """Predict the target value for a single query point."""
        if self._x is None or self._y is None:
            raise RuntimeError("predict called before fit")
        q = np.asarray(query, dtype=float)
        if q.shape != (self._x.shape[1],):
            raise ValueError(
                f"query has {q.shape} features, expected ({self._x.shape[1]},)"
            )
        distances = self._distances(q)
        k = min(self.k, distances.size)
        neighbour_idx = np.argsort(distances, kind="mergesort")[:k]
        neighbour_targets = self._y[neighbour_idx]
        if self.weighting == "uniform":
            return float(neighbour_targets.mean())
        neighbour_dist = distances[neighbour_idx]
        if np.any(neighbour_dist == 0.0):
            # Exact matches dominate: average the targets of all exact matches.
            exact = neighbour_targets[neighbour_dist == 0.0]
            return float(exact.mean())
        weights = 1.0 / neighbour_dist
        return float((weights * neighbour_targets).sum() / weights.sum())

    def predict(self, queries: Sequence[Sequence[float]]) -> np.ndarray:
        """Predict target values for each query row."""
        matrix = np.asarray(queries, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        return np.array([self.predict_one(row) for row in matrix])

    def kneighbors(self, query: Sequence[float], k: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Return (indices, distances) of the *k* nearest training points."""
        if self._x is None:
            raise RuntimeError("kneighbors called before fit")
        q = np.asarray(query, dtype=float)
        distances = self._distances(q)
        count = min(k or self.k, distances.size)
        idx = np.argsort(distances, kind="mergesort")[:count]
        return idx, distances[idx]
