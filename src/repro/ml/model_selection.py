"""Model-selection helpers: data splitting and grid search.

The paper's evaluation is built on two cross-validation ideas — removing the
target processor family from the training data and leaving one benchmark out
as the application of interest.  Those domain-specific splitters live in
:mod:`repro.data.splits`; this module provides the generic machinery
(shuffled train/test split, K-fold indices, exhaustive grid search) used by
the ablation benches and by hyper-parameter sanity checks in the tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["train_test_split", "KFold", "GridSearch"]


def train_test_split(
    n_samples: int, test_fraction: float = 0.25, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Return shuffled (train_indices, test_indices) for *n_samples* items."""
    if n_samples < 2:
        raise ValueError("need at least two samples to split")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(n_samples)
    n_test = max(1, int(round(n_samples * test_fraction)))
    n_test = min(n_test, n_samples - 1)
    return permutation[n_test:], permutation[:n_test]


class KFold:
    """Deterministic K-fold index generator."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: int = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = int(n_splits)
        self.shuffle = bool(shuffle)
        self.seed = int(seed)

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) pairs covering all samples."""
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.seed)
            rng.shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train_idx, test_idx


@dataclass
class GridSearchResult:
    """Best hyper-parameters found by :class:`GridSearch` and all scores."""

    best_params: dict
    best_score: float
    all_scores: list[tuple[dict, float]]


class GridSearch:
    """Exhaustive search over a hyper-parameter grid.

    Parameters
    ----------
    evaluate:
        Callable mapping a parameter dict to a scalar score.
    param_grid:
        Mapping from parameter name to the candidate values to try.
    maximize:
        Whether larger scores are better (e.g. R²) or smaller (e.g. error).
    """

    def __init__(
        self,
        evaluate: Callable[[Mapping[str, object]], float],
        param_grid: Mapping[str, Sequence[object]],
        maximize: bool = True,
    ) -> None:
        if not param_grid:
            raise ValueError("param_grid must contain at least one parameter")
        self.evaluate = evaluate
        self.param_grid = {key: list(values) for key, values in param_grid.items()}
        for key, values in self.param_grid.items():
            if not values:
                raise ValueError(f"parameter {key!r} has no candidate values")
        self.maximize = bool(maximize)

    def run(self) -> GridSearchResult:
        """Evaluate every grid point and return the best configuration."""
        names = list(self.param_grid)
        combos = itertools.product(*(self.param_grid[name] for name in names))
        all_scores: list[tuple[dict, float]] = []
        best_params: dict | None = None
        best_score = -np.inf if self.maximize else np.inf
        for combo in combos:
            params = dict(zip(names, combo))
            score = float(self.evaluate(params))
            all_scores.append((params, score))
            better = score > best_score if self.maximize else score < best_score
            if better:
                best_score = score
                best_params = params
        assert best_params is not None
        return GridSearchResult(best_params=best_params, best_score=best_score, all_scores=all_scores)
