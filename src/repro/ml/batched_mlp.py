"""Stacked-network multi-layer perceptron training.

The leave-one-out evaluation trains one :class:`repro.ml.mlp.MLPRegressor`
per application of interest, and within a machine split every one of those
networks shares the same shape (same number of predictive-machine samples,
same number of training-benchmark features), the same hyper-parameters and
the same seed.  :class:`BatchedMLPRegressor` exploits that: it stacks the
weights of N independent networks into ``(N, features, hidden)`` tensors and
replaces the per-sample scalar updates with batched matmuls over the network
axis, so all N networks advance through SGD together in one pass.

Numerical equivalence
---------------------
The batched pass reproduces the sequential implementation's arithmetic:

* weight initialisation draws the same ``default_rng(seed)`` stream once and
  broadcasts it across networks — exactly what N sequential fits with the
  same seed would each draw;
* the per-epoch shuffle order comes from the same stream, shared by all
  networks, again matching N identically-seeded sequential fits; and
* the forward/backward contractions use ``np.matmul`` on stacked operands,
  which performs the same per-network reductions as the sequential ``@``.

The equivalence suite in ``tests/test_batched_engine.py`` asserts agreement
with :class:`~repro.ml.mlp.MLPRegressor` to ``rtol=1e-10`` (in practice the
two paths agree to the last few ulps even after 500 epochs).

Array backends
--------------
The SGD inner loop is a backend kernel
(:meth:`repro.core.backends.ArrayBackend.mlp_sgd`): the default NumPy
backend runs the historical loop verbatim (bit-identical), while
alternative backends (``backend="torch"`` or ``REPRO_BACKEND=torch``) may
trade bit-exactness for their own kernels.  All RNG draws — weight
initialisation and the per-epoch shuffle orders — happen here, outside the
kernel, so the random stream is backend-independent.
"""

from __future__ import annotations

import numpy as np

from repro.ml.mlp import MLPRegressor, _sigmoid

__all__ = ["BatchedMLPRegressor"]


class BatchedMLPRegressor:
    """Train N independent single-hidden-layer MLPs as one stacked tensor pass.

    All networks share the hyper-parameters and seed below (the batched
    cross-validation engine trains one network per application of interest,
    all configured identically); only the training data differs per network.
    Parameters match :class:`repro.ml.mlp.MLPRegressor`, plus ``backend`` —
    an :class:`~repro.core.backends.ArrayBackend` name or instance for the
    SGD kernel (``None`` resolves via ``REPRO_BACKEND``, default NumPy).
    """

    def __init__(
        self,
        hidden_units: int | None = None,
        learning_rate: float = 0.3,
        momentum: float = 0.2,
        epochs: int = 500,
        normalize: bool = True,
        seed: int = 0,
        gradient_clip: float = MLPRegressor.GRADIENT_CLIP,
        backend: "str | object | None" = None,
    ) -> None:
        if hidden_units is not None and hidden_units < 1:
            raise ValueError("hidden_units must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if gradient_clip <= 0:
            raise ValueError("gradient_clip must be positive")
        self.hidden_units = hidden_units
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self.epochs = int(epochs)
        self.normalize = bool(normalize)
        self.seed = int(seed)
        self.gradient_clip = float(gradient_clip)
        self.backend = backend

        self._w_hidden: np.ndarray | None = None  # (N, F, H)
        self._b_hidden: np.ndarray | None = None  # (N, H)
        self._w_output: np.ndarray | None = None  # (N, H)
        self._b_output: np.ndarray | None = None  # (N,)
        self._x_min: np.ndarray | None = None
        self._x_span: np.ndarray | None = None
        self._y_min: np.ndarray | None = None
        self._y_span: np.ndarray | None = None

    # ------------------------------------------------------------------ fit
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "BatchedMLPRegressor":
        """Train all networks on ``(N, samples, features)`` / ``(N, samples)``."""
        x = np.ascontiguousarray(features, dtype=float)
        y = np.ascontiguousarray(targets, dtype=float)
        if x.ndim != 3:
            raise ValueError("features must be a 3-D array (networks, samples, features)")
        if y.ndim != 2 or y.shape != x.shape[:2]:
            raise ValueError("targets must be 2-D (networks, samples) matching the features")
        n_networks, n_samples, n_features = x.shape
        if n_networks < 1:
            raise ValueError("need at least one network")
        if n_samples < 2:
            raise ValueError("need at least two training samples")

        if self.normalize:
            # Per-network [-1, 1] min-max scaling, replicating MinMaxScaler:
            # zero-span features are shifted but not scaled.
            self._x_min = x.min(axis=1, keepdims=True)
            x_span = x.max(axis=1, keepdims=True) - self._x_min
            x_span[x_span == 0.0] = 1.0
            self._x_span = x_span
            x = ((x - self._x_min) / x_span) * 2.0 + -1.0
            self._y_min = y.min(axis=1, keepdims=True)
            y_span = y.max(axis=1, keepdims=True) - self._y_min
            y_span[y_span == 0.0] = 1.0
            self._y_span = y_span
            y = ((y - self._y_min) / y_span) * 2.0 + -1.0
        else:
            self._x_min = self._x_span = None
            self._y_min = self._y_span = None

        n_hidden = self.hidden_units or max(1, (n_features + 1) // 2)

        # One RNG stream, drawn exactly as a single sequential fit would draw
        # it, then broadcast: N identically-seeded sequential fits all see
        # these same initial weights and the same per-epoch shuffle orders.
        rng = np.random.default_rng(self.seed)
        # Explicit copies: broadcast_to returns a read-only view, and for a
        # single network ascontiguousarray would pass it through unchanged,
        # breaking the in-place SGD updates below.
        w_hidden = np.broadcast_to(
            rng.uniform(-0.5, 0.5, size=(n_features, n_hidden)),
            (n_networks, n_features, n_hidden),
        ).copy()
        b_hidden = np.broadcast_to(
            rng.uniform(-0.5, 0.5, size=n_hidden), (n_networks, n_hidden)
        ).copy()
        w_output = np.broadcast_to(
            rng.uniform(-0.5, 0.5, size=n_hidden), (n_networks, n_hidden)
        ).copy()
        b_output = np.full(n_networks, float(rng.uniform(-0.5, 0.5)))

        # Sample-major copies so each inner-loop step reads a contiguous
        # (N, ...) block without a per-sample gather.
        x_samples = np.ascontiguousarray(x.transpose(1, 0, 2))      # (S, N, F)
        y_samples = np.ascontiguousarray(y.T)                       # (S, N)

        # Per-epoch shuffle orders come from the same stream, after the
        # weight draws, exactly as the in-loop shuffles did — precomputing
        # them keeps all randomness out of the backend kernel.
        indices = np.arange(n_samples)
        shuffle_orders = np.empty((self.epochs, n_samples), dtype=np.intp)
        for epoch in range(self.epochs):
            rng.shuffle(indices)
            shuffle_orders[epoch] = indices

        from repro.core.backends import resolve_backend

        w_hidden, b_hidden, w_output, b_output = resolve_backend(self.backend).mlp_sgd(
            x_samples,
            y_samples,
            w_hidden,
            b_hidden,
            w_output,
            b_output,
            shuffle_orders,
            self.learning_rate,
            self.momentum,
            self.gradient_clip,
        )

        self._w_hidden = w_hidden
        self._b_hidden = b_hidden
        self._w_output = w_output
        self._b_output = b_output
        return self

    # -------------------------------------------------------------- predict
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict ``(N, rows)`` targets for ``(N, rows, features)`` inputs."""
        if self._w_hidden is None:
            raise RuntimeError("predict called before fit")
        x = np.ascontiguousarray(features, dtype=float)
        if x.ndim != 3 or x.shape[0] != self._w_hidden.shape[0]:
            raise ValueError(
                "features must be 3-D (networks, rows, features) with one block per network"
            )
        if self._x_min is not None:
            x = ((x - self._x_min) / self._x_span) * 2.0 + -1.0
        hidden = _sigmoid(np.matmul(x, self._w_hidden) + self._b_hidden[:, None, :])
        outputs = np.matmul(hidden, self._w_output[:, :, None])[:, :, 0] + self._b_output[:, None]
        if self._y_min is not None:
            outputs = ((outputs + 1.0) / 2.0) * self._y_span + self._y_min
        return outputs

    @property
    def n_networks(self) -> int:
        """Number of stacked networks (resolved after fit)."""
        if self._w_hidden is None:
            raise RuntimeError("model has not been fitted")
        return int(self._w_hidden.shape[0])

    @property
    def n_hidden_units(self) -> int:
        """Number of hidden units actually used (resolved after fit)."""
        if self._w_hidden is None:
            raise RuntimeError("model has not been fitted")
        return int(self._w_hidden.shape[2])
