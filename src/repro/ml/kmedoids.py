"""k-medoids clustering (PAM-style).

Section 6.5 of the paper selects predictive machines with k-medoid
clustering: k machines are chosen as cluster centres in the benchmark-score
space, every remaining machine is assigned to its closest centre, and the
medoids are iteratively refined until membership stabilises.  The resulting
medoids are the predictive machines; they are maximally diverse and give a
better model fit than randomly chosen machines (Figure 8).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ml.distances import pairwise_distances

__all__ = ["KMedoids"]


class KMedoids:
    """Partitioning-around-medoids clustering.

    Parameters
    ----------
    n_clusters:
        Number of medoids (predictive machines) to select.
    max_iterations:
        Upper bound on the assign/update loop; the algorithm also stops as
        soon as the medoid set stops changing.
    seed:
        Seed used for the initial random medoid selection, matching the
        paper's description ("randomly selects k cluster centers initially").
    """

    def __init__(self, n_clusters: int, max_iterations: int = 100, seed: int = 0) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.n_clusters = int(n_clusters)
        self.max_iterations = int(max_iterations)
        self.seed = int(seed)
        self.medoid_indices_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None
        self.n_iterations_: int = 0

    def fit(self, points: Sequence[Sequence[float]]) -> "KMedoids":
        """Cluster *points* (one row per machine) and store the medoids."""
        matrix = np.asarray(points, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("points must be a 2-D array (samples, features)")
        n_samples = matrix.shape[0]
        if self.n_clusters > n_samples:
            raise ValueError(
                f"cannot select {self.n_clusters} medoids from {n_samples} points"
            )
        distances = pairwise_distances(matrix)
        rng = np.random.default_rng(self.seed)
        medoids = rng.choice(n_samples, size=self.n_clusters, replace=False)
        medoids.sort()

        labels = np.zeros(n_samples, dtype=int)
        for iteration in range(self.max_iterations):
            # Assignment step: each point joins its nearest medoid's cluster.
            labels = np.argmin(distances[:, medoids], axis=1)

            # Update step: within each cluster, the point minimising the sum of
            # distances to the other members becomes the new medoid.
            new_medoids = medoids.copy()
            for cluster in range(self.n_clusters):
                members = np.flatnonzero(labels == cluster)
                if members.size == 0:
                    continue
                within = distances[np.ix_(members, members)].sum(axis=1)
                new_medoids[cluster] = members[int(np.argmin(within))]
            new_medoids.sort()

            self.n_iterations_ = iteration + 1
            if np.array_equal(new_medoids, medoids):
                break
            medoids = new_medoids

        labels = np.argmin(distances[:, medoids], axis=1)
        self.medoid_indices_ = medoids
        self.labels_ = labels
        self.inertia_ = float(distances[np.arange(n_samples), medoids[labels]].sum())
        return self

    def fit_predict(self, points: Sequence[Sequence[float]]) -> np.ndarray:
        """Fit and return the cluster label of every point."""
        self.fit(points)
        assert self.labels_ is not None
        return self.labels_
