"""Distance metrics shared by the k-NN and k-medoids components."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "euclidean_distance",
    "manhattan_distance",
    "weighted_euclidean_distance",
    "pairwise_distances",
]


def _as_vectors(x: Sequence[float], y: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape:
        raise ValueError(f"shape mismatch: {xa.shape} vs {ya.shape}")
    return xa, ya


def euclidean_distance(x: Sequence[float], y: Sequence[float]) -> float:
    """Standard L2 distance between two feature vectors."""
    xa, ya = _as_vectors(x, y)
    return float(np.sqrt(((xa - ya) ** 2).sum()))


def manhattan_distance(x: Sequence[float], y: Sequence[float]) -> float:
    """L1 distance between two feature vectors."""
    xa, ya = _as_vectors(x, y)
    return float(np.abs(xa - ya).sum())


def weighted_euclidean_distance(
    x: Sequence[float], y: Sequence[float], weights: Sequence[float]
) -> float:
    """Euclidean distance with a non-negative weight per dimension.

    This is the distance the GA-kNN baseline learns: the genetic algorithm
    searches for the per-characteristic weights that make distances in the
    workload-characteristic space predictive of performance differences.
    """
    xa, ya = _as_vectors(x, y)
    wa = np.asarray(weights, dtype=float)
    if wa.shape != xa.shape:
        raise ValueError(f"weights shape {wa.shape} does not match vectors {xa.shape}")
    if np.any(wa < 0):
        raise ValueError("weights must be non-negative")
    return float(np.sqrt((wa * (xa - ya) ** 2).sum()))


def pairwise_distances(
    points: Sequence[Sequence[float]],
    metric: str = "euclidean",
    weights: Sequence[float] | None = None,
) -> np.ndarray:
    """Symmetric pairwise distance matrix for a set of points.

    Parameters
    ----------
    points:
        2-D array-like, one row per point.
    metric:
        "euclidean" or "manhattan".
    weights:
        Optional per-dimension weights (euclidean only).
    """
    matrix = np.asarray(points, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("points must be a 2-D array")
    n = matrix.shape[0]
    if metric == "euclidean":
        if weights is not None:
            wa = np.asarray(weights, dtype=float)
            if wa.shape != (matrix.shape[1],):
                raise ValueError("weights length must match the number of features")
            scaled = matrix * np.sqrt(wa)
        else:
            scaled = matrix
        sq = (scaled**2).sum(axis=1)
        gram = scaled @ scaled.T
        dist_sq = sq[:, None] + sq[None, :] - 2.0 * gram
        np.clip(dist_sq, 0.0, None, out=dist_sq)
        distances = np.sqrt(dist_sq)
    elif metric == "manhattan":
        if weights is not None:
            raise ValueError("weights are only supported for the euclidean metric")
        distances = np.abs(matrix[:, None, :] - matrix[None, :, :]).sum(axis=2)
    else:
        raise ValueError(f"unknown metric: {metric!r}")
    np.fill_diagonal(distances, 0.0)
    return distances
