"""Feature scaling.

Both the MLPᵀ predictor and the GA-kNN baseline operate on features with
very different dynamic ranges (SPEC ratios span roughly 1-60, workload
characteristics span fractions to millions).  The scalers here follow the
familiar fit/transform interface so they compose with the predictors in
:mod:`repro.core` and :mod:`repro.baselines`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler"]


class StandardScaler:
    """Scale features to zero mean and unit variance.

    Constant features (zero variance) are left centred but not scaled, so
    transforming never divides by zero.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "StandardScaler":
        """Learn per-feature mean and standard deviation from *data*."""
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("StandardScaler expects a 2-D array of shape (samples, features)")
        if matrix.shape[0] == 0:
            raise ValueError("cannot fit a scaler on zero samples")
        self.mean_ = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Standardise *data* using the fitted statistics."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler.transform called before fit")
        matrix = np.asarray(data, dtype=float)
        return (matrix - self.mean_) / self.scale_

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on *data* then return its standardised version."""
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        """Map standardised values back to the original feature space."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler.inverse_transform called before fit")
        matrix = np.asarray(data, dtype=float)
        return matrix * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features into a fixed range (default [0, 1]).

    WEKA's MultilayerPerceptron normalises attributes into [-1, 1] by
    default; the MLPᵀ predictor uses this scaler with that range to match.
    """

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)) -> None:
        low, high = feature_range
        if high <= low:
            raise ValueError("feature_range upper bound must exceed the lower bound")
        self.feature_range = (float(low), float(high))
        self.min_: np.ndarray | None = None
        self.max_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "MinMaxScaler":
        """Learn per-feature minima and maxima from *data*."""
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("MinMaxScaler expects a 2-D array of shape (samples, features)")
        if matrix.shape[0] == 0:
            raise ValueError("cannot fit a scaler on zero samples")
        self.min_ = matrix.min(axis=0)
        self.max_ = matrix.max(axis=0)
        return self

    def _span(self) -> np.ndarray:
        assert self.min_ is not None and self.max_ is not None
        span = self.max_ - self.min_
        span[span == 0.0] = 1.0
        return span

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Rescale *data* into the configured feature range."""
        if self.min_ is None or self.max_ is None:
            raise RuntimeError("MinMaxScaler.transform called before fit")
        matrix = np.asarray(data, dtype=float)
        low, high = self.feature_range
        unit = (matrix - self.min_) / self._span()
        return unit * (high - low) + low

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on *data* then return its rescaled version."""
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        """Map values in the configured range back to the original space."""
        if self.min_ is None or self.max_ is None:
            raise RuntimeError("MinMaxScaler.inverse_transform called before fit")
        matrix = np.asarray(data, dtype=float)
        low, high = self.feature_range
        unit = (matrix - low) / (high - low)
        return unit * self._span() + self.min_
