"""Machine-learning substrate.

The paper uses off-the-shelf learners (WEKA's MultilayerPerceptron, simple
linear regression, a genetic algorithm and k-nearest-neighbour prediction
from Hoste et al., and k-medoid clustering for predictive-machine
selection).  None of those implementations are available offline, so this
package provides NumPy-only re-implementations with the same behaviour:

* :mod:`repro.ml.linreg` — ordinary least squares and ridge regression.
* :mod:`repro.ml.mlp` — a feed-forward multi-layer perceptron trained with
  stochastic gradient descent + momentum (matching WEKA's defaults).
* :mod:`repro.ml.knn` — (weighted) k-nearest-neighbour regression.
* :mod:`repro.ml.genetic` — a real-valued genetic algorithm used by the
  GA-kNN baseline to learn per-feature weights.
* :mod:`repro.ml.kmedoids` — PAM-style k-medoids clustering for selecting
  diverse predictive machines (Figure 8).
* :mod:`repro.ml.preprocessing` — feature scalers.
* :mod:`repro.ml.distances` — distance metrics shared by kNN and k-medoids.
* :mod:`repro.ml.model_selection` — train/validation splitting and simple
  grid search used by ablation benches.
"""

from repro.ml.distances import (
    euclidean_distance,
    manhattan_distance,
    pairwise_distances,
    weighted_euclidean_distance,
)
from repro.ml.preprocessing import MinMaxScaler, StandardScaler
from repro.ml.linreg import LinearRegression, RidgeRegression, SimpleLinearRegression
from repro.ml.mlp import MLPRegressor
from repro.ml.batched_mlp import BatchedMLPRegressor
from repro.ml.knn import KNNRegressor
from repro.ml.genetic import GeneticAlgorithm, GAConfig, LockstepGeneticAlgorithm
from repro.ml.kmedoids import KMedoids
from repro.ml.model_selection import GridSearch, KFold, train_test_split

__all__ = [
    "BatchedMLPRegressor",
    "GAConfig",
    "GeneticAlgorithm",
    "GridSearch",
    "KFold",
    "KMedoids",
    "KNNRegressor",
    "LinearRegression",
    "LockstepGeneticAlgorithm",
    "MLPRegressor",
    "MinMaxScaler",
    "RidgeRegression",
    "SimpleLinearRegression",
    "StandardScaler",
    "euclidean_distance",
    "manhattan_distance",
    "pairwise_distances",
    "train_test_split",
    "weighted_euclidean_distance",
]
