"""Purchasing-decision advisor (Section 4, "Guiding purchasing decisions").

A thin, user-facing wrapper around data transposition for the scenario the
paper motivates in its introduction: a customer has an in-house application
of interest, access to a handful of machines, and the published benchmark
results for many machines they are considering buying.  The advisor takes
the customer's measurements, predicts the application's performance on
every candidate machine and produces a shortlist together with the expected
loss of following naive strategies (suite-mean purchasing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.ranking import MachineRanking
from repro.core.transposition import DataTransposition
from repro.data.spec_dataset import SpecDataset
from repro.data.splits import MachineSplit

__all__ = ["PurchaseRecommendation", "PurchasingAdvisor"]


@dataclass(frozen=True)
class PurchaseRecommendation:
    """Outcome of a purchasing analysis for one application of interest."""

    application: str
    ranking: MachineRanking
    shortlist: tuple[str, ...]
    suite_mean_choice: str

    @property
    def recommended_machine(self) -> str:
        """The machine predicted to run the application fastest."""
        return self.shortlist[0]

    def differs_from_suite_mean(self) -> bool:
        """Whether the recommendation disagrees with naive suite-mean purchasing."""
        return self.recommended_machine != self.suite_mean_choice


class PurchasingAdvisor:
    """Recommend which candidate machine to buy for an application of interest.

    Parameters
    ----------
    dataset:
        The published benchmark results (candidate machines + benchmarks).
    predictive_ids:
        Machines the customer can measure on (must be part of the dataset).
    method:
        A :class:`repro.core.transposition.DataTransposition` instance;
        defaults to the MLPᵀ flavour the paper recommends.
    """

    def __init__(
        self,
        dataset: SpecDataset,
        predictive_ids: Sequence[str],
        method: DataTransposition | None = None,
    ) -> None:
        if not predictive_ids:
            raise ValueError("at least one predictive machine is required")
        unknown = set(predictive_ids) - set(dataset.machine_ids)
        if unknown:
            raise KeyError(f"unknown predictive machines: {sorted(unknown)}")
        self.dataset = dataset
        self.predictive_ids = tuple(predictive_ids)
        self.method = method or DataTransposition.with_mlp(epochs=200)

    def candidate_ids(self) -> list[str]:
        """Machines under consideration (everything except the predictive set)."""
        return [mid for mid in self.dataset.machine_ids if mid not in self.predictive_ids]

    def recommend(
        self,
        application: str,
        app_scores_on_predictive: Sequence[float],
        shortlist_size: int = 3,
        candidates: Sequence[str] | None = None,
    ) -> PurchaseRecommendation:
        """Rank the candidate machines for *application* and build a shortlist.

        Parameters
        ----------
        application:
            Name used to report the application (it does not need to be a
            suite benchmark; the measurements carry all the information).
        app_scores_on_predictive:
            The customer's measured scores of the application on each
            predictive machine, in ``predictive_ids`` order.
        shortlist_size:
            How many machines to shortlist.
        candidates:
            Restrict the candidate machines (default: every non-predictive
            machine in the dataset).
        """
        if shortlist_size < 1:
            raise ValueError("shortlist_size must be >= 1")
        target_ids = tuple(candidates) if candidates is not None else tuple(self.candidate_ids())
        split = MachineSplit(
            name=f"purchase:{application}",
            predictive_ids=self.predictive_ids,
            target_ids=target_ids,
        )
        # The application of interest is external, so every suite benchmark
        # is available for training.
        training = [name for name in self.dataset.benchmark_names if name != application]
        result = self.method.predict_scores(
            self.dataset,
            split,
            application,
            training_benchmarks=training,
            app_scores_predictive=list(app_scores_on_predictive),
        )
        ranking = result.ranking()
        suite_means = (
            self.dataset.matrix.select_benchmarks(training)
            .select_machines(list(target_ids))
            .scores.mean(axis=0)
        )
        suite_choice = target_ids[int(np.argmax(suite_means))]
        return PurchaseRecommendation(
            application=application,
            ranking=ranking,
            shortlist=tuple(ranking.top(shortlist_size)),
            suite_mean_choice=suite_choice,
        )
