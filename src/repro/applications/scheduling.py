"""Heterogeneous-cluster scheduling (Section 4, "Task scheduling on heterogeneous systems").

The paper suggests data transposition as the oracle behind schedulers for
heterogeneous machines: predict how fast each job runs on each node type and
assign jobs accordingly.  This module implements a small scheduling
substrate — jobs, nodes, a greedy list scheduler and a makespan simulator —
that can be driven either by measured scores (the oracle) or by scores
predicted through data transposition, so the value of good predictions can
be quantified as the makespan gap to the oracle schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

__all__ = ["Job", "Node", "Assignment", "Schedule", "GreedyScheduler"]


@dataclass(frozen=True)
class Job:
    """One job to place: an amount of work expressed in reference-machine seconds."""

    name: str
    work: float

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise ValueError("work must be positive")


@dataclass(frozen=True)
class Node:
    """One node type in the heterogeneous cluster."""

    machine_id: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")


@dataclass(frozen=True)
class Assignment:
    """One job placed on one node instance."""

    job: Job
    machine_id: str
    node_instance: int
    runtime: float


@dataclass
class Schedule:
    """A complete assignment of jobs to node instances."""

    assignments: list[Assignment] = field(default_factory=list)

    def makespan(self) -> float:
        """Completion time of the busiest node instance."""
        if not self.assignments:
            return 0.0
        loads: dict[tuple[str, int], float] = {}
        for assignment in self.assignments:
            key = (assignment.machine_id, assignment.node_instance)
            loads[key] = loads.get(key, 0.0) + assignment.runtime
        return max(loads.values())

    def total_runtime(self) -> float:
        """Sum of all job runtimes (a throughput-style metric)."""
        return sum(assignment.runtime for assignment in self.assignments)

    def jobs_per_machine(self) -> dict[str, int]:
        """Number of jobs placed on each machine type."""
        counts: dict[str, int] = {}
        for assignment in self.assignments:
            counts[assignment.machine_id] = counts.get(assignment.machine_id, 0) + 1
        return counts

    def reevaluate(self, speed_table: Mapping[str, Mapping[str, float]]) -> "Schedule":
        """Same placement, runtimes recomputed from another speed table.

        Used to measure what a schedule built on *predicted* speeds costs
        when the jobs actually run: keep the job-to-node assignment but
        price every assignment with the measured speeds.
        """
        reevaluated = Schedule()
        for assignment in self.assignments:
            speed = speed_table[assignment.job.name][assignment.machine_id]
            if speed <= 0:
                raise ValueError("speeds must be positive")
            reevaluated.assignments.append(
                Assignment(
                    job=assignment.job,
                    machine_id=assignment.machine_id,
                    node_instance=assignment.node_instance,
                    runtime=assignment.job.work / speed,
                )
            )
        return reevaluated


class GreedyScheduler:
    """Longest-processing-time list scheduling on predicted speeds.

    Parameters
    ----------
    speed_table:
        ``speed_table[job_name][machine_id]`` is the (predicted or measured)
        speed of that job on that machine type, in reference-machine work
        units per second — i.e. exactly a SPEC-style speed ratio.  Runtime
        of a job on a node is ``job.work / speed``.
    """

    def __init__(self, speed_table: Mapping[str, Mapping[str, float]]) -> None:
        if not speed_table:
            raise ValueError("speed_table must not be empty")
        for job_name, per_machine in speed_table.items():
            for machine_id, speed in per_machine.items():
                if speed <= 0:
                    raise ValueError(
                        f"speed of {job_name!r} on {machine_id!r} must be positive"
                    )
        self.speed_table = {job: dict(machines) for job, machines in speed_table.items()}

    def _runtime(self, job: Job, machine_id: str) -> float:
        try:
            speed = self.speed_table[job.name][machine_id]
        except KeyError:
            raise KeyError(f"no speed entry for job {job.name!r} on machine {machine_id!r}") from None
        return job.work / speed

    def schedule(self, jobs: Sequence[Job], nodes: Sequence[Node]) -> Schedule:
        """Assign every job to the node instance that minimises its finish time.

        Jobs are considered longest-first (by their runtime on the fastest
        node), the classic LPT heuristic; each is placed on the instance
        with the earliest finish time for that job.
        """
        if not jobs:
            raise ValueError("at least one job is required")
        if not nodes:
            raise ValueError("at least one node is required")

        instances: list[tuple[str, int]] = []
        for node in nodes:
            for instance in range(node.count):
                instances.append((node.machine_id, instance))

        def best_runtime(job: Job) -> float:
            return min(self._runtime(job, machine_id) for machine_id, _ in instances)

        ordered = sorted(jobs, key=best_runtime, reverse=True)
        ready_time = {key: 0.0 for key in instances}
        schedule = Schedule()
        for job in ordered:
            best_key = min(
                instances, key=lambda key: ready_time[key] + self._runtime(job, key[0])
            )
            runtime = self._runtime(job, best_key[0])
            ready_time[best_key] += runtime
            schedule.assignments.append(
                Assignment(job=job, machine_id=best_key[0], node_instance=best_key[1], runtime=runtime)
            )
        return schedule

    @staticmethod
    def makespan_ratio(predicted_schedule: Schedule, oracle_schedule: Schedule) -> float:
        """How much longer the predicted-speed schedule runs than the oracle's."""
        oracle = oracle_schedule.makespan()
        if oracle <= 0:
            raise ValueError("oracle schedule has no work")
        return predicted_schedule.makespan() / oracle
