"""Design-space exploration accelerator (Section 4, "Fast design space exploration").

Cycle-accurate simulation of every (design point, workload) pair is the
bottleneck of architecture exploration.  The paper observes that data
transposition can cut the workload dimension: simulate only the benchmark
suite on every design point (plus the suite and the new workloads on a few
"predictive" design points), then *predict* the new workloads on the
remaining design points instead of simulating them.

Here the design points are machine configurations evaluated by the interval
model — the same simulator that generates the dataset — so the module can
report exactly how many detailed simulations were avoided and how much
prediction error that saved effort costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.transposition import DataTransposition
from repro.data.machines import MachineSpec
from repro.data.matrix import PerformanceMatrix
from repro.data.spec_dataset import SpecDataset
from repro.data.splits import MachineSplit
from repro.data.synthetic import generate_performance_matrix, score_application
from repro.simulator.workload import WorkloadCharacteristics
from repro.stats.correlation import spearman_correlation
from repro.stats.metrics import mean_absolute_percentage_error

__all__ = ["DesignSpaceStudy", "DSEOutcome"]


@dataclass(frozen=True)
class DSEOutcome:
    """Accuracy and cost accounting of one accelerated exploration run."""

    workload: str
    predicted_scores: tuple[float, ...]
    simulated_scores: tuple[float, ...]
    simulations_avoided: int
    simulations_run: int

    @property
    def rank_correlation(self) -> float:
        """Agreement between the predicted and fully simulated design rankings."""
        return spearman_correlation(self.predicted_scores, self.simulated_scores)

    @property
    def mean_error_percent(self) -> float:
        """Mean absolute percentage error of the predicted scores."""
        return mean_absolute_percentage_error(self.predicted_scores, self.simulated_scores)

    @property
    def speedup_factor(self) -> float:
        """Detailed simulations that would have been needed / those actually run."""
        total = self.simulations_avoided + self.simulations_run
        return total / self.simulations_run


class DesignSpaceStudy:
    """Explore a set of candidate designs with a reduced simulation budget.

    Parameters
    ----------
    design_points:
        Candidate machine configurations (as :class:`MachineSpec`).
    benchmarks:
        The benchmark suite simulated in detail on every design point.
    predictive_count:
        How many design points the *new* workloads are also simulated on;
        every other design point only gets predictions.
    seed:
        Seed for the deterministic selection of predictive design points.
    """

    def __init__(
        self,
        design_points: Sequence[MachineSpec],
        benchmarks: Sequence[WorkloadCharacteristics],
        predictive_count: int = 4,
        seed: int = 0,
    ) -> None:
        if len(design_points) < 3:
            raise ValueError("a design-space study needs at least three design points")
        if predictive_count < 2:
            raise ValueError("at least two predictive design points are required")
        if predictive_count >= len(design_points):
            raise ValueError("predictive_count must be smaller than the number of design points")
        self.design_points = list(design_points)
        self.benchmarks = list(benchmarks)
        self.predictive_count = predictive_count
        self.seed = seed
        # "Detailed simulation" of the suite on every design point.
        self.matrix: PerformanceMatrix = generate_performance_matrix(
            machines=self.design_points, benchmarks=self.benchmarks, noise_sigma=0.0
        )
        self.dataset = SpecDataset(
            matrix=self.matrix,
            machines=tuple(self.design_points),
            benchmarks=tuple(self.benchmarks),
        )
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(self.design_points), size=predictive_count, replace=False)
        self.predictive_ids = tuple(self.design_points[i].machine_id for i in sorted(chosen))
        self.target_ids = tuple(
            spec.machine_id for spec in self.design_points if spec.machine_id not in self.predictive_ids
        )

    def explore(self, workload: WorkloadCharacteristics, method: DataTransposition | None = None) -> DSEOutcome:
        """Predict *workload* on the non-predictive design points and audit the result."""
        method = method or DataTransposition.with_linear_regression()
        split = MachineSplit(
            name="dse", predictive_ids=self.predictive_ids, target_ids=self.target_ids
        )
        predictive_specs = [spec for spec in self.design_points if spec.machine_id in self.predictive_ids]
        target_specs = [spec for spec in self.design_points if spec.machine_id in self.target_ids]

        measured_on_predictive = score_application(workload, predictive_specs, noise_sigma=0.0)
        result = method.predict_scores(
            self.dataset,
            split,
            workload.name,
            training_benchmarks=[b.name for b in self.benchmarks if b.name != workload.name],
            app_scores_predictive=measured_on_predictive,
        )
        # Ground truth: what full simulation of the workload would have given.
        simulated = score_application(workload, target_specs, noise_sigma=0.0)
        return DSEOutcome(
            workload=workload.name,
            predicted_scores=result.predicted_scores,
            simulated_scores=tuple(float(x) for x in simulated),
            simulations_avoided=len(self.target_ids),
            simulations_run=len(self.predictive_ids),
        )
