"""Application layer: the use cases sketched in Section 4 of the paper."""

from repro.applications.purchasing import PurchaseRecommendation, PurchasingAdvisor
from repro.applications.scheduling import Assignment, GreedyScheduler, Job, Node, Schedule
from repro.applications.dse import DesignSpaceStudy, DSEOutcome

__all__ = [
    "Assignment",
    "DSEOutcome",
    "DesignSpaceStudy",
    "GreedyScheduler",
    "Job",
    "Node",
    "PurchaseRecommendation",
    "PurchasingAdvisor",
    "Schedule",
]
