"""Heterogeneous-cluster scheduling scenario (Section 4 of the paper).

A data centre operates three node types of different generations.  A batch
of jobs — mixes of the SPEC workloads standing in for real applications —
must be placed on the nodes.  The scheduler needs per-job, per-node speed
estimates:

* the *oracle* scheduler uses measured speeds (requires running every job on
  every node type up front), and
* the *data-transposition* scheduler only measures the jobs on the two node
  types available in the staging lab and predicts the third.

The makespan gap between the two quantifies what prediction quality costs.

Run with:  ``python examples/heterogeneous_scheduling.py``
"""

from __future__ import annotations

import numpy as np

from repro.applications import GreedyScheduler, Job, Node
from repro.core import DataTransposition
from repro.data import MachineSplit, build_default_dataset

#: Node types in the cluster: an old FSB Xeon, an AMD K10 and a Nehalem Xeon.
CLUSTER_NODES = (
    Node("intel-xeon-harpertown-2", count=4),
    Node("amd-opteron-k10-shanghai-2", count=4),
    Node("intel-xeon-gainestown-2", count=2),
)

#: Node types available in the staging lab (measurable): everything except
#: the brand-new Gainestown nodes, whose speeds must be predicted.
STAGING_NODES = ("intel-xeon-harpertown-2", "amd-opteron-k10-shanghai-2")

#: The job mix: SPEC benchmarks standing in for user applications, with work
#: amounts in reference-machine hours.
JOB_MIX = [
    ("lbm", 30.0), ("mcf", 22.0), ("gcc", 10.0), ("povray", 8.0),
    ("leslie3d", 26.0), ("hmmer", 12.0), ("xalancbmk", 9.0), ("milc", 24.0),
    ("sjeng", 7.0), ("libquantum", 28.0), ("namd", 11.0), ("soplex", 18.0),
    ("bzip2", 6.0), ("cactusADM", 25.0), ("gobmk", 8.0), ("wrf", 16.0),
]


def main() -> None:
    dataset = build_default_dataset()
    node_ids = [node.machine_id for node in CLUSTER_NODES]
    jobs = [Job(name, work) for name, work in JOB_MIX]

    # Oracle speed table: measured scores of every job on every node type.
    oracle_speeds = {
        job.name: {mid: dataset.matrix.score(job.name, mid) for mid in node_ids} for job in jobs
    }

    # Predicted speed table: staging nodes measured, the Gainestown nodes
    # predicted through data transposition (NN^T).
    predicted_speeds = {job.name: dict(oracle_speeds[job.name]) for job in jobs}
    unknown_nodes = [mid for mid in node_ids if mid not in STAGING_NODES]
    method = DataTransposition.with_linear_regression()
    split = MachineSplit(
        name="cluster", predictive_ids=STAGING_NODES, target_ids=tuple(unknown_nodes)
    )
    for job in jobs:
        result = method.predict_scores(dataset, split, job.name)
        for mid, predicted in zip(unknown_nodes, result.predicted_scores):
            predicted_speeds[job.name][mid] = max(predicted, 1e-6)

    oracle_schedule = GreedyScheduler(oracle_speeds).schedule(jobs, CLUSTER_NODES)
    predicted_plan = GreedyScheduler(predicted_speeds).schedule(jobs, CLUSTER_NODES)
    # what the predicted-speed placement costs when jobs actually run
    realised = predicted_plan.reevaluate(oracle_speeds)

    print(f"Jobs: {len(jobs)}, node types: {len(CLUSTER_NODES)} "
          f"({sum(node.count for node in CLUSTER_NODES)} node instances)")
    print(f"Oracle makespan (measured speeds everywhere): {oracle_schedule.makespan():8.2f} h")
    print(f"Makespan with data-transposition predictions: {realised.makespan():8.2f} h")
    ratio = realised.makespan() / oracle_schedule.makespan()
    print(f"Slowdown vs. oracle: {ratio:.3f}x")

    print("\nJobs per node type (prediction-driven schedule):")
    for machine_id, count in sorted(realised.jobs_per_machine().items()):
        print(f"  {dataset.machine(machine_id).name:<40} {count} jobs")

    # A naive scheduler that assumes every node type is equally fast.
    uniform_speeds = {job.name: {mid: 1.0 for mid in node_ids} for job in jobs}
    naive_plan = GreedyScheduler(uniform_speeds).schedule(jobs, CLUSTER_NODES)
    naive_realised = naive_plan.reevaluate(oracle_speeds)
    print(f"\nNaive (speed-agnostic) schedule makespan: {naive_realised.makespan():8.2f} h "
          f"({naive_realised.makespan() / oracle_schedule.makespan():.3f}x oracle)")


if __name__ == "__main__":
    main()
