"""Serving example: answer purchase questions through the prediction service.

The offline experiments replay the paper's evaluation grid; this example
asks the same question the way a *client* would — "I own these machines,
my application is measured on them, rank everything else" — through
:class:`repro.service.PredictionService` and the wire-protocol
:class:`repro.service.InProcessClient`:

1. build the study dataset and a service with the NNᵀ and MLPᵀ methods,
2. ask for a cold ranking (the service trains the split in one batched
   tensor pass covering every application),
3. ask follow-up questions on the same machines — all warm-cache lookups,
4. show the raw JSON exchange the ``repro-serve`` server speaks.

Run with:  ``python examples/serving_client.py``
"""

from __future__ import annotations

import time

from repro.core import BatchedLinearTransposition, BatchedMLPTransposition
from repro.data import build_default_dataset
from repro.service import InProcessClient, PredictionService, RankingQuery

APPLICATION = "sphinx3"
N_PREDICTIVE = 6


def main() -> None:
    print("Building the 29-benchmark x 117-machine dataset...")
    dataset = build_default_dataset()
    service = PredictionService(
        dataset,
        {
            "NN^T": BatchedLinearTransposition(),
            "MLP^T": BatchedMLPTransposition(epochs=150, seed=0),
        },
    )

    predictive = tuple(dataset.machine_ids[:N_PREDICTIVE])
    print(f"Owned (predictive) machines: {', '.join(predictive)}\n")

    # Cold query: the service trains the whole split once, batched.
    start = time.perf_counter()
    reply = service.rank(RankingQuery(APPLICATION, predictive, top_n=5))
    cold_ms = (time.perf_counter() - start) * 1e3
    print(f"=== {APPLICATION} via {reply.method} (cold, {cold_ms:.1f} ms) ===")
    for rank, (mid, score) in enumerate(zip(reply.machine_ids, reply.scores), start=1):
        print(f"  {rank}. {dataset.machine(mid).name:<38} predicted {score:6.1f}")

    # Every other application on the same machines is now a warm lookup.
    start = time.perf_counter()
    replies = service.rank_many(
        [RankingQuery(app, predictive, top_n=1) for app in dataset.benchmark_names]
    )
    warm_ms = (time.perf_counter() - start) * 1e3
    hits = sum(reply.cache_hit for reply in replies)
    print(
        f"\nBulk follow-up: top pick for all {len(replies)} applications in "
        f"{warm_ms:.1f} ms ({hits} warm-cache answers)"
    )
    for reply in replies[:5]:
        print(f"  {reply.application:<12} -> {dataset.machine(reply.top1).name}")
    print("  ...")

    # The same conversation over the repro-serve wire protocol.
    client = InProcessClient(service)
    request = {
        "application": APPLICATION,
        "predictive_machines": list(predictive),
        "method": "MLP^T",
        "top_n": 3,
    }
    print(f"\nJSON request (as repro-serve would receive it): {request}")
    response = client.request(request)
    print(f"JSON reply: ok={response['ok']}, cache_hit={response['cache_hit']}")
    for entry in response["ranking"]:
        print(f"  {entry['machine']:<38} predicted {entry['score']:6.1f}")

    stats = service.cache_stats()
    print(
        f"\nCache: {stats.entries} trained split(s) resident, "
        f"{stats.hits} hits / {stats.misses} misses"
    )


if __name__ == "__main__":
    main()
