"""Quickstart: rank commercial machines for an application of interest.

This walks the library's core loop end to end:

1. build the study dataset (29 SPEC CPU2006 benchmarks x 117 machines),
2. pretend one benchmark (``sphinx3``) is *your* application of interest —
   it is removed from the training suite, exactly like the paper's
   leave-one-out evaluation,
3. pick a handful of predictive machines you "own",
4. predict the application's performance on every other machine with both
   data-transposition flavours (NNᵀ and MLPᵀ), and
5. compare the predicted ranking against the measured one.

Run with:  ``python examples/quickstart.py``
"""

from __future__ import annotations

from repro.core import DataTransposition, actual_ranking, compare_rankings, select_k_medoids
from repro.data import MachineSplit, build_default_dataset

APPLICATION = "sphinx3"
N_PREDICTIVE = 5


def main() -> None:
    print("Building the 29-benchmark x 117-machine dataset...")
    dataset = build_default_dataset()

    # Choose 5 diverse predictive machines with k-medoid clustering
    # (Section 6.5 of the paper) and treat every other machine as a target.
    predictive_ids = select_k_medoids(dataset, dataset.machine_ids, N_PREDICTIVE, seed=0)
    target_ids = [mid for mid in dataset.machine_ids if mid not in predictive_ids]
    split = MachineSplit(
        name="quickstart", predictive_ids=tuple(predictive_ids), target_ids=tuple(target_ids)
    )
    print(f"Predictive machines ({N_PREDICTIVE}, chosen by k-medoids):")
    for mid in predictive_ids:
        machine = dataset.machine(mid)
        print(f"  - {machine.name}  [{machine.family}, {machine.release_year}]")

    reference = actual_ranking(dataset, split, APPLICATION)
    print(f"\nApplication of interest: {APPLICATION} "
          f"(treated as unknown; measured only on the predictive machines)")

    for label, method in (
        ("NN^T (linear regression)", DataTransposition.with_linear_regression()),
        ("MLP^T (neural network)", DataTransposition.with_mlp(epochs=200)),
    ):
        ranking = method.rank_machines(dataset, split, APPLICATION)
        comparison = compare_rankings(ranking, reference)
        print(f"\n=== {label} ===")
        print(f"  Spearman rank correlation vs. measured ranking: {comparison.rank_correlation:.3f}")
        print(f"  top-1 purchasing loss: {comparison.top1_error_percent:.2f}%")
        print(f"  mean prediction error: {comparison.mean_error_percent:.2f}%")
        print("  predicted top-5 machines:")
        for rank, mid in enumerate(ranking.top(5), start=1):
            machine = dataset.machine(mid)
            print(f"    {rank}. {machine.name:<38} predicted {ranking.score_of(mid):6.1f} "
                  f"measured {reference.score_of(mid):6.1f}")
    best = dataset.machine(reference.top(1)[0])
    print(f"\nMeasured best machine: {best.name}")


if __name__ == "__main__":
    main()
