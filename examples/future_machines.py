"""Predicting machines you cannot measure yet (Sections 4 and 6.3).

Two scenarios in one script:

1. **Future hardware** — use only machines released before 2009 to rank the
   2009 machines for a set of applications, and report how far each
   predictive era (2008 / 2007 / older) can see into the future.
2. **Design-space exploration** — treat a set of hypothetical machine
   configurations as simulator design points, run the benchmark suite
   everywhere but a new workload only on a few of them, and predict the
   rest instead of simulating.

Run with:  ``python examples/future_machines.py``
"""

from __future__ import annotations

import dataclasses

from repro.applications import DesignSpaceStudy
from repro.core import DataTransposition, actual_ranking, compare_rankings
from repro.data import SPEC_CPU2006_BENCHMARKS, build_default_dataset, build_machine_catalogue, temporal_split
from repro.simulator import WorkloadCharacteristics

APPLICATIONS = ("leslie3d", "gcc", "namd", "libquantum")


def future_hardware(dataset) -> None:
    print("=== Predicting the 2009 machines from older predictive sets ===")
    eras = {
        "2008": temporal_split(dataset, target_year=2009, predictive_years=[2008]),
        "2007": temporal_split(dataset, target_year=2009, predictive_years=[2007]),
        "pre-2007": temporal_split(dataset, target_year=2009, predictive_before=2007),
    }
    method = DataTransposition.with_linear_regression()
    for era, split in eras.items():
        correlations = []
        for application in APPLICATIONS:
            ranking = method.rank_machines(dataset, split, application)
            reference = actual_ranking(dataset, split, application)
            correlations.append(compare_rankings(ranking, reference).rank_correlation)
        mean_corr = sum(correlations) / len(correlations)
        print(f"  predictive era {era:<9} ({split.n_predictive:3d} machines): "
              f"mean rank correlation over {len(APPLICATIONS)} apps = {mean_corr:.3f}")


def design_space_exploration() -> None:
    print("\n=== Accelerated design-space exploration ===")
    # Design points: the distinct CPU nicknames (variant #2 of each) act as
    # the candidate micro-architectures of an exploration study.
    catalogue = [m for m in build_machine_catalogue() if m.machine_id.endswith("-2")]
    study = DesignSpaceStudy(
        design_points=catalogue,
        benchmarks=list(SPEC_CPU2006_BENCHMARKS),
        predictive_count=5,
        seed=1,
    )
    # A new workload the architects care about: a vectorisable streaming
    # kernel that is not part of the suite.
    new_workload = WorkloadCharacteristics(
        name="stencil-kernel",
        domain="fp",
        dynamic_instructions=800.0,
        memory_fraction=0.47,
        branch_fraction=0.03,
        fp_fraction=0.42,
        ilp=2.6,
        working_set_mb=260.0,
        locality_exponent=0.5,
        branch_entropy=0.05,
        memory_level_parallelism=4.5,
        vectorizable_fraction=0.7,
        description="7-point stencil kernel from an internal HPC code",
    )
    outcome = study.explore(new_workload)
    print(f"  design points: {len(catalogue)}, simulated in detail for the new workload: "
          f"{outcome.simulations_run} (avoided {outcome.simulations_avoided})")
    print(f"  detailed-simulation budget reduced by {outcome.speedup_factor:.1f}x")
    print(f"  rank correlation of predicted vs. simulated design ranking: "
          f"{outcome.rank_correlation:.3f}")
    print(f"  mean prediction error: {outcome.mean_error_percent:.1f}%")


def main() -> None:
    dataset = build_default_dataset()
    future_hardware(dataset)
    design_space_exploration()


if __name__ == "__main__":
    main()
