"""Purchasing-decision scenario (Section 4 of the paper).

A company runs a proprietary in-house workload — here synthesised as a
pointer-chasing, cache-hungry analytics engine that is *not* part of SPEC —
and wants to buy servers for it.  They own three machines (an older Xeon, an
Opteron and a Core 2 desktop) and can measure their workload there; for
everything else only published SPEC numbers exist.

The example compares three purchase strategies:

* buy the machine with the best published suite average (current practice),
* buy the machine GA-kNN-style workload similarity points at, and
* buy the machine recommended by data transposition.

Run with:  ``python examples/purchasing_advisor.py``
"""

from __future__ import annotations

import numpy as np

from repro.applications import PurchasingAdvisor
from repro.core import DataTransposition
from repro.data import build_default_dataset, score_application
from repro.simulator import WorkloadCharacteristics

#: The proprietary application of interest: a large-footprint, irregular
#: analytics engine (mcf-like but with more branches and some FP scoring).
IN_HOUSE_APP = WorkloadCharacteristics(
    name="inhouse-analytics",
    domain="int",
    dynamic_instructions=900.0,
    memory_fraction=0.46,
    branch_fraction=0.17,
    fp_fraction=0.05,
    ilp=1.4,
    working_set_mb=420.0,
    locality_exponent=0.5,
    branch_entropy=0.3,
    memory_level_parallelism=2.2,
    vectorizable_fraction=0.05,
    description="in-house graph analytics engine (not part of SPEC)",
)

#: Machines the company already owns (one mid-2000s Xeon, one Opteron, one desktop Core 2).
OWNED_MACHINES = (
    "intel-xeon-harpertown-2",
    "amd-opteron-k10-barcelona-2",
    "intel-core-2-wolfdale-2",
)


def main() -> None:
    dataset = build_default_dataset()
    advisor = PurchasingAdvisor(
        dataset, OWNED_MACHINES, method=DataTransposition.with_mlp(epochs=250)
    )

    # Measurements the company collects on its own machines.
    owned_specs = [dataset.machine(mid) for mid in OWNED_MACHINES]
    measured = score_application(IN_HOUSE_APP, owned_specs, noise_sigma=0.03)
    print("Measured in-house application speed on owned machines:")
    for spec, value in zip(owned_specs, measured):
        print(f"  {spec.name:<40} {value:6.1f}")

    recommendation = advisor.recommend(IN_HOUSE_APP.name, measured, shortlist_size=5)

    print("\nData-transposition shortlist (predicted best first):")
    for rank, mid in enumerate(recommendation.shortlist, start=1):
        machine = dataset.machine(mid)
        print(f"  {rank}. {machine.name:<40} predicted {recommendation.ranking.score_of(mid):6.1f}")

    print(f"\nSuite-average purchase (current practice): "
          f"{dataset.machine(recommendation.suite_mean_choice).name}")

    # Ground truth (what full measurements on every candidate would show).
    candidate_specs = [dataset.machine(mid) for mid in advisor.candidate_ids()]
    actual = score_application(IN_HOUSE_APP, candidate_specs, noise_sigma=0.03)
    by_id = dict(zip(advisor.candidate_ids(), actual))
    actual_best = max(by_id, key=by_id.get)
    chosen = recommendation.recommended_machine
    deficiency = (by_id[actual_best] - by_id[chosen]) / by_id[chosen] * 100.0
    naive_deficiency = (
        (by_id[actual_best] - by_id[recommendation.suite_mean_choice])
        / by_id[recommendation.suite_mean_choice]
        * 100.0
    )
    print(f"\nActually fastest machine for the in-house app: {dataset.machine(actual_best).name}")
    print(f"Purchasing loss following data transposition: {deficiency:.1f}%")
    print(f"Purchasing loss following the suite average:  {naive_deficiency:.1f}%")
    if recommendation.differs_from_suite_mean():
        print("-> the recommendation differs from naive suite-mean purchasing.")


if __name__ == "__main__":
    main()
