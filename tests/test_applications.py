"""Tests for the applications layer (purchasing, scheduling, DSE) and the CLI."""

import numpy as np
import pytest

from repro.applications import (
    DesignSpaceStudy,
    GreedyScheduler,
    Job,
    Node,
    PurchasingAdvisor,
    Schedule,
)
from repro.core import DataTransposition
from repro.data import SPEC_CPU2006_BENCHMARKS, build_default_dataset, build_machine_catalogue, score_application
from repro.simulator import WorkloadCharacteristics


@pytest.fixture(scope="module")
def dataset():
    return build_default_dataset()


EXTERNAL_APP = WorkloadCharacteristics(
    name="external-app",
    domain="int",
    dynamic_instructions=500.0,
    memory_fraction=0.44,
    branch_fraction=0.18,
    fp_fraction=0.02,
    ilp=1.6,
    working_set_mb=200.0,
    locality_exponent=0.55,
    branch_entropy=0.3,
    memory_level_parallelism=2.0,
    vectorizable_fraction=0.05,
)


# ----------------------------------------------------------------- purchasing
def test_purchasing_advisor_recommends_fast_machine(dataset):
    owned = ("intel-xeon-harpertown-2", "amd-opteron-k10-barcelona-2", "intel-core-2-wolfdale-2")
    advisor = PurchasingAdvisor(
        dataset, owned, method=DataTransposition.with_linear_regression()
    )
    owned_specs = [dataset.machine(mid) for mid in owned]
    measured = score_application(EXTERNAL_APP, owned_specs, noise_sigma=0.0)
    recommendation = advisor.recommend(EXTERNAL_APP.name, measured, shortlist_size=5)

    assert len(recommendation.shortlist) == 5
    assert recommendation.recommended_machine not in owned
    assert set(recommendation.shortlist) <= set(advisor.candidate_ids())

    # The recommendation should be close to the true optimum for this app.
    candidate_specs = [dataset.machine(mid) for mid in advisor.candidate_ids()]
    actual = dict(zip(advisor.candidate_ids(), score_application(EXTERNAL_APP, candidate_specs, noise_sigma=0.0)))
    best_actual = max(actual.values())
    chosen_actual = actual[recommendation.recommended_machine]
    deficiency = (best_actual - chosen_actual) / chosen_actual * 100.0
    assert deficiency < 30.0


def test_purchasing_advisor_validation(dataset):
    with pytest.raises(ValueError):
        PurchasingAdvisor(dataset, ())
    with pytest.raises(KeyError):
        PurchasingAdvisor(dataset, ("not-a-machine",))
    advisor = PurchasingAdvisor(
        dataset, ("intel-xeon-harpertown-2", "amd-opteron-k10-barcelona-2"),
        method=DataTransposition.with_linear_regression(),
    )
    with pytest.raises(ValueError):
        advisor.recommend("app", [10.0, 12.0], shortlist_size=0)


def test_purchasing_recommendation_flags_disagreement(dataset):
    owned = ("intel-xeon-harpertown-2", "amd-opteron-k10-barcelona-2", "intel-core-2-wolfdale-2")
    advisor = PurchasingAdvisor(dataset, owned, method=DataTransposition.with_linear_regression())
    owned_specs = [dataset.machine(mid) for mid in owned]
    measured = score_application(EXTERNAL_APP, owned_specs, noise_sigma=0.0)
    recommendation = advisor.recommend(EXTERNAL_APP.name, measured)
    assert isinstance(recommendation.differs_from_suite_mean(), bool)
    assert recommendation.suite_mean_choice in advisor.candidate_ids()


# ----------------------------------------------------------------- scheduling
def _speed_table():
    return {
        "a": {"fast": 10.0, "slow": 2.0},
        "b": {"fast": 8.0, "slow": 4.0},
        "c": {"fast": 6.0, "slow": 6.0},
    }


def test_scheduler_prefers_faster_nodes():
    jobs = [Job("a", 100.0), Job("b", 80.0), Job("c", 60.0)]
    nodes = [Node("fast", count=1), Node("slow", count=1)]
    schedule = GreedyScheduler(_speed_table()).schedule(jobs, nodes)
    assert len(schedule.assignments) == 3
    assert schedule.makespan() > 0.0
    # job "a" is 5x faster on the fast node; a sensible schedule puts it there
    placement = {a.job.name: a.machine_id for a in schedule.assignments}
    assert placement["a"] == "fast"


def test_scheduler_balances_load_across_instances():
    speeds = {"job": {"node": 1.0}}
    jobs = [Job(f"job", 10.0)]
    # identical jobs spread over instances
    speeds = {f"j{i}": {"node": 1.0} for i in range(4)}
    jobs = [Job(f"j{i}", 10.0) for i in range(4)]
    schedule = GreedyScheduler(speeds).schedule(jobs, [Node("node", count=2)])
    assert schedule.makespan() == pytest.approx(20.0)
    instances = {a.node_instance for a in schedule.assignments}
    assert instances == {0, 1}


def test_schedule_reevaluate_with_actual_speeds():
    jobs = [Job("a", 100.0), Job("b", 80.0)]
    nodes = [Node("fast", count=1), Node("slow", count=1)]
    predicted = {"a": {"fast": 10.0, "slow": 9.0}, "b": {"fast": 10.0, "slow": 9.0}}
    actual = {"a": {"fast": 10.0, "slow": 2.0}, "b": {"fast": 8.0, "slow": 4.0}}
    plan = GreedyScheduler(predicted).schedule(jobs, nodes)
    realised = plan.reevaluate(actual)
    assert len(realised.assignments) == len(plan.assignments)
    assert realised.makespan() >= 0.0
    assert realised.total_runtime() != plan.total_runtime()


def test_scheduler_validation():
    with pytest.raises(ValueError):
        GreedyScheduler({})
    with pytest.raises(ValueError):
        GreedyScheduler({"a": {"m": 0.0}})
    scheduler = GreedyScheduler(_speed_table())
    with pytest.raises(ValueError):
        scheduler.schedule([], [Node("fast")])
    with pytest.raises(ValueError):
        scheduler.schedule([Job("a", 1.0)], [])
    with pytest.raises(KeyError):
        scheduler.schedule([Job("unknown", 1.0)], [Node("fast")])
    with pytest.raises(ValueError):
        Job("bad", 0.0)
    with pytest.raises(ValueError):
        Node("m", count=0)
    with pytest.raises(ValueError):
        GreedyScheduler.makespan_ratio(Schedule(), Schedule())


def test_scheduler_with_dataset_speeds(dataset):
    node_ids = ["intel-xeon-gainestown-2", "amd-opteron-k10-shanghai-2"]
    jobs = [Job("lbm", 20.0), Job("gcc", 10.0), Job("povray", 5.0)]
    speeds = {
        job.name: {mid: dataset.matrix.score(job.name, mid) for mid in node_ids} for job in jobs
    }
    schedule = GreedyScheduler(speeds).schedule(jobs, [Node(mid) for mid in node_ids])
    assert schedule.makespan() > 0.0
    assert sum(schedule.jobs_per_machine().values()) == 3


# ------------------------------------------------------------------------ DSE
def test_design_space_study_accuracy_and_accounting():
    design_points = [m for m in build_machine_catalogue() if m.machine_id.endswith("-2")][:20]
    study = DesignSpaceStudy(
        design_points=design_points,
        benchmarks=list(SPEC_CPU2006_BENCHMARKS),
        predictive_count=4,
        seed=0,
    )
    outcome = study.explore(EXTERNAL_APP)
    assert outcome.simulations_run == 4
    assert outcome.simulations_avoided == 16
    assert outcome.speedup_factor == pytest.approx(5.0)
    assert len(outcome.predicted_scores) == 16
    assert outcome.rank_correlation > 0.6
    assert outcome.mean_error_percent < 50.0


def test_design_space_study_validation():
    design_points = build_machine_catalogue()[:6]
    benchmarks = list(SPEC_CPU2006_BENCHMARKS)
    with pytest.raises(ValueError):
        DesignSpaceStudy(design_points[:2], benchmarks)
    with pytest.raises(ValueError):
        DesignSpaceStudy(design_points, benchmarks, predictive_count=1)
    with pytest.raises(ValueError):
        DesignSpaceStudy(design_points, benchmarks, predictive_count=6)


# ------------------------------------------------------------------------ CLI
def test_cli_runs_smoke_table2(capsys):
    from repro.cli import main

    exit_code = main(["table2", "--preset", "smoke"])
    assert exit_code == 0
    captured = capsys.readouterr()
    assert "Table 2" in captured.out
    assert "GA-kNN" in captured.out
