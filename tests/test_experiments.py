"""Tests for the experiment harness (smoke-size configurations)."""

import pytest

from repro.data import build_default_dataset
from repro.experiments import (
    ERAS,
    ExperimentConfig,
    GAKNN,
    MLPT,
    NNT,
    figure6_series,
    figure7_series,
    format_figure8,
    format_figure_series,
    format_table2,
    format_table3,
    format_table4,
    run_figure8,
    run_table2,
    run_table3,
    run_table4,
)


@pytest.fixture(scope="module")
def dataset():
    return build_default_dataset()


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig.smoke()


@pytest.fixture(scope="module")
def table2_result(dataset, config):
    return run_table2(dataset, config)


# --------------------------------------------------------------------- config
def test_config_presets_are_valid():
    for preset in (ExperimentConfig.full(), ExperimentConfig.fast(), ExperimentConfig.smoke()):
        assert preset.mlp_epochs >= 1
        assert preset.ga_config().population_size >= 2
    assert ExperimentConfig.fast().applications is not None
    assert ExperimentConfig.full().applications is None


def test_config_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(mlp_epochs=0)
    with pytest.raises(ValueError):
        ExperimentConfig(ga_population=1)
    with pytest.raises(ValueError):
        ExperimentConfig(ga_generations=0)
    with pytest.raises(ValueError):
        ExperimentConfig(knn_neighbours=0)
    with pytest.raises(ValueError):
        ExperimentConfig(figure8_random_draws=0)
    with pytest.raises(ValueError):
        ExperimentConfig(figure8_max_predictive=0)


def test_fast_preset_contains_paper_outliers():
    apps = set(ExperimentConfig.fast().applications)
    assert {"leslie3d", "cactusADM", "libquantum"} <= apps


# --------------------------------------------------------------------- table 2
def test_table2_structure(table2_result):
    assert table2_result.n_splits == 17
    assert set(table2_result.summaries) == {NNT, MLPT, GAKNN}
    for summary in table2_result.summaries.values():
        assert summary.cells == 17 * table2_result.n_applications
        assert -1.0 <= summary.rank_correlation.mean <= 1.0
        assert summary.top1_error.mean >= 0.0
    assert table2_result.best_method_by_rank_correlation() in {NNT, MLPT, GAKNN}
    rows = table2_result.as_rows()
    assert len(rows) == 3
    assert {"method", "rank_correlation", "top1_error", "mean_error"} <= set(rows[0])


def test_table2_report_renders(table2_result):
    text = format_table2(table2_result)
    assert "Table 2" in text
    assert "paper reports" in text
    for method in (NNT, MLPT, GAKNN):
        assert method in text


# ----------------------------------------------------------------- figures 6/7
def test_figure6_and_7_reuse_table2_cells(table2_result):
    fig6 = figure6_series(table2=table2_result)
    fig7 = figure7_series(table2=table2_result)
    assert fig6.benchmarks == fig7.benchmarks
    assert set(fig6.series) == {NNT, MLPT, GAKNN}
    for method in fig6.series:
        assert len(fig6.series[method]) == len(fig6.benchmarks)
        assert fig6.minimum(method) <= fig6.average(method) <= 1.0
        assert fig7.maximum(method) >= fig7.average(method) >= 0.0
    benchmark = fig6.benchmarks[0]
    assert fig6.value(NNT, benchmark) == pytest.approx(
        table2_result.results[NNT].per_application()[benchmark]["rank_correlation"]
    )
    worst = fig6.worst_benchmark(GAKNN, higher_is_better=True)
    assert worst in fig6.benchmarks
    text = format_figure_series(fig6, "Figure 6", higher_is_better=True)
    assert "Minimum" in text and "Average" in text
    text7 = format_figure_series(fig7, "Figure 7", higher_is_better=False)
    assert "Maximum" in text7


# --------------------------------------------------------------------- table 3
def test_table3_structure(dataset, config):
    result = run_table3(dataset, config)
    assert set(result.summaries) == set(ERAS)
    for era in ERAS:
        assert set(result.summaries[era]) == {NNT, MLPT, GAKNN}
    trend = result.era_trend(NNT)
    assert len(trend) == 3
    assert all(-1.0 <= value <= 1.0 for value in trend)
    text = format_table3(result)
    assert "2008" in text and "older" in text


# --------------------------------------------------------------------- table 4
def test_table4_structure(dataset, config):
    result = run_table4(dataset, config, subset_sizes=(5, 3))
    assert set(result.summaries) == {5, 3}
    assert result.splits[5].n_predictive == 5
    assert result.splits[3].n_predictive == 3
    degradation = result.degradation(NNT)
    assert isinstance(degradation, float)
    text = format_table4(result)
    assert "predictive subset size" in text


# -------------------------------------------------------------------- figure 8
def test_figure8_structure(dataset, config):
    result = run_figure8(dataset, config)
    assert result.sizes[0] == 2
    assert len(result.sizes) == len(result.kmedoids_r2) == len(result.random_r2)
    assert all(value <= 1.0 for value in result.kmedoids_r2)
    assert all(value <= 1.0 for value in result.random_r2)
    advantage = result.advantage(result.sizes[0])
    assert isinstance(advantage, float)
    text = format_figure8(result)
    assert "k-medoids" in text
