"""Tests for repro.ml.kmedoids, preprocessing and model_selection."""

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    GridSearch,
    KFold,
    KMedoids,
    MinMaxScaler,
    StandardScaler,
    train_test_split,
)


# ------------------------------------------------------------------ kmedoids
def _three_blobs(seed=0):
    rng = np.random.default_rng(seed)
    centres = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
    points = np.vstack([centre + rng.normal(scale=0.5, size=(20, 2)) for centre in centres])
    return points


def test_kmedoids_recovers_three_blobs():
    points = _three_blobs()
    model = KMedoids(n_clusters=3, seed=0).fit(points)
    labels = model.labels_
    # points 0-19, 20-39, 40-59 should each be in a single cluster
    for start in (0, 20, 40):
        block = labels[start : start + 20]
        assert len(set(block.tolist())) == 1
    # and the three blocks should be three distinct clusters
    assert len({labels[0], labels[20], labels[40]}) == 3


def test_kmedoids_medoids_are_members_of_their_cluster():
    points = _three_blobs(seed=1)
    model = KMedoids(n_clusters=3, seed=1).fit(points)
    for cluster, medoid in enumerate(model.medoid_indices_):
        assert model.labels_[medoid] == cluster


def test_kmedoids_single_cluster():
    points = np.array([[0.0], [1.0], [2.0], [100.0]])
    model = KMedoids(n_clusters=1, seed=0).fit(points)
    assert model.medoid_indices_.size == 1
    assert set(model.labels_.tolist()) == {0}


def test_kmedoids_k_equals_n_points():
    points = np.array([[0.0], [5.0], [10.0]])
    model = KMedoids(n_clusters=3, seed=0).fit(points)
    assert sorted(model.medoid_indices_.tolist()) == [0, 1, 2]
    assert model.inertia_ == pytest.approx(0.0)


def test_kmedoids_deterministic_given_seed():
    points = _three_blobs(seed=2)
    a = KMedoids(n_clusters=3, seed=3).fit(points)
    b = KMedoids(n_clusters=3, seed=3).fit(points)
    assert np.array_equal(a.medoid_indices_, b.medoid_indices_)


def test_kmedoids_invalid_parameters():
    with pytest.raises(ValueError):
        KMedoids(n_clusters=0)
    with pytest.raises(ValueError):
        KMedoids(n_clusters=2, max_iterations=0)
    with pytest.raises(ValueError):
        KMedoids(n_clusters=5).fit([[0.0], [1.0]])
    with pytest.raises(ValueError):
        KMedoids(n_clusters=1).fit([0.0, 1.0])


def test_kmedoids_fit_predict_matches_labels():
    points = _three_blobs(seed=4)
    model = KMedoids(n_clusters=3, seed=4)
    labels = model.fit_predict(points)
    assert np.array_equal(labels, model.labels_)


# ---------------------------------------------------------------- scalers
def test_standard_scaler_zero_mean_unit_variance():
    rng = np.random.default_rng(0)
    data = rng.normal(5.0, 3.0, size=(100, 4))
    scaled = StandardScaler().fit_transform(data)
    assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)


def test_standard_scaler_inverse_round_trip():
    rng = np.random.default_rng(1)
    data = rng.normal(size=(30, 3))
    scaler = StandardScaler().fit(data)
    assert np.allclose(scaler.inverse_transform(scaler.transform(data)), data)


def test_standard_scaler_constant_feature_no_nan():
    data = np.array([[1.0, 5.0], [1.0, 6.0], [1.0, 7.0]])
    scaled = StandardScaler().fit_transform(data)
    assert np.all(np.isfinite(scaled))
    assert np.allclose(scaled[:, 0], 0.0)


def test_minmax_scaler_range():
    rng = np.random.default_rng(2)
    data = rng.uniform(-50, 50, size=(40, 3))
    scaled = MinMaxScaler((-1.0, 1.0)).fit_transform(data)
    assert scaled.min() >= -1.0 - 1e-12
    assert scaled.max() <= 1.0 + 1e-12
    assert np.allclose(scaled.min(axis=0), -1.0)
    assert np.allclose(scaled.max(axis=0), 1.0)


def test_minmax_scaler_inverse_round_trip():
    rng = np.random.default_rng(3)
    data = rng.uniform(size=(20, 2))
    scaler = MinMaxScaler((-1.0, 1.0)).fit(data)
    assert np.allclose(scaler.inverse_transform(scaler.transform(data)), data)


def test_scalers_reject_unfit_usage_and_bad_input():
    with pytest.raises(RuntimeError):
        StandardScaler().transform(np.ones((2, 2)))
    with pytest.raises(RuntimeError):
        MinMaxScaler().transform(np.ones((2, 2)))
    with pytest.raises(ValueError):
        StandardScaler().fit(np.ones(3))
    with pytest.raises(ValueError):
        MinMaxScaler((1.0, 1.0))


# --------------------------------------------------------- model selection
def test_train_test_split_disjoint_and_complete():
    train, test = train_test_split(20, test_fraction=0.25, seed=0)
    assert len(set(train.tolist()) & set(test.tolist())) == 0
    assert sorted(train.tolist() + test.tolist()) == list(range(20))
    assert len(test) == 5


def test_train_test_split_invalid_args():
    with pytest.raises(ValueError):
        train_test_split(1)
    with pytest.raises(ValueError):
        train_test_split(10, test_fraction=0.0)


def test_kfold_covers_all_indices_once():
    folds = list(KFold(n_splits=4, seed=0).split(17))
    assert len(folds) == 4
    all_test = np.concatenate([test for _, test in folds])
    assert sorted(all_test.tolist()) == list(range(17))
    for train, test in folds:
        assert len(set(train.tolist()) & set(test.tolist())) == 0


def test_kfold_invalid_configuration():
    with pytest.raises(ValueError):
        KFold(n_splits=1)
    with pytest.raises(ValueError):
        list(KFold(n_splits=10).split(5))


def test_grid_search_finds_best_parameters():
    def evaluate(params):
        return -((params["x"] - 3) ** 2) - ((params["y"] - 1) ** 2)

    search = GridSearch(evaluate, {"x": [1, 2, 3, 4], "y": [0, 1, 2]}, maximize=True)
    result = search.run()
    assert result.best_params == {"x": 3, "y": 1}
    assert result.best_score == pytest.approx(0.0)
    assert len(result.all_scores) == 12


def test_grid_search_minimize_mode():
    search = GridSearch(lambda p: abs(p["x"] - 2), {"x": [0, 1, 2, 3]}, maximize=False)
    assert search.run().best_params == {"x": 2}


def test_grid_search_rejects_empty_grid():
    with pytest.raises(ValueError):
        GridSearch(lambda p: 0.0, {})
    with pytest.raises(ValueError):
        GridSearch(lambda p: 0.0, {"x": []})


@given(st.integers(min_value=2, max_value=200), st.floats(min_value=0.05, max_value=0.95))
@settings(max_examples=50, deadline=None)
def test_train_test_split_property(n, fraction):
    train, test = train_test_split(n, test_fraction=fraction, seed=1)
    assert len(train) + len(test) == n
    assert len(train) >= 1
    assert len(test) >= 1
