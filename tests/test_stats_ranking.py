"""Tests for repro.stats.ranking."""

import numpy as np
import pytest
import scipy.stats

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import average_ranks, rank_agreement, rankdata, top_n_indices


def test_rankdata_simple():
    assert rankdata([10.0, 30.0, 20.0]).tolist() == [1.0, 3.0, 2.0]


def test_rankdata_ties_get_average_rank():
    ranks = rankdata([5.0, 5.0, 1.0])
    assert ranks.tolist() == [2.5, 2.5, 1.0]


def test_rankdata_matches_scipy():
    rng = np.random.default_rng(3)
    values = rng.integers(0, 10, size=40).astype(float)
    expected = scipy.stats.rankdata(values)
    assert np.allclose(rankdata(values), expected)


def test_rankdata_empty():
    assert rankdata([]).size == 0


def test_rankdata_rejects_2d():
    with pytest.raises(ValueError):
        rankdata(np.ones((2, 3)))


def test_top_n_indices_orders_best_first():
    values = [3.0, 9.0, 1.0, 7.0]
    assert top_n_indices(values, 2).tolist() == [1, 3]


def test_top_n_indices_ties_prefer_earlier_index():
    values = [5.0, 5.0, 1.0]
    assert top_n_indices(values, 1).tolist() == [0]


def test_top_n_indices_clamps_to_length():
    assert top_n_indices([1.0, 2.0], 10).size == 2


def test_top_n_indices_rejects_nonpositive_n():
    with pytest.raises(ValueError):
        top_n_indices([1.0], 0)


def test_average_ranks():
    averaged = average_ranks([[1.0, 2.0, 3.0], [3.0, 2.0, 1.0]])
    assert averaged.tolist() == [2.0, 2.0, 2.0]


def test_average_ranks_requires_input():
    with pytest.raises(ValueError):
        average_ranks([])


def test_rank_agreement_perfect():
    assert rank_agreement([1.0, 5.0, 3.0], [2.0, 9.0, 4.0], n=1) == 1.0


def test_rank_agreement_zero():
    assert rank_agreement([9.0, 1.0, 1.0], [1.0, 1.0, 9.0], n=1) == 0.0


def test_rank_agreement_partial():
    predicted = [4.0, 3.0, 2.0, 1.0]
    actual = [4.0, 1.0, 3.0, 2.0]
    assert rank_agreement(predicted, actual, n=2) == pytest.approx(0.5)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_rankdata_is_permutation_of_expected_sum(values):
    ranks = rankdata(values)
    n = len(values)
    # ranks always sum to n(n+1)/2 regardless of ties
    assert ranks.sum() == pytest.approx(n * (n + 1) / 2)
    assert ranks.min() >= 1.0
    assert ranks.max() <= n


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
    st.integers(min_value=1, max_value=10),
)
@settings(max_examples=60, deadline=None)
def test_top_n_indices_returns_actual_maxima(values, n):
    idx = top_n_indices(values, n)
    arr = np.asarray(values)
    chosen = sorted(arr[idx].tolist(), reverse=True)
    expected = sorted(arr.tolist(), reverse=True)[: len(idx)]
    assert chosen == expected
