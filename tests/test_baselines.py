"""Tests for the GA-kNN, naive and proxy baselines."""

import numpy as np
import pytest

from repro.baselines import (
    DomainMeanBaseline,
    GAKNNBaseline,
    MostSimilarBenchmarkBaseline,
    SuiteMeanBaseline,
)
from repro.core import MachineRanking, actual_ranking, compare_rankings
from repro.data import build_default_dataset, family_cross_validation_splits, temporal_split
from repro.ml import GAConfig
from repro.stats import spearman_correlation


@pytest.fixture(scope="module")
def dataset():
    return build_default_dataset()


@pytest.fixture(scope="module")
def split(dataset):
    return temporal_split(dataset, target_year=2009, predictive_years=[2008])


def _training(dataset, application):
    return [name for name in dataset.benchmark_names if name != application]


FAST_GA = GAConfig(population_size=10, generations=4)


# ------------------------------------------------------------------- GA-kNN
def test_ga_knn_predicts_reasonable_ranking_for_typical_benchmark(dataset, split):
    baseline = GAKNNBaseline(ga_config=FAST_GA, seed=0)
    predicted = baseline.predict_application_scores(dataset, split, "gcc", _training(dataset, "gcc"))
    assert predicted.shape == (split.n_target,)
    reference = actual_ranking(dataset, split, "gcc")
    comparison = compare_rankings(
        MachineRanking.from_scores(split.target_ids, predicted), reference
    )
    assert comparison.rank_correlation > 0.6


def test_ga_knn_learns_nonuniform_weights(dataset, split):
    baseline = GAKNNBaseline(ga_config=FAST_GA, seed=1)
    baseline.predict_application_scores(dataset, split, "milc", _training(dataset, "milc"))
    weights = baseline.learned_weights_
    assert weights is not None
    assert weights.shape == (7,)
    assert np.all(weights >= 0.0)
    assert np.ptp(weights) > 0.0


def test_ga_knn_without_weight_learning_uses_uniform_weights(dataset, split):
    baseline = GAKNNBaseline(learn_weights=False)
    predicted = baseline.predict_application_scores(dataset, split, "gcc", _training(dataset, "gcc"))
    assert np.all(baseline.learned_weights_ == 1.0)
    assert predicted.shape == (split.n_target,)


def test_ga_knn_prediction_is_weighted_average_of_benchmark_scores(dataset, split):
    baseline = GAKNNBaseline(learn_weights=False)
    predicted = baseline.predict_application_scores(dataset, split, "wrf", _training(dataset, "wrf"))
    training_matrix = dataset.matrix.select_benchmarks(_training(dataset, "wrf")).select_machines(
        split.target_ids
    )
    lower = training_matrix.scores.min(axis=0)
    upper = training_matrix.scores.max(axis=0)
    assert np.all(predicted >= lower - 1e-9)
    assert np.all(predicted <= upper + 1e-9)


def test_ga_knn_struggles_more_on_outlier_benchmark_than_transposition(dataset):
    """The paper's central claim: outlier workloads hurt workload-similarity methods."""
    from repro.core import DataTransposition

    xeon_split = next(
        s for s in family_cross_validation_splits(dataset) if "Intel Xeon" in s.name
    )
    application = "libquantum"  # streaming outlier whose MICA profile looks like pointer-chasing codes
    training = _training(dataset, application)
    reference = actual_ranking(dataset, xeon_split, application)

    ga_scores = GAKNNBaseline(ga_config=FAST_GA, seed=0).predict_application_scores(
        dataset, xeon_split, application, training
    )
    nnt = DataTransposition.with_linear_regression()
    nnt_scores = nnt.predict_scores(dataset, xeon_split, application).predicted_scores

    ga_cmp = compare_rankings(MachineRanking.from_scores(xeon_split.target_ids, ga_scores), reference)
    nnt_cmp = compare_rankings(
        MachineRanking.from_scores(xeon_split.target_ids, nnt_scores), reference
    )
    assert nnt_cmp.mean_error_percent < ga_cmp.mean_error_percent


def test_ga_knn_validation():
    with pytest.raises(ValueError):
        GAKNNBaseline(k=0)


def test_ga_knn_requires_training_benchmarks(dataset, split):
    baseline = GAKNNBaseline(ga_config=FAST_GA)
    with pytest.raises(ValueError):
        baseline.predict_application_scores(dataset, split, "gcc", ["gcc"])


def test_ga_knn_seed_reproducibility(dataset, split):
    a = GAKNNBaseline(ga_config=FAST_GA, seed=5).predict_application_scores(
        dataset, split, "astar", _training(dataset, "astar")
    )
    b = GAKNNBaseline(ga_config=FAST_GA, seed=5).predict_application_scores(
        dataset, split, "astar", _training(dataset, "astar")
    )
    assert np.array_equal(a, b)


# ------------------------------------------------------------ naive baselines
def test_suite_mean_baseline_ignores_application(dataset, split):
    baseline = SuiteMeanBaseline()
    a = baseline.predict_application_scores(dataset, split, "gcc", _training(dataset, "gcc"))
    b = baseline.predict_application_scores(dataset, split, "lbm", _training(dataset, "lbm"))
    # only the left-out benchmark differs between the two training sets
    assert spearman_correlation(a, b) > 0.95


def test_suite_mean_matches_matrix_mean(dataset, split):
    baseline = SuiteMeanBaseline()
    predicted = baseline.predict_application_scores(dataset, split, "gcc", _training(dataset, "gcc"))
    expected = (
        dataset.matrix.select_benchmarks(_training(dataset, "gcc"))
        .select_machines(split.target_ids)
        .scores.mean(axis=0)
    )
    assert np.allclose(predicted, expected)


def test_domain_mean_baseline_uses_same_domain_benchmarks(dataset, split):
    baseline = DomainMeanBaseline()
    predicted_fp = baseline.predict_application_scores(dataset, split, "lbm", _training(dataset, "lbm"))
    fp_names = [
        name
        for name in _training(dataset, "lbm")
        if dataset.benchmark(name).domain == "fp"
    ]
    expected = (
        dataset.matrix.select_benchmarks(fp_names).select_machines(split.target_ids).scores.mean(axis=0)
    )
    assert np.allclose(predicted_fp, expected)


def test_domain_mean_falls_back_to_suite_when_domain_empty(dataset, split):
    baseline = DomainMeanBaseline()
    int_only = [name for name in dataset.benchmark_names if dataset.benchmark(name).domain == "int"]
    # application is fp but the training suite has no fp benchmarks
    predicted = baseline.predict_application_scores(dataset, split, "lbm", int_only)
    suite = SuiteMeanBaseline().predict_application_scores(dataset, split, "lbm", int_only)
    assert np.allclose(predicted, suite)


# ---------------------------------------------------------------- proxy
def test_proxy_baseline_picks_similar_benchmark(dataset, split):
    baseline = MostSimilarBenchmarkBaseline()
    predicted = baseline.predict_application_scores(
        dataset, split, "leslie3d", _training(dataset, "leslie3d")
    )
    assert baseline.chosen_proxy_ in dataset.benchmark_names
    assert baseline.chosen_proxy_ != "leslie3d"
    # leslie3d's nearest neighbours are the other streaming fp codes
    assert dataset.benchmark(baseline.chosen_proxy_).is_memory_bound()
    proxy_scores = [
        dataset.matrix.score(baseline.chosen_proxy_, mid) for mid in split.target_ids
    ]
    assert np.allclose(predicted, proxy_scores)


def test_proxy_baseline_requires_training_benchmarks(dataset, split):
    baseline = MostSimilarBenchmarkBaseline()
    with pytest.raises(ValueError):
        baseline.predict_application_scores(dataset, split, "gcc", ["gcc"])
