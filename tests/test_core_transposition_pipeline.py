"""Tests for DataTransposition, rankings, selection, results and the pipeline."""

import numpy as np
import pytest

from repro.baselines import GAKNNBaseline, SuiteMeanBaseline
from repro.core import (
    CellResult,
    DataTransposition,
    LinearTranspositionPredictor,
    MachineRanking,
    MethodResults,
    TranspositionMethod,
    actual_ranking,
    compare_rankings,
    machine_feature_matrix,
    run_cross_validation,
    select_farthest_point,
    select_k_medoids,
    select_random,
)
from repro.data import build_default_dataset, family_cross_validation_splits, temporal_split


@pytest.fixture(scope="module")
def dataset():
    return build_default_dataset()


@pytest.fixture(scope="module")
def xeon_split(dataset):
    splits = family_cross_validation_splits(dataset)
    return next(s for s in splits if "Intel Xeon" in s.name)


# -------------------------------------------------------------- MachineRanking
def test_machine_ranking_ordering_and_top():
    ranking = MachineRanking.from_scores(["a", "b", "c"], [5.0, 9.0, 7.0])
    assert ranking.ordered_ids() == ["b", "c", "a"]
    assert ranking.top(2) == ["b", "c"]
    assert ranking.score_of("c") == 7.0
    with pytest.raises(KeyError):
        ranking.score_of("z")


def test_machine_ranking_validation():
    with pytest.raises(ValueError):
        MachineRanking(machine_ids=("a",), scores=(1.0, 2.0))
    with pytest.raises(ValueError):
        MachineRanking(machine_ids=(), scores=())
    with pytest.raises(ValueError):
        MachineRanking(machine_ids=("a", "a"), scores=(1.0, 2.0))


def test_compare_rankings_perfect_prediction():
    actual = MachineRanking.from_scores(["a", "b", "c"], [10.0, 30.0, 20.0])
    comparison = compare_rankings(actual, actual)
    assert comparison.rank_correlation == pytest.approx(1.0)
    assert comparison.top1_error_percent == 0.0
    assert comparison.mean_error_percent == 0.0
    assert comparison.predicted_best_is_actual_best


def test_compare_rankings_wrong_top_machine():
    predicted = MachineRanking.from_scores(["a", "b", "c"], [30.0, 10.0, 20.0])
    actual = MachineRanking.from_scores(["a", "b", "c"], [10.0, 30.0, 20.0])
    comparison = compare_rankings(predicted, actual)
    assert comparison.rank_correlation < 0.0
    assert comparison.top1_error_percent == pytest.approx((30.0 - 10.0) / 10.0 * 100.0)
    assert not comparison.predicted_best_is_actual_best


def test_compare_rankings_requires_same_machines():
    a = MachineRanking.from_scores(["a", "b"], [1.0, 2.0])
    b = MachineRanking.from_scores(["a", "c"], [1.0, 2.0])
    with pytest.raises(ValueError):
        compare_rankings(a, b)


def test_compare_rankings_handles_different_machine_order():
    predicted = MachineRanking.from_scores(["c", "a", "b"], [20.0, 10.0, 30.0])
    actual = MachineRanking.from_scores(["a", "b", "c"], [11.0, 33.0, 22.0])
    comparison = compare_rankings(predicted, actual)
    assert comparison.rank_correlation == pytest.approx(1.0)
    assert comparison.top1_error_percent == 0.0


# ------------------------------------------------------------ DataTransposition
def test_data_transposition_nnt_predicts_suite_benchmark(dataset, xeon_split):
    method = DataTransposition.with_linear_regression()
    result = method.predict_scores(dataset, xeon_split, "gcc")
    assert result.application == "gcc"
    assert len(result.predicted_scores) == xeon_split.n_target
    reference = actual_ranking(dataset, xeon_split, "gcc")
    comparison = compare_rankings(result.ranking(), reference)
    assert comparison.rank_correlation > 0.8
    assert comparison.mean_error_percent < 30.0


def test_data_transposition_default_is_mlp():
    method = DataTransposition()
    assert method.predictor.__class__.__name__ == "MLPTranspositionPredictor"


def test_data_transposition_rank_machines_returns_ranking(dataset, xeon_split):
    method = DataTransposition.with_linear_regression()
    ranking = method.rank_machines(dataset, xeon_split, "mcf")
    assert set(ranking.machine_ids) == set(xeon_split.target_ids)
    assert len(ranking.top(3)) == 3


def test_data_transposition_with_explicit_app_measurements(dataset, xeon_split):
    method = DataTransposition.with_linear_regression()
    app_scores = dataset.matrix.benchmark_scores("astar")
    index = {mid: i for i, mid in enumerate(dataset.machine_ids)}
    measured = [app_scores[index[mid]] for mid in xeon_split.predictive_ids]
    result = method.predict_scores(
        dataset, xeon_split, "astar", app_scores_predictive=measured
    )
    default = method.predict_scores(dataset, xeon_split, "astar")
    assert np.allclose(result.predicted_scores, default.predicted_scores)


def test_data_transposition_argument_validation(dataset, xeon_split):
    method = DataTransposition.with_linear_regression()
    with pytest.raises(ValueError):
        method.predict_scores(
            dataset, xeon_split, "gcc", training_benchmarks=["gcc", "mcf"]
        )
    with pytest.raises(ValueError):
        method.predict_scores(dataset, xeon_split, "gcc", training_benchmarks=[])
    with pytest.raises(ValueError):
        method.predict_scores(
            dataset, xeon_split, "gcc", app_scores_predictive=[1.0, 2.0]
        )


# ------------------------------------------------------------------ selection
def test_select_random_properties(dataset):
    ids = dataset.machine_ids
    chosen = select_random(ids, 5, seed=0)
    assert len(chosen) == 5
    assert len(set(chosen)) == 5
    assert all(mid in ids for mid in chosen)
    assert select_random(ids, 5, seed=0) == chosen
    with pytest.raises(ValueError):
        select_random(ids, 0)
    with pytest.raises(ValueError):
        select_random(ids[:3], 5)


def test_select_k_medoids_returns_diverse_machines(dataset):
    candidates = [mid for mid in dataset.machine_ids if dataset.machine(mid).release_year <= 2008]
    chosen = select_k_medoids(dataset, candidates, 4, seed=0)
    assert len(chosen) == 4
    families = {dataset.machine(mid).family for mid in chosen}
    assert len(families) >= 2  # medoids span multiple families / micro-architectures
    with pytest.raises(ValueError):
        select_k_medoids(dataset, candidates, 0)


def test_select_farthest_point(dataset):
    candidates = dataset.machine_ids[:30]
    chosen = select_farthest_point(dataset, candidates, 5, seed=1)
    assert len(chosen) == len(set(chosen)) == 5
    with pytest.raises(ValueError):
        select_farthest_point(dataset, candidates, 0)
    with pytest.raises(ValueError):
        select_farthest_point(dataset, candidates[:2], 5)


def test_machine_feature_matrix_standardised(dataset):
    features = machine_feature_matrix(dataset, dataset.machine_ids[:20])
    assert features.shape == (20, 29)
    assert np.allclose(features.mean(axis=0), 0.0, atol=1e-9)
    with pytest.raises(ValueError):
        machine_feature_matrix(dataset, [])


# -------------------------------------------------------------------- results
def test_method_results_summary_and_breakdown():
    results = MethodResults(method="demo")
    results.extend(
        [
            CellResult("demo", "s1", "gcc", 0.9, 5.0, 4.0),
            CellResult("demo", "s2", "gcc", 0.7, 15.0, 8.0),
            CellResult("demo", "s1", "mcf", 0.5, 50.0, 20.0),
        ]
    )
    summary = results.summary()
    assert summary.cells == 3
    assert summary.rank_correlation.mean == pytest.approx(0.7)
    assert summary.rank_correlation.worst == pytest.approx(0.5)
    assert summary.top1_error.worst == pytest.approx(50.0)
    row = summary.as_table_row()
    assert row["method"] == "demo"
    breakdown = results.per_application()
    assert breakdown["gcc"]["rank_correlation"] == pytest.approx(0.8)
    assert results.worst_application("rank_correlation") == "mcf"
    assert results.worst_application("top1_error_percent") == "mcf"


def test_method_results_validation():
    results = MethodResults(method="demo")
    with pytest.raises(ValueError):
        results.add(CellResult("other", "s", "gcc", 0.9, 1.0, 1.0))
    with pytest.raises(ValueError):
        results.summary()
    with pytest.raises(ValueError):
        results.per_application()
    results.add(CellResult("demo", "s", "gcc", 0.9, 1.0, 1.0))
    with pytest.raises(ValueError):
        results.worst_application("bogus")


# ------------------------------------------------------------------- pipeline
def test_run_cross_validation_small_slice(dataset):
    split = temporal_split(dataset, target_year=2009, predictive_years=[2008])
    methods = {
        "NN^T": TranspositionMethod(lambda: LinearTranspositionPredictor(), "NN^T"),
        "suite-mean": SuiteMeanBaseline(),
    }
    results = run_cross_validation(dataset, [split], methods, applications=["libquantum", "leslie3d"])
    assert set(results) == {"NN^T", "suite-mean"}
    for method_results in results.values():
        assert len(method_results.cells) == 2
    nnt = results["NN^T"].summary()
    assert nnt.rank_correlation.mean > 0.6


def test_run_cross_validation_validation_errors(dataset):
    split = temporal_split(dataset, target_year=2009, predictive_years=[2008])
    methods = {"suite-mean": SuiteMeanBaseline()}
    with pytest.raises(ValueError):
        run_cross_validation(dataset, [], methods)
    with pytest.raises(ValueError):
        run_cross_validation(dataset, [split], {})
    with pytest.raises(ValueError):
        run_cross_validation(dataset, [split], methods, applications=["not-a-benchmark"])


def test_actual_ranking_matches_matrix(dataset, xeon_split):
    ranking = actual_ranking(dataset, xeon_split, "lbm")
    best = ranking.top(1)[0]
    scores = [dataset.matrix.score("lbm", mid) for mid in xeon_split.target_ids]
    assert dataset.matrix.score("lbm", best) == max(scores)


def test_transposition_method_adapter_uses_fresh_predictor(dataset, xeon_split):
    calls = []

    def factory():
        predictor = LinearTranspositionPredictor()
        calls.append(predictor)
        return predictor

    method = TranspositionMethod(factory, "NN^T")
    method.predict_application_scores(dataset, xeon_split, "gcc", [n for n in dataset.benchmark_names if n != "gcc"])
    method.predict_application_scores(dataset, xeon_split, "mcf", [n for n in dataset.benchmark_names if n != "mcf"])
    assert len(calls) == 2
    assert calls[0] is not calls[1]
