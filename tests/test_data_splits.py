"""Tests for the cross-validation splitters."""

import pytest

from repro.data import (
    MachineSplit,
    build_default_dataset,
    family_cross_validation_splits,
    leave_one_benchmark_out,
    predictive_subset_split,
    temporal_split,
)


@pytest.fixture(scope="module")
def dataset():
    return build_default_dataset()


def test_machine_split_validation():
    with pytest.raises(ValueError):
        MachineSplit("empty-pred", (), ("m1",))
    with pytest.raises(ValueError):
        MachineSplit("empty-target", ("m1",), ())
    with pytest.raises(ValueError):
        MachineSplit("overlap", ("m1", "m2"), ("m2", "m3"))
    split = MachineSplit("ok", ("m1", "m2"), ("m3",))
    assert split.n_predictive == 2
    assert split.n_target == 1


def test_family_cross_validation_yields_17_disjoint_splits(dataset):
    splits = family_cross_validation_splits(dataset)
    assert len(splits) == 17
    for split in splits:
        assert set(split.predictive_ids).isdisjoint(split.target_ids)
        assert split.n_predictive + split.n_target == 117
        # every target machine belongs to the same family, which is absent
        # from the predictive set
        family = dataset.machine(split.target_ids[0]).family
        assert all(dataset.machine(mid).family == family for mid in split.target_ids)
        assert all(dataset.machine(mid).family != family for mid in split.predictive_ids)


def test_family_splits_cover_every_machine_as_target_once(dataset):
    splits = family_cross_validation_splits(dataset)
    all_targets = [mid for split in splits for mid in split.target_ids]
    assert sorted(all_targets) == sorted(dataset.machine_ids)


def test_temporal_split_with_explicit_years(dataset):
    split = temporal_split(dataset, target_year=2009, predictive_years=[2008])
    assert all(dataset.machine(mid).release_year == 2009 for mid in split.target_ids)
    assert all(dataset.machine(mid).release_year == 2008 for mid in split.predictive_ids)
    assert split.n_target >= 9
    assert split.n_predictive >= 18


def test_temporal_split_with_before_cutoff(dataset):
    split = temporal_split(dataset, target_year=2009, predictive_before=2007)
    assert all(dataset.machine(mid).release_year < 2007 for mid in split.predictive_ids)
    assert split.n_predictive > 0


def test_temporal_split_argument_validation(dataset):
    with pytest.raises(ValueError):
        temporal_split(dataset)
    with pytest.raises(ValueError):
        temporal_split(dataset, predictive_years=[2008], predictive_before=2008)
    with pytest.raises(ValueError):
        temporal_split(dataset, target_year=2009, predictive_years=[2009])
    with pytest.raises(ValueError):
        temporal_split(dataset, target_year=2009, predictive_before=2010)


def test_predictive_subset_split_sizes(dataset):
    for size in (10, 5, 3):
        split = predictive_subset_split(dataset, subset_size=size, seed=1)
        assert split.n_predictive == size
        assert all(dataset.machine(mid).release_year == 2008 for mid in split.predictive_ids)
        assert all(dataset.machine(mid).release_year == 2009 for mid in split.target_ids)


def test_predictive_subset_split_is_seeded(dataset):
    a = predictive_subset_split(dataset, subset_size=5, seed=7)
    b = predictive_subset_split(dataset, subset_size=5, seed=7)
    c = predictive_subset_split(dataset, subset_size=5, seed=8)
    assert a.predictive_ids == b.predictive_ids
    assert a.predictive_ids != c.predictive_ids


def test_predictive_subset_split_validation(dataset):
    with pytest.raises(ValueError):
        predictive_subset_split(dataset, subset_size=0)
    with pytest.raises(ValueError):
        predictive_subset_split(dataset, subset_size=10_000)


def test_leave_one_benchmark_out_covers_suite(dataset):
    pairs = list(leave_one_benchmark_out(dataset))
    assert len(pairs) == 29
    for application, training in pairs:
        assert application not in training
        assert len(training) == 28
    assert sorted(app for app, _ in pairs) == sorted(dataset.benchmark_names)
