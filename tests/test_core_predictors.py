"""Tests for the NNᵀ and MLPᵀ transposition predictors."""

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LinearTranspositionPredictor, MLPTranspositionPredictor


def _synthetic_transposition_problem(seed=0, n_benchmarks=20, n_predictive=6, n_target=8):
    """Build a problem where machine columns are scaled/shifted versions of a latent profile."""
    rng = np.random.default_rng(seed)
    latent = rng.uniform(5.0, 20.0, size=n_benchmarks + 1)  # last row = application
    predictive_scale = rng.uniform(0.5, 2.0, size=n_predictive)
    target_scale = rng.uniform(0.5, 2.0, size=n_target)
    noise = rng.normal(0.0, 0.1, size=(n_benchmarks + 1, n_predictive))
    predictive = latent[:, None] * predictive_scale[None, :] + noise
    target = latent[:, None] * target_scale[None, :]
    return (
        predictive[:-1],          # benchmark scores on predictive machines
        predictive[-1],           # application scores on predictive machines
        target[:-1],              # benchmark scores on target machines
        target[-1],               # true application scores on target machines
    )


# ---------------------------------------------------------------------- NN^T
def test_linear_predictor_recovers_linear_structure():
    bench_pred, app_pred, bench_target, app_target = _synthetic_transposition_problem()
    predictor = LinearTranspositionPredictor()
    predicted = predictor.predict(bench_pred, app_pred, bench_target)
    assert predicted.shape == app_target.shape
    relative_error = np.abs(predicted - app_target) / app_target
    assert relative_error.mean() < 0.1


def test_linear_predictor_exact_when_target_is_affine_in_one_predictive_machine():
    rng = np.random.default_rng(1)
    bench_pred = rng.uniform(1.0, 10.0, size=(15, 3))
    app_pred = rng.uniform(1.0, 10.0, size=3)
    # target machine 0 is exactly 2*x + 1 of predictive machine 1
    bench_target = (2.0 * bench_pred[:, 1] + 1.0).reshape(-1, 1)
    predictor = LinearTranspositionPredictor()
    predicted = predictor.predict(bench_pred, app_pred, bench_target)
    assert predicted[0] == pytest.approx(2.0 * app_pred[1] + 1.0)
    assert predictor.chosen_predictive_machines() == [1]
    assert predictor.fit_details_[0].r_squared == pytest.approx(1.0)


def test_linear_predictor_fit_details_cover_every_target():
    bench_pred, app_pred, bench_target, _ = _synthetic_transposition_problem(seed=2)
    predictor = LinearTranspositionPredictor()
    predictor.predict(bench_pred, app_pred, bench_target)
    assert len(predictor.fit_details_) == bench_target.shape[1]
    for detail in predictor.fit_details_:
        assert 0 <= detail.chosen_predictive_index < bench_pred.shape[1]
        assert detail.r_squared <= 1.0


def test_linear_predictor_correlation_criterion_close_to_rss():
    bench_pred, app_pred, bench_target, app_target = _synthetic_transposition_problem(seed=3)
    by_rss = LinearTranspositionPredictor(selection_criterion="rss").predict(
        bench_pred, app_pred, bench_target
    )
    by_corr = LinearTranspositionPredictor(selection_criterion="correlation").predict(
        bench_pred, app_pred, bench_target
    )
    assert np.abs(by_rss - by_corr).mean() / app_target.mean() < 0.25


def test_linear_predictor_top_k_averaging():
    bench_pred, app_pred, bench_target, app_target = _synthetic_transposition_problem(seed=4)
    single = LinearTranspositionPredictor(top_k=1).predict(bench_pred, app_pred, bench_target)
    ensemble = LinearTranspositionPredictor(top_k=3).predict(bench_pred, app_pred, bench_target)
    assert single.shape == ensemble.shape
    # both should stay close to the truth on this near-linear problem
    assert np.abs(ensemble - app_target).mean() / app_target.mean() < 0.15


def test_linear_predictor_handles_constant_predictive_machine():
    bench_pred = np.column_stack([np.full(10, 7.0), np.linspace(1, 10, 10)])
    bench_target = (3.0 * np.linspace(1, 10, 10)).reshape(-1, 1)
    app_pred = np.array([7.0, 5.0])
    predicted = LinearTranspositionPredictor().predict(bench_pred, app_pred, bench_target)
    assert predicted[0] == pytest.approx(15.0)


def test_linear_predictor_input_validation():
    predictor = LinearTranspositionPredictor()
    with pytest.raises(ValueError):
        LinearTranspositionPredictor(selection_criterion="bogus")
    with pytest.raises(ValueError):
        LinearTranspositionPredictor(top_k=0)
    with pytest.raises(ValueError):
        predictor.predict(np.ones(5), np.ones(2), np.ones((5, 2)))
    with pytest.raises(ValueError):
        predictor.predict(np.ones((5, 2)), np.ones(2), np.ones((4, 2)))
    with pytest.raises(ValueError):
        predictor.predict(np.ones((5, 2)), np.ones(3), np.ones((5, 2)))
    with pytest.raises(ValueError):
        predictor.predict(np.ones((1, 2)), np.ones(2), np.ones((1, 2)))


# --------------------------------------------------------------------- MLP^T
def test_mlp_predictor_learns_transposition_problem():
    bench_pred, app_pred, bench_target, app_target = _synthetic_transposition_problem(
        seed=5, n_predictive=30
    )
    predictor = MLPTranspositionPredictor(epochs=200, seed=0)
    predicted = predictor.predict(bench_pred, app_pred, bench_target)
    assert predicted.shape == app_target.shape
    relative_error = np.abs(predicted - app_target) / app_target
    assert relative_error.mean() < 0.25


def test_mlp_predictor_is_deterministic():
    bench_pred, app_pred, bench_target, _ = _synthetic_transposition_problem(seed=6, n_predictive=10)
    a = MLPTranspositionPredictor(epochs=50, seed=3).predict(bench_pred, app_pred, bench_target)
    b = MLPTranspositionPredictor(epochs=50, seed=3).predict(bench_pred, app_pred, bench_target)
    assert np.array_equal(a, b)


def test_mlp_predictor_exposes_underlying_model():
    bench_pred, app_pred, bench_target, _ = _synthetic_transposition_problem(seed=7, n_predictive=10)
    predictor = MLPTranspositionPredictor(epochs=20, seed=0)
    predictor.predict(bench_pred, app_pred, bench_target)
    assert predictor.model_ is not None
    assert predictor.model_.n_hidden_units == (bench_pred.shape[0] + 1) // 2


def test_mlp_predictor_input_validation():
    predictor = MLPTranspositionPredictor(epochs=5)
    with pytest.raises(ValueError):
        predictor.predict(np.ones(5), np.ones(2), np.ones((5, 2)))
    with pytest.raises(ValueError):
        predictor.predict(np.ones((5, 2)), np.ones(2), np.ones((4, 2)))
    with pytest.raises(ValueError):
        predictor.predict(np.ones((5, 2)), np.ones(3), np.ones((5, 2)))
    with pytest.raises(ValueError):
        predictor.predict(np.ones((5, 1)), np.ones(1), np.ones((5, 2)))


@given(st.integers(min_value=0, max_value=1000))
@settings(max_examples=15, deadline=None)
def test_linear_predictor_predictions_finite_property(seed):
    bench_pred, app_pred, bench_target, _ = _synthetic_transposition_problem(seed=seed)
    predicted = LinearTranspositionPredictor().predict(bench_pred, app_pred, bench_target)
    assert np.all(np.isfinite(predicted))
