"""Tests for the cache/branch/memory/interval/spec-score models.

These check the monotonicity and structural properties the reproduction
relies on: more cache / bandwidth / better predictors never hurt, memory
bound workloads respond to the memory system while compute-bound ones
respond to clock frequency, and SPEC-style ratios behave like ratios.
"""

import dataclasses

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import (
    BranchPredictorModel,
    CacheHierarchy,
    CacheLevel,
    IntervalModel,
    MachineSimulator,
    MemoryModel,
    MicroarchConfig,
    REFERENCE_MACHINE,
    WorkloadCharacteristics,
    spec_ratio,
)


def _machine(**overrides):
    values = dict(
        name="test machine",
        isa="x86",
        frequency_ghz=2.5,
        issue_width=4,
        rob_size=96,
        pipeline_depth=14,
        l1_kb=32,
        l2_kb=2048,
        l3_kb=4096,
        mem_latency_ns=70.0,
        mem_bandwidth_gbs=10.0,
        branch_predictor_quality=0.95,
        fp_throughput=1.0,
        simd_width=2,
        isa_efficiency=1.0,
    )
    values.update(overrides)
    return MicroarchConfig(**values)


def _workload(**overrides):
    values = dict(
        name="synthetic",
        domain="fp",
        dynamic_instructions=1500.0,
        memory_fraction=0.45,
        branch_fraction=0.05,
        fp_fraction=0.4,
        ilp=2.5,
        working_set_mb=200.0,
        locality_exponent=0.6,
        branch_entropy=0.1,
        memory_level_parallelism=3.0,
        vectorizable_fraction=0.5,
    )
    values.update(overrides)
    return WorkloadCharacteristics(**values)


# -------------------------------------------------------------------- cache
def test_cache_level_miss_rate_zero_when_working_set_fits():
    level = CacheLevel("L2", capacity_kb=4096, latency_cycles=12.0)
    small = _workload(working_set_mb=1.0)
    assert level.miss_rate(small) == pytest.approx(0.003)


def test_cache_level_miss_rate_monotone_in_capacity():
    workload = _workload(working_set_mb=64.0)
    small = CacheLevel("A", 256, 10.0).miss_rate(workload)
    large = CacheLevel("B", 8192, 10.0).miss_rate(workload)
    assert large < small


def test_cache_level_miss_rate_bounded():
    workload = _workload(working_set_mb=4000.0, locality_exponent=0.4)
    rate = CacheLevel("L1", 16, 3.0).miss_rate(workload)
    assert 0.0 < rate <= 0.95


def test_cache_level_validation():
    with pytest.raises(ValueError):
        CacheLevel("L1", 0, 3.0)
    with pytest.raises(ValueError):
        CacheLevel("L1", 32, 0.0)


def test_cache_hierarchy_levels_follow_machine_config():
    machine = _machine(l3_kb=0)
    hierarchy = CacheHierarchy(machine)
    assert [level.name for level in hierarchy.levels] == ["L1", "L2"]
    machine_l3 = _machine(l3_kb=8192)
    assert [level.name for level in CacheHierarchy(machine_l3).levels] == ["L1", "L2", "L3"]


def test_cache_hierarchy_hit_fractions_sum_to_at_most_one():
    hierarchy = CacheHierarchy(_machine())
    workload = _workload(working_set_mb=300.0)
    profile = hierarchy.access_profile(workload)
    served = sum(fraction for _, fraction in profile)
    dram = hierarchy.memory_miss_fraction(workload)
    assert served + dram == pytest.approx(1.0)
    assert 0.0 < dram < 1.0


def test_cache_hierarchy_bigger_llc_reduces_dram_traffic():
    workload = _workload(working_set_mb=64.0)
    small = CacheHierarchy(_machine(l3_kb=2048)).memory_miss_fraction(workload)
    large = CacheHierarchy(_machine(l3_kb=16384)).memory_miss_fraction(workload)
    assert large < small


def test_cache_hierarchy_average_hit_latency_positive():
    hierarchy = CacheHierarchy(_machine())
    assert hierarchy.average_hit_latency(_workload()) > 0.0


# ------------------------------------------------------------------- branch
def test_branch_model_better_predictor_means_fewer_mispredictions():
    workload = _workload(branch_fraction=0.2, branch_entropy=0.4)
    weak = BranchPredictorModel(_machine(branch_predictor_quality=0.85))
    strong = BranchPredictorModel(_machine(branch_predictor_quality=0.97))
    assert strong.misprediction_rate(workload) < weak.misprediction_rate(workload)
    assert strong.penalty_cycles_per_instruction(workload) < weak.penalty_cycles_per_instruction(workload)


def test_branch_model_misprediction_rate_capped_at_half():
    workload = _workload(branch_fraction=0.3, branch_entropy=1.0)
    model = BranchPredictorModel(_machine(branch_predictor_quality=0.0))
    assert model.misprediction_rate(workload) == pytest.approx(0.5)


def test_branch_penalty_zero_for_branchless_code():
    workload = _workload(branch_fraction=0.0, branch_entropy=0.5)
    model = BranchPredictorModel(_machine())
    assert model.penalty_cycles_per_instruction(workload) == 0.0


# ------------------------------------------------------------------- memory
def test_memory_model_mlp_is_limited_by_machine_and_workload():
    narrow = MemoryModel(_machine(rob_size=32))
    wide = MemoryModel(_machine(rob_size=256))
    workload = _workload(memory_level_parallelism=6.0)
    assert narrow.exploitable_mlp(workload) == pytest.approx(1.0)
    assert wide.exploitable_mlp(workload) == pytest.approx(6.0)
    shallow = _workload(memory_level_parallelism=1.5)
    assert wide.exploitable_mlp(shallow) == pytest.approx(1.5)


def test_memory_model_bandwidth_pressure_bounded_and_monotone():
    model = MemoryModel(_machine(mem_bandwidth_gbs=5.0))
    workload = _workload()
    low = model.bandwidth_pressure(workload, miss_fraction=0.001)
    high = model.bandwidth_pressure(workload, miss_fraction=0.2)
    assert 1.0 <= low < high < 4.0


def test_memory_model_no_penalty_without_misses():
    model = MemoryModel(_machine())
    assert model.penalty_cycles_per_instruction(_workload(), miss_fraction=0.0) == 0.0


def test_memory_model_penalty_decreases_with_bandwidth():
    workload = _workload()
    starved = MemoryModel(_machine(mem_bandwidth_gbs=2.0))
    ample = MemoryModel(_machine(mem_bandwidth_gbs=30.0))
    assert ample.penalty_cycles_per_instruction(workload, 0.1) < starved.penalty_cycles_per_instruction(workload, 0.1)


# ----------------------------------------------------------- interval model
def test_interval_model_breakdown_components_nonnegative_and_sum():
    model = IntervalModel(_machine())
    breakdown = model.cpi_breakdown(_workload())
    for component in (breakdown.base, breakdown.branch, breakdown.cache, breakdown.memory, breakdown.fp):
        assert component >= 0.0
    assert breakdown.total == pytest.approx(
        breakdown.base + breakdown.branch + breakdown.cache + breakdown.memory + breakdown.fp
    )
    assert model.cpi(_workload()) == pytest.approx(breakdown.total)


def test_interval_model_memory_bound_workload_dominated_by_memory():
    streaming = _workload(working_set_mb=500.0, memory_fraction=0.49, locality_exponent=0.45)
    machine = _machine(l3_kb=0, l2_kb=1024, mem_bandwidth_gbs=4.0, mem_latency_ns=100.0)
    breakdown = IntervalModel(machine).cpi_breakdown(streaming)
    assert breakdown.dominant_component() in {"memory", "cache"}


def test_interval_model_compute_bound_workload_dominated_by_base_or_fp():
    compute = _workload(working_set_mb=0.3, fp_fraction=0.45, memory_fraction=0.35, ilp=3.0)
    breakdown = IntervalModel(_machine()).cpi_breakdown(compute)
    assert breakdown.dominant_component() in {"base", "fp"}


def test_interval_model_higher_frequency_reduces_runtime_for_compute_code():
    compute = _workload(working_set_mb=0.3, memory_fraction=0.3)
    slow = IntervalModel(_machine(frequency_ghz=2.0)).runtime_seconds(compute)
    fast = IntervalModel(_machine(frequency_ghz=3.2)).runtime_seconds(compute)
    assert fast < slow


def test_interval_model_memory_latency_matters_more_for_memory_bound_code():
    memory_bound = _workload(working_set_mb=600.0)
    compute_bound = _workload(working_set_mb=0.3)
    base = _machine(mem_latency_ns=60.0)
    slow_memory = _machine(mem_latency_ns=160.0)
    mem_ratio = (
        IntervalModel(slow_memory).runtime_seconds(memory_bound)
        / IntervalModel(base).runtime_seconds(memory_bound)
    )
    cpu_ratio = (
        IntervalModel(slow_memory).runtime_seconds(compute_bound)
        / IntervalModel(base).runtime_seconds(compute_bound)
    )
    assert mem_ratio > cpu_ratio


def test_interval_model_isa_efficiency_scales_runtime():
    workload = _workload()
    lean = IntervalModel(_machine(isa_efficiency=1.0)).runtime_seconds(workload)
    verbose = IntervalModel(_machine(isa_efficiency=1.3)).runtime_seconds(workload)
    assert verbose == pytest.approx(lean * 1.3)


# -------------------------------------------------------------- spec scores
def test_spec_ratio_of_reference_machine_is_one():
    workload = _workload()
    assert spec_ratio(REFERENCE_MACHINE, workload) == pytest.approx(1.0)


def test_spec_ratio_modern_machine_beats_reference():
    assert spec_ratio(_machine(), _workload()) > 1.0


def test_machine_simulator_noise_free_matches_spec_ratio():
    machine = _machine()
    workload = _workload()
    simulator = MachineSimulator(machine, noise_sigma=0.0)
    assert simulator.score(workload) == pytest.approx(spec_ratio(machine, workload))


def test_machine_simulator_noise_is_deterministic_and_small():
    machine = _machine()
    workload = _workload()
    a = MachineSimulator(machine, noise_sigma=0.03, seed=1).score(workload)
    b = MachineSimulator(machine, noise_sigma=0.03, seed=1).score(workload)
    c = MachineSimulator(machine, noise_sigma=0.03, seed=2).score(workload)
    clean = spec_ratio(machine, workload)
    assert a == b
    assert a != c
    assert abs(a - clean) / clean < 0.25


def test_machine_simulator_score_suite_order():
    machine = _machine()
    workloads = [_workload(name="w1"), _workload(name="w2", working_set_mb=0.5)]
    simulator = MachineSimulator(machine, noise_sigma=0.0)
    scores = simulator.score_suite(workloads)
    assert scores.shape == (2,)
    assert scores[0] == pytest.approx(simulator.score(workloads[0]))


def test_machine_simulator_rejects_negative_noise():
    with pytest.raises(ValueError):
        MachineSimulator(_machine(), noise_sigma=-0.1)


def test_machine_simulator_cpi_positive():
    assert MachineSimulator(_machine()).cpi(_workload()) > 0.0


@given(
    st.floats(min_value=1.0, max_value=4.0),
    st.floats(min_value=0.5, max_value=1000.0),
    st.floats(min_value=30.0, max_value=200.0),
)
@settings(max_examples=30, deadline=None)
def test_spec_ratio_always_positive_property(freq, working_set, latency):
    machine = _machine(frequency_ghz=freq, mem_latency_ns=latency)
    workload = _workload(working_set_mb=working_set)
    assert spec_ratio(machine, workload) > 0.0


@given(st.floats(min_value=512.0, max_value=32768.0), st.floats(min_value=512.0, max_value=32768.0))
@settings(max_examples=30, deadline=None)
def test_more_l3_never_increases_dram_traffic(l3_a, l3_b):
    small, large = sorted([int(l3_a), int(l3_b)])
    workload = _workload(working_set_mb=128.0)
    more_traffic = CacheHierarchy(_machine(l3_kb=small)).memory_miss_fraction(workload)
    less_traffic = CacheHierarchy(_machine(l3_kb=large)).memory_miss_fraction(workload)
    assert less_traffic <= more_traffic * 1.0000001
