"""Tests for the unified method registry (repro.core.engine)."""

import numpy as np
import pytest

from repro.baselines.ga_knn import BatchedGAKNN, GAKNNBaseline
from repro.core import (
    BatchedLinearTransposition,
    BatchedMLPTransposition,
    TranspositionMethod,
    predict_split_scores,
    run_cross_validation,
)
from repro.core.engine import (
    CAPABILITIES,
    DEFAULT_METHOD,
    CapabilityMismatchError,
    DuplicateMethodError,
    MethodParams,
    MethodRegistryError,
    UnknownMethodError,
    create_method,
    create_methods,
    method_spec,
    register_method,
    registered_methods,
    resolve_methods,
    unregister_method,
)
from repro.data import build_default_dataset, family_cross_validation_splits
from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import GAKNN, MLPT, NNT, standard_methods


@pytest.fixture(scope="module")
def dataset():
    return build_default_dataset()


# ------------------------------------------------------------- registry state
def test_canonical_methods_are_registered():
    names = {spec.name for spec in registered_methods()}
    assert {"NN^T", "MLP^T", "GA-kNN"} <= names
    assert {"NN^T/per-cell", "MLP^T/per-cell", "GA-kNN/per-cell"} <= names
    assert DEFAULT_METHOD in names


def test_per_cell_variants_share_the_canonical_label():
    for label in (NNT, MLPT, GAKNN):
        assert method_spec(label).label == label
        assert method_spec(f"{label}/per-cell").label == label


def test_batched_registrations_create_batched_implementations():
    assert isinstance(create_method("NN^T"), BatchedLinearTransposition)
    assert isinstance(create_method("MLP^T"), BatchedMLPTransposition)
    assert isinstance(create_method("GA-kNN"), BatchedGAKNN)
    per_cell = create_method("GA-kNN/per-cell")
    assert isinstance(per_cell, GAKNNBaseline)
    assert not isinstance(per_cell, BatchedGAKNN)


def test_factories_consume_method_params():
    params = MethodParams(
        mlp_epochs=33, ga_population=7, ga_generations=3, knn_neighbours=4, seed=9
    )
    mlpt = create_method("MLP^T", params)
    assert (mlpt.epochs, mlpt.seed) == (33, 9)
    gaknn = create_method("GA-kNN", params)
    assert (gaknn.k, gaknn.seed) == (4, 9)
    assert (gaknn.ga_config.population_size, gaknn.ga_config.generations) == (7, 3)


# --------------------------------------------------------------- error paths
def test_unknown_method_raises():
    with pytest.raises(UnknownMethodError, match="no-such-method"):
        method_spec("no-such-method")
    with pytest.raises(UnknownMethodError):
        create_method("no-such-method")
    with pytest.raises(UnknownMethodError):
        unregister_method("no-such-method")


def test_duplicate_registration_raises_unless_replaced():
    register_method("tmp-duplicate", lambda p: None, ["per-cell"])
    try:
        with pytest.raises(DuplicateMethodError, match="tmp-duplicate"):
            register_method("tmp-duplicate", lambda p: None, ["per-cell"])
        replaced = register_method(
            "tmp-duplicate", lambda p: "other", ["batched"], replace=True
        )
        assert replaced.capabilities == frozenset({"batched"})
    finally:
        unregister_method("tmp-duplicate")
    assert "tmp-duplicate" not in {spec.name for spec in registered_methods()}


def test_capability_mismatch_raises():
    with pytest.raises(CapabilityMismatchError, match="batched"):
        create_method("GA-kNN/per-cell", require=["batched"])
    # The requirement itself must come from the known vocabulary.
    with pytest.raises(MethodRegistryError, match="warp-speed"):
        create_method("NN^T", require=["warp-speed"])


def test_registration_validates_capabilities():
    with pytest.raises(MethodRegistryError, match="turbo"):
        register_method("tmp-bad-capability", lambda p: None, ["turbo"])
    with pytest.raises(MethodRegistryError):
        register_method("tmp-no-capability", lambda p: None, [])
    assert CAPABILITIES == {"batched", "per-cell", "backend"}


def test_create_methods_rejects_label_collisions():
    with pytest.raises(MethodRegistryError, match="NN"):
        create_methods(["NN^T", "NN^T/per-cell"])


# ---------------------------------------------------------------- resolution
def test_resolve_methods_passes_mappings_through():
    method = BatchedLinearTransposition()
    resolved = resolve_methods({"mine": method})
    assert resolved == {"mine": method}


def test_resolve_methods_builds_names_and_single_name():
    resolved = resolve_methods(["NN^T", "MLP^T"])
    assert sorted(resolved) == ["MLP^T", "NN^T"]
    assert isinstance(resolve_methods("NN^T")["NN^T"], BatchedLinearTransposition)


def test_pipeline_accepts_method_names(dataset):
    split = family_cross_validation_splits(dataset)[0]
    by_name = predict_split_scores(dataset, split, "NN^T", ["gcc"])
    by_instance = predict_split_scores(
        dataset, split, {"NN^T": BatchedLinearTransposition()}, ["gcc"]
    )
    np.testing.assert_array_equal(by_name["NN^T"]["gcc"], by_instance["NN^T"]["gcc"])

    results = run_cross_validation(dataset, [split], ["NN^T"], ["gcc", "mcf"])
    assert sorted(results) == ["NN^T"] and len(results["NN^T"].cells) == 2


def test_standard_methods_resolve_through_registry():
    config = ExperimentConfig.smoke()
    batched = standard_methods(config)
    assert sorted(batched) == [GAKNN, MLPT, NNT]
    assert isinstance(batched[GAKNN], BatchedGAKNN)
    assert batched[MLPT].epochs == config.mlp_epochs

    per_cell = standard_methods(config, batched=False)
    assert sorted(per_cell) == [GAKNN, MLPT, NNT]
    assert isinstance(per_cell[NNT], TranspositionMethod)
    assert not isinstance(per_cell[GAKNN], BatchedGAKNN)


def test_standard_methods_forward_backend_selection():
    config = ExperimentConfig.smoke()
    methods = standard_methods(config, backend="numpy")
    assert methods[NNT].backend == "numpy"
    assert methods[MLPT].backend == "numpy"


# ------------------------------------------------------------------ discovery
def test_cli_list_methods_prints_the_registry(capsys):
    from repro.cli import main
    from repro.core.backends import resolve_backend

    assert main(["list-methods"]) == 0
    out = capsys.readouterr().out
    for spec in registered_methods():
        assert spec.name in out
    # The backend column resolves for backend-capable rows.
    assert resolve_backend().name in out


def test_every_method_documented_in_api_docs_is_registered():
    """The docs registry table and the live registry must agree (both ways)."""
    import importlib.util
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "tools" / "check_registry.py"
    spec = importlib.util.spec_from_file_location("check_registry", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.main() == 0
