"""Tests for the pluggable array backends (repro.core.backends)."""

import importlib.util
import warnings

import numpy as np
import pytest

from repro.core import backends as backends_module
from repro.core.backends import (
    BACKEND_ENV_VAR,
    BACKENDS,
    ArrayBackend,
    NumpyBackend,
    TorchBackend,
    available_backends,
    resolve_backend,
)
from repro.core.linear_predictor import LinearTranspositionPredictor
from repro.ml.batched_mlp import BatchedMLPRegressor

HAS_TORCH = importlib.util.find_spec("torch") is not None


# ------------------------------------------------------------------ resolution
def test_numpy_backend_is_always_available(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    assert "numpy" in available_backends()
    assert resolve_backend().name == "numpy"
    assert isinstance(resolve_backend(), ArrayBackend)


def test_resolution_order_explicit_env_default(monkeypatch):
    instance = NumpyBackend()
    assert resolve_backend(instance) is instance          # explicit instance wins
    assert resolve_backend("numpy") is resolve_backend("numpy")  # cached singleton

    monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
    assert resolve_backend().name == "numpy"
    monkeypatch.setenv(BACKEND_ENV_VAR, "")
    assert resolve_backend().name == "numpy"


def test_unknown_backend_raises():
    with pytest.raises(ValueError, match="unknown array backend"):
        resolve_backend("cuda-from-the-future")


def test_unavailable_backend_falls_back_with_one_warning(monkeypatch):
    class MissingBackend:
        name = "missing"

        def __init__(self):
            raise ImportError("optional dependency not installed")

        @staticmethod
        def is_available():
            return False

    monkeypatch.setitem(BACKENDS, "missing", MissingBackend)
    monkeypatch.delitem(backends_module._INSTANCES, "missing", raising=False)
    backends_module._WARNED.discard("missing")
    with pytest.warns(RuntimeWarning, match="falling back to 'numpy'"):
        assert resolve_backend("missing").name == "numpy"
    # Second resolution is silent (warn once per process).
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_backend("missing").name == "numpy"
    backends_module._WARNED.discard("missing")
    assert "missing" not in available_backends()


# ------------------------------------------------------------- numpy kernels
def test_numpy_nnt_kernel_matches_manual_downdating():
    rng = np.random.default_rng(0)
    pred = rng.uniform(1.0, 2.0, size=(9, 4))
    target = rng.uniform(1.0, 2.0, size=(9, 3))
    rows = np.array([0, 4, 8])

    sxx, syy, sxy, mean_x, mean_y = NumpyBackend().nnt_downdated_statistics(
        pred, target, rows
    )
    for i, row in enumerate(rows):
        keep = np.arange(9) != row
        px, ty = pred[keep], target[keep]
        np.testing.assert_allclose(mean_x[i], px.mean(axis=0), rtol=1e-12)
        np.testing.assert_allclose(mean_y[i], ty.mean(axis=0), rtol=1e-12)
        dx = px - px.mean(axis=0)
        dy = ty - ty.mean(axis=0)
        np.testing.assert_allclose(sxx[i], (dx**2).sum(axis=0), rtol=1e-9)
        np.testing.assert_allclose(syy[i], (dy**2).sum(axis=0), rtol=1e-9)
        np.testing.assert_allclose(sxy[i], dx.T @ dy, rtol=1e-9, atol=1e-12)


def test_explicit_numpy_backend_is_bit_identical_to_default(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    rng = np.random.default_rng(1)
    features = rng.uniform(0.5, 1.5, size=(3, 20, 5))
    targets = rng.uniform(0.5, 1.5, size=(3, 20))
    queries = rng.uniform(0.5, 1.5, size=(3, 6, 5))

    default = BatchedMLPRegressor(epochs=20, seed=0).fit(features, targets)
    explicit = BatchedMLPRegressor(epochs=20, seed=0, backend="numpy").fit(
        features, targets
    )
    np.testing.assert_array_equal(default.predict(queries), explicit.predict(queries))

    pred = rng.uniform(1.0, 2.0, size=(8, 4))
    target = rng.uniform(1.0, 2.0, size=(8, 3))
    np.testing.assert_array_equal(
        LinearTranspositionPredictor().predict_leave_one_out(pred, target),
        LinearTranspositionPredictor(backend="numpy").predict_leave_one_out(
            pred, target
        ),
    )


# -------------------------------------------------------------- torch backend
@pytest.mark.skipif(not HAS_TORCH, reason="optional torch dependency not installed")
def test_torch_kernels_agree_with_numpy_reference():
    rng = np.random.default_rng(2)
    torch_backend = resolve_backend("torch")
    assert isinstance(torch_backend, TorchBackend)

    pred = rng.uniform(1.0, 2.0, size=(9, 4))
    target = rng.uniform(1.0, 2.0, size=(9, 3))
    rows = np.arange(9)
    reference = NumpyBackend().nnt_downdated_statistics(pred, target, rows)
    ported = torch_backend.nnt_downdated_statistics(pred, target, rows)
    for ref, got in zip(reference, ported):
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)

    features = rng.uniform(0.5, 1.5, size=(2, 15, 4))
    targets = rng.uniform(0.5, 1.5, size=(2, 15))
    queries = rng.uniform(0.5, 1.5, size=(2, 5, 4))
    numpy_model = BatchedMLPRegressor(epochs=15, seed=0, backend="numpy").fit(
        features, targets
    )
    torch_model = BatchedMLPRegressor(epochs=15, seed=0, backend="torch").fit(
        features, targets
    )
    np.testing.assert_allclose(
        torch_model.predict(queries), numpy_model.predict(queries), rtol=1e-9
    )
