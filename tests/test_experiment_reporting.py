"""Tests for experiment plumbing that needs no expensive computation:

the standard method line-up, FigureSeries arithmetic, report formatting and
the paper-reported reference constants.
"""

import pytest

from repro.baselines import GAKNNBaseline
from repro.core import MethodResults, CellResult, TranspositionMethod
from repro.experiments import (
    ERAS,
    ExperimentConfig,
    FigureSeries,
    GAKNN,
    MLPT,
    NNT,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    SUBSET_SIZES,
    standard_methods,
)
from repro.experiments.figure8 import Figure8Result
from repro.experiments.report import format_figure8, format_figure_series
from repro.experiments.table2 import Table2Result
from repro.experiments.report import format_table2


# ------------------------------------------------------------ method line-up
def test_standard_methods_structure():
    methods = standard_methods(ExperimentConfig.smoke())
    assert set(methods) == {NNT, MLPT, GAKNN}
    assert isinstance(methods[NNT], TranspositionMethod)
    assert isinstance(methods[MLPT], TranspositionMethod)
    assert isinstance(methods[GAKNN], GAKNNBaseline)
    assert methods[GAKNN].k == 10


def test_standard_methods_honour_config():
    config = ExperimentConfig(knn_neighbours=5, ga_population=8, ga_generations=3, mlp_epochs=10)
    methods = standard_methods(config)
    assert methods[GAKNN].k == 5
    assert methods[GAKNN].ga_config.population_size == 8
    predictor = methods[MLPT].predictor_factory()
    assert predictor.epochs == 10


# ------------------------------------------------------- paper constants
def test_paper_reference_constants_are_complete():
    assert set(PAPER_TABLE2) == {NNT, MLPT, GAKNN}
    for metrics in PAPER_TABLE2.values():
        assert set(metrics) == {"rank_correlation", "top1_error", "mean_error"}
    assert set(PAPER_TABLE3) == {MLPT, NNT}
    for per_era in PAPER_TABLE3.values():
        assert set(per_era) == set(ERAS)
    assert set(PAPER_TABLE4) == {MLPT, NNT}
    for per_size in PAPER_TABLE4.values():
        assert set(per_size) == set(SUBSET_SIZES)
    # the paper's headline: MLP^T best on all three Table-2 metrics
    assert PAPER_TABLE2[MLPT]["rank_correlation"][0] > PAPER_TABLE2[GAKNN]["rank_correlation"][0]
    assert PAPER_TABLE2[MLPT]["top1_error"][0] < PAPER_TABLE2[GAKNN]["top1_error"][0]
    assert PAPER_TABLE2[MLPT]["mean_error"][0] < PAPER_TABLE2[GAKNN]["mean_error"][0]


# ----------------------------------------------------------- FigureSeries
def _series():
    return FigureSeries(
        metric="rank",
        benchmarks=("alpha", "beta", "gamma"),
        series={
            "m1": (0.9, 0.5, 0.7),
            "m2": (0.6, 0.8, 0.4),
        },
    )


def test_figure_series_accessors():
    series = _series()
    assert series.value("m1", "beta") == 0.5
    assert series.minimum("m1") == 0.5
    assert series.maximum("m2") == 0.8
    assert series.average("m1") == pytest.approx(0.7)
    assert series.worst_benchmark("m1", higher_is_better=True) == "beta"
    assert series.worst_benchmark("m2", higher_is_better=False) == "beta"


def test_figure_series_formatting():
    text = format_figure_series(_series(), "demo figure", higher_is_better=True)
    assert "demo figure" in text
    assert "alpha" in text and "Minimum" in text and "Average" in text
    text_err = format_figure_series(_series(), "demo err", higher_is_better=False)
    assert "Maximum" in text_err


# ------------------------------------------------------------- Figure8Result
def test_figure8_result_advantage_and_formatting():
    result = Figure8Result(sizes=(2, 3), kmedoids_r2=(0.5, 0.7), random_r2=(0.3, 0.6))
    assert result.advantage(2) == pytest.approx(0.2)
    assert result.mean_advantage() == pytest.approx(0.15)
    text = format_figure8(result)
    assert "k-medoids" in text and "advantage" in text


# ------------------------------------------------------------- Table2Result
def _fake_table2():
    results = {}
    for method, (rank, top1, mean) in {
        NNT: (0.8, 5.0, 6.0),
        MLPT: (0.9, 2.0, 3.0),
        GAKNN: (0.85, 4.0, 7.0),
    }.items():
        method_results = MethodResults(method=method)
        method_results.add(CellResult(method, "split", "gcc", rank, top1, mean))
        results[method] = method_results
    summaries = {name: res.summary() for name, res in results.items()}
    return Table2Result(results=results, summaries=summaries, n_splits=1, n_applications=1)


def test_table2_result_helpers_and_formatting():
    table2 = _fake_table2()
    assert table2.best_method_by_rank_correlation() == MLPT
    rows = table2.as_rows()
    assert len(rows) == 3
    text = format_table2(table2)
    assert "Table 2" in text and "paper reports" in text
