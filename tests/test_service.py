"""Tests for the prediction service layer.

Pins the serving contracts the docs promise:

* cache semantics — hit/miss counters, LRU eviction order, TTL expiry,
  deterministic shard routing;
* equivalence — service replies are bit-identical to the offline
  :func:`run_cross_validation` cells they correspond to;
* micro-batching — coalesced batches answer exactly what one-at-a-time
  queries answer, concurrent requests keep their identities, and one bad
  request never poisons its batch.
"""

import asyncio

import pytest

from repro.core import (
    BatchedLinearTransposition,
    BatchedMLPTransposition,
    actual_ranking,
    compare_rankings,
    run_cross_validation,
    split_cache_key,
)
from repro.core.ranking import MachineRanking
from repro.data import build_default_dataset, family_cross_validation_splits
from repro.service import (
    MicroBatcher,
    PredictionService,
    RankingQuery,
    ServiceError,
    SplitContextCache,
)


@pytest.fixture(scope="module")
def dataset():
    return build_default_dataset()


@pytest.fixture(scope="module")
def splits(dataset):
    return family_cross_validation_splits(dataset)


def _nnt_service(dataset, **cache_kwargs):
    cache = SplitContextCache(**cache_kwargs) if cache_kwargs else None
    return PredictionService(dataset, {"NN^T": BatchedLinearTransposition()}, cache=cache)


# ------------------------------------------------------------- cache semantics
def test_cache_hit_and_miss_counters():
    cache = SplitContextCache(capacity=4, n_shards=1)
    assert cache.get("absent") is None
    cache.put("key", "value")
    assert cache.get("key") == "value"
    stats = cache.stats()
    assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)


def test_cache_lru_eviction_order():
    cache = SplitContextCache(capacity=2, n_shards=1)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1          # refreshes a: b is now least recent
    cache.put("c", 3)                   # evicts b
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.stats().evictions == 1


def test_cache_put_refreshes_existing_key_without_eviction():
    cache = SplitContextCache(capacity=2, n_shards=1)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)                  # overwrite, not insert
    assert len(cache) == 2
    assert cache.stats().evictions == 0
    assert cache.get("a") == 10


def test_cache_ttl_expiry_with_injected_clock():
    now = [0.0]
    cache = SplitContextCache(capacity=4, ttl=10.0, n_shards=1, clock=lambda: now[0])
    cache.put("key", "value")
    now[0] = 9.9
    assert cache.get("key") == "value"
    now[0] = 10.0
    assert cache.get("key") is None     # lifetime elapsed -> miss + expiration
    stats = cache.stats()
    assert stats.expirations == 1
    assert stats.entries == 0


def test_cache_get_or_create_builds_once():
    cache = SplitContextCache(capacity=4, n_shards=1)
    builds = []
    value, hit = cache.get_or_create("key", lambda: builds.append(1) or "built")
    assert (value, hit) == ("built", False)
    value, hit = cache.get_or_create("key", lambda: builds.append(1) or "rebuilt")
    assert (value, hit) == ("built", True)
    assert len(builds) == 1


def test_cache_shard_routing_is_deterministic_and_in_range():
    cache = SplitContextCache(capacity=8, n_shards=4)
    keys = [("fp", ("m1",), ("m2",)), ("fp", ("m3",), ("m4",)), "plain"]
    for key in keys:
        index = cache.shard_index(key)
        assert 0 <= index < cache.n_shards
        assert cache.shard_index(key) == index


def test_cache_total_capacity_is_never_exceeded():
    # 5 entries over 4 shards: the budget is split 2+1+1+1, so the resident
    # total can never overshoot the configured capacity.
    cache = SplitContextCache(capacity=5, n_shards=4)
    for index in range(50):
        cache.put(f"key-{index}", index)
        assert len(cache) <= 5
    # capacity < n_shards collapses to capacity shards of one entry each.
    small = SplitContextCache(capacity=2, n_shards=4)
    assert small.n_shards == 2
    for index in range(20):
        small.put(f"key-{index}", index)
        assert len(small) <= 2


def test_cache_validates_parameters():
    with pytest.raises(ValueError):
        SplitContextCache(capacity=0)
    with pytest.raises(ValueError):
        SplitContextCache(ttl=0.0)
    with pytest.raises(ValueError):
        SplitContextCache(n_shards=0)


# --------------------------------------------------------------- service facade
def test_service_cold_then_warm_replies_are_identical(dataset):
    service = _nnt_service(dataset)
    query = RankingQuery("gcc", tuple(dataset.machine_ids[:5]))
    cold = service.rank(query)
    warm = service.rank(query)
    assert cold.cache_hit is False
    assert warm.cache_hit is True
    assert cold.machine_ids == warm.machine_ids
    assert cold.scores == warm.scores
    assert cold.split_fingerprint == warm.split_fingerprint


def test_service_default_targets_are_all_other_machines(dataset):
    service = _nnt_service(dataset)
    predictive = tuple(dataset.machine_ids[:5])
    reply = service.rank(RankingQuery("gcc", predictive))
    assert set(reply.machine_ids) == set(dataset.machine_ids) - set(predictive)


def test_service_top_n_truncates_but_keeps_order(dataset):
    service = _nnt_service(dataset)
    predictive = tuple(dataset.machine_ids[:5])
    full = service.rank(RankingQuery("gcc", predictive))
    top3 = service.rank(RankingQuery("gcc", predictive, top_n=3))
    assert top3.machine_ids == full.machine_ids[:3]
    assert top3.scores == full.scores[:3]
    assert top3.top1 == full.top1


def test_service_rejects_bad_queries(dataset):
    service = _nnt_service(dataset)
    machines = tuple(dataset.machine_ids[:3])
    with pytest.raises(ServiceError):
        service.rank(RankingQuery("not-a-benchmark", machines))
    with pytest.raises(ServiceError):
        service.rank(RankingQuery("gcc", ("not-a-machine",)))
    with pytest.raises(ServiceError):
        service.rank(RankingQuery("gcc", machines, method="XGBoost"))
    with pytest.raises(ServiceError):
        service.rank(RankingQuery("gcc", ()))
    with pytest.raises(ServiceError):
        service.rank(RankingQuery("gcc", machines, target_machines=machines))  # overlap
    with pytest.raises(ServiceError):
        service.rank(RankingQuery("gcc", machines + machines[:1]))  # duplicates
    duplicated_targets = tuple(dataset.machine_ids[3:5]) + (dataset.machine_ids[3],)
    with pytest.raises(ServiceError):
        service.rank(RankingQuery("gcc", machines, target_machines=duplicated_targets))
    with pytest.raises(ServiceError):
        RankingQuery("gcc", machines, top_n=0)
    with pytest.raises(ValueError):
        PredictionService(dataset, {})


def test_service_eviction_forces_retraining(dataset):
    service = _nnt_service(dataset, capacity=1, n_shards=1)
    first = tuple(dataset.machine_ids[:5])
    second = tuple(dataset.machine_ids[5:10])
    assert service.rank(RankingQuery("gcc", first)).cache_hit is False
    assert service.rank(RankingQuery("gcc", second)).cache_hit is False  # evicts first
    assert service.rank(RankingQuery("gcc", first)).cache_hit is False   # retrained
    assert service.cache_stats().evictions == 2


def test_service_ttl_expires_trained_state(dataset):
    now = [0.0]
    cache = SplitContextCache(capacity=8, ttl=60.0, n_shards=1, clock=lambda: now[0])
    service = PredictionService(
        dataset, {"NN^T": BatchedLinearTransposition()}, cache=cache
    )
    query = RankingQuery("gcc", tuple(dataset.machine_ids[:5]))
    assert service.rank(query).cache_hit is False
    now[0] = 59.0
    assert service.rank(query).cache_hit is True
    now[0] = 61.0
    assert service.rank(query).cache_hit is False
    assert service.cache_stats().expirations == 1


def test_service_methods_fill_lazily_and_independently(dataset):
    service = PredictionService(
        dataset,
        {
            "NN^T": BatchedLinearTransposition(),
            "MLP^T": BatchedMLPTransposition(epochs=10, seed=0),
        },
    )
    machines = tuple(dataset.machine_ids[:5])
    assert service.rank(RankingQuery("gcc", machines, method="NN^T")).cache_hit is False
    # Same split, different method: split state is cached but MLP^T still
    # needs its own tensor pass.
    assert service.rank(RankingQuery("gcc", machines, method="MLP^T")).cache_hit is False
    assert service.rank(RankingQuery("mcf", machines, method="MLP^T")).cache_hit is True


def test_per_cell_methods_fill_one_application_at_a_time(dataset):
    # A per-cell method must not pay for all 29 applications on the first
    # query; its table grows per application, and only repeats are warm.
    from repro.core import LinearTranspositionPredictor, TranspositionMethod

    calls = []

    class CountingPerCell(TranspositionMethod):
        def predict_application_scores(self, dataset, split, application, training):
            calls.append(application)
            return super().predict_application_scores(dataset, split, application, training)

    service = PredictionService(
        dataset, {"cell": CountingPerCell(LinearTranspositionPredictor, "cell")}
    )
    machines = tuple(dataset.machine_ids[:5])
    assert service.rank(RankingQuery("gcc", machines, method="cell")).cache_hit is False
    assert calls == ["gcc"]
    assert service.rank(RankingQuery("mcf", machines, method="cell")).cache_hit is False
    assert calls == ["gcc", "mcf"]
    assert service.rank(RankingQuery("gcc", machines, method="cell")).cache_hit is True
    assert calls == ["gcc", "mcf"]


def test_split_cache_key_is_content_addressed(dataset, splits):
    key = split_cache_key(dataset, splits[0])
    assert key == (dataset.fingerprint, splits[0].predictive_ids, splits[0].target_ids)
    rebuilt = build_default_dataset()
    assert split_cache_key(rebuilt, splits[0]) == key


# ----------------------------------------------------- offline/online equivalence
def test_service_matches_run_cross_validation_cell_by_cell(dataset, splits):
    """Acceptance: service rankings are bit-identical to the offline cells."""
    split = splits[0]
    methods = lambda: {  # noqa: E731 - fresh instances per engine
        "NN^T": BatchedLinearTransposition(),
        "MLP^T": BatchedMLPTransposition(epochs=30, seed=0),
    }
    offline = run_cross_validation(dataset, [split], methods())

    service = PredictionService(dataset, methods())
    for name in ("NN^T", "MLP^T"):
        for cell in offline[name].cells:
            reply = service.rank(
                RankingQuery(
                    cell.application,
                    split.predictive_ids,
                    target_machines=split.target_ids,
                    method=name,
                )
            )
            # Rebuild the predicted ranking in the offline engine's machine
            # order so the comparison consumes bit-identical inputs.
            score_of = dict(zip(reply.machine_ids, reply.scores))
            predicted = MachineRanking.from_scores(
                split.target_ids, [score_of[mid] for mid in split.target_ids]
            )
            comparison = compare_rankings(
                predicted, actual_ranking(dataset, split, cell.application)
            )
            assert comparison.rank_correlation == cell.rank_correlation
            assert comparison.top1_error_percent == cell.top1_error_percent
            assert comparison.mean_error_percent == cell.mean_error_percent


def test_bulk_queries_share_one_tensor_pass(dataset):
    service = _nnt_service(dataset)
    machines = tuple(dataset.machine_ids[:6])
    replies = service.rank_many(
        [RankingQuery(app, machines) for app in dataset.benchmark_names]
    )
    assert [r.cache_hit for r in replies] == [False] + [True] * (len(replies) - 1)
    assert [r.application for r in replies] == dataset.benchmark_names


# ------------------------------------------------------------- micro-batching
def test_microbatcher_matches_one_at_a_time_answers(dataset):
    machines = tuple(dataset.machine_ids[:5])
    apps = ["gcc", "mcf", "lbm", "namd", "povray"]
    sequential = _nnt_service(dataset)
    expected = [sequential.rank(RankingQuery(app, machines)) for app in apps]

    batched_service = _nnt_service(dataset)

    async def run():
        batcher = MicroBatcher(batched_service, window=0.001)
        return await asyncio.gather(
            *(batcher.submit(RankingQuery(app, machines)) for app in apps)
        )

    replies = asyncio.run(run())
    for reply, reference in zip(replies, expected):
        assert reply.application == reference.application
        assert reply.machine_ids == reference.machine_ids
        assert reply.scores == reference.scores


def test_microbatcher_coalesces_within_window(dataset):
    service = _nnt_service(dataset)
    machines = tuple(dataset.machine_ids[:5])

    async def run():
        batcher = MicroBatcher(service, window=0.005)
        replies = await asyncio.gather(
            *(batcher.submit(RankingQuery(app, machines)) for app in ["gcc", "mcf", "lbm"])
        )
        return batcher, replies

    batcher, replies = asyncio.run(run())
    assert batcher.batches_dispatched == 1
    assert batcher.requests_served == 3
    assert len(replies) == 3


def test_microbatcher_concurrent_requests_keep_their_identity(dataset):
    service = _nnt_service(dataset)
    front = tuple(dataset.machine_ids[:5])
    back = tuple(dataset.machine_ids[-5:])
    queries = [
        RankingQuery(app, machines, top_n=rank + 1)
        for rank, (app, machines) in enumerate(
            (app, machines)
            for machines in (front, back)
            for app in ("gcc", "mcf", "xalancbmk")
        )
    ]

    async def run():
        batcher = MicroBatcher(service, window=0.002)
        return await asyncio.gather(*(batcher.submit(query) for query in queries))

    replies = asyncio.run(run())
    for query, reply in zip(queries, replies):
        assert reply.application == query.application
        assert len(reply.machine_ids) == query.top_n
        direct = service.rank(query)
        assert reply.machine_ids == direct.machine_ids
        assert reply.scores == direct.scores


def test_microbatcher_max_batch_flushes_immediately(dataset):
    service = _nnt_service(dataset)
    machines = tuple(dataset.machine_ids[:5])

    async def run():
        batcher = MicroBatcher(service, window=60.0, max_batch=2)
        replies = await asyncio.gather(
            *(batcher.submit(RankingQuery(app, machines)) for app in ["gcc", "mcf"])
        )
        return batcher, replies

    # A 60s window would time the test out unless max_batch forces the flush.
    batcher, replies = asyncio.run(asyncio.wait_for(run(), timeout=10))
    assert batcher.batches_dispatched == 1
    assert len(replies) == 2


def test_microbatcher_invalid_query_fails_alone(dataset):
    service = _nnt_service(dataset)
    machines = tuple(dataset.machine_ids[:5])

    async def run():
        batcher = MicroBatcher(service, window=0.002)
        results = await asyncio.gather(
            batcher.submit(RankingQuery("gcc", machines)),
            batcher.submit(RankingQuery("not-a-benchmark", machines)),
            batcher.submit(RankingQuery("mcf", machines)),
            return_exceptions=True,
        )
        return results

    good, bad, also_good = asyncio.run(run())
    assert good.application == "gcc"
    assert isinstance(bad, ServiceError)
    assert also_good.application == "mcf"


def test_microbatcher_cancelled_caller_does_not_strand_the_batch(dataset):
    # Regression: resolving a batch used to call set_exception/set_result on
    # futures unconditionally, so a caller that vanished (cancelled future)
    # raised InvalidStateError inside the flush and stranded its batchmates.
    service = _nnt_service(dataset)
    machines = tuple(dataset.machine_ids[:5])

    async def run():
        batcher = MicroBatcher(service, window=0.01)
        doomed_invalid = asyncio.ensure_future(
            batcher.submit(RankingQuery("not-a-benchmark", machines))
        )
        doomed_valid = asyncio.ensure_future(batcher.submit(RankingQuery("mcf", machines)))
        survivor = asyncio.ensure_future(batcher.submit(RankingQuery("gcc", machines)))
        await asyncio.sleep(0)  # enqueue all three before cancelling
        doomed_invalid.cancel()
        doomed_valid.cancel()
        reply = await asyncio.wait_for(survivor, timeout=10)
        return reply

    reply = asyncio.run(run())
    assert reply.application == "gcc"


def test_service_reply_fingerprint_matches_engine_context(dataset, splits):
    from repro.core import SplitContext

    service = _nnt_service(dataset)
    split = splits[0]
    reply = service.rank(
        RankingQuery("gcc", split.predictive_ids, target_machines=split.target_ids)
    )
    engine_split = service.split_for(
        RankingQuery("gcc", split.predictive_ids, target_machines=split.target_ids)
    )
    assert reply.split_fingerprint == SplitContext.for_split(dataset, engine_split).fingerprint


def test_microbatcher_validates_parameters(dataset):
    service = _nnt_service(dataset)
    with pytest.raises(ValueError):
        MicroBatcher(service, window=-1.0)
    with pytest.raises(ValueError):
        MicroBatcher(service, max_batch=0)


def test_service_resolves_registered_method_names(dataset, splits):
    """PredictionService accepts registry names instead of instances."""
    by_name = PredictionService(dataset, ["NN^T"])
    by_instance = PredictionService(dataset, {"NN^T": BatchedLinearTransposition()})
    split = splits[0]
    query = RankingQuery("gcc", split.predictive_ids, target_machines=split.target_ids)
    assert by_name.rank(query).scores == by_instance.rank(query).scores

    with pytest.raises(Exception, match="unknown method"):
        PredictionService(dataset, ["definitely-not-registered"])


# --------------------------------------------------- admission and deadlines
def test_microbatcher_sheds_past_queue_bound(dataset):
    from repro.service import OverloadedError

    service = _nnt_service(dataset)
    machines = tuple(dataset.machine_ids[:4])

    async def run():
        # A huge window keeps everything queued; max_batch above the bound
        # keeps the queue from flushing early.
        batcher = MicroBatcher(service, window=5.0, max_batch=64, max_queue=2)
        admitted = [
            asyncio.ensure_future(
                batcher.submit(RankingQuery(app, machines, top_n=1))
            )
            for app in ("gcc", "mcf")
        ]
        await asyncio.sleep(0)  # let the submits enqueue
        with pytest.raises(OverloadedError):
            await batcher.submit(RankingQuery("lbm", machines, top_n=1))
        assert batcher.requests_shed == 1
        batcher._flush()  # answer the admitted pair
        replies = await asyncio.gather(*admitted)
        return replies

    replies = asyncio.run(asyncio.wait_for(run(), timeout=30))
    assert [reply.application for reply in replies] == ["gcc", "mcf"]


def test_microbatcher_rejects_expired_deadline_at_admission(dataset):
    from repro.service import Deadline, DeadlineExceededError

    service = _nnt_service(dataset)
    machines = tuple(dataset.machine_ids[:4])
    expired = Deadline(expires_at=0.0, clock=lambda: 1.0)

    async def run():
        batcher = MicroBatcher(service, window=0.001)
        with pytest.raises(DeadlineExceededError):
            await batcher.submit(
                RankingQuery("gcc", machines, top_n=1, deadline=expired)
            )
        assert batcher.deadline_rejections == 1

    asyncio.run(asyncio.wait_for(run(), timeout=30))


def test_microbatcher_deadline_expiring_in_queue_fails_alone(dataset):
    """A deadline that lapses while queued fails its own caller only."""
    from repro.service import Deadline, DeadlineExceededError

    service = _nnt_service(dataset)
    machines = tuple(dataset.machine_ids[:4])
    now = [0.0]
    doomed_deadline = Deadline(expires_at=0.5, clock=lambda: now[0])

    async def run():
        batcher = MicroBatcher(service, window=5.0, max_batch=64)
        healthy = asyncio.ensure_future(
            batcher.submit(RankingQuery("gcc", machines, top_n=1))
        )
        doomed = asyncio.ensure_future(
            batcher.submit(
                RankingQuery("mcf", machines, top_n=1, deadline=doomed_deadline)
            )
        )
        await asyncio.sleep(0)
        now[0] = 1.0  # the doomed query's deadline lapses while queued
        batcher._flush()
        reply = await healthy
        with pytest.raises(DeadlineExceededError):
            await doomed
        assert reply.application == "gcc"
        assert batcher.deadline_rejections == 1

    asyncio.run(asyncio.wait_for(run(), timeout=30))


def test_microbatcher_cancelled_caller_with_deadline_does_not_strand_batch(dataset):
    """Cancellation and deadline handling interact safely inside one batch."""
    from repro.service import Deadline

    service = _nnt_service(dataset)
    machines = tuple(dataset.machine_ids[:4])
    generous = Deadline.after_ms(60_000)

    async def run():
        batcher = MicroBatcher(service, window=5.0, max_batch=64)
        cancelled = asyncio.ensure_future(
            batcher.submit(RankingQuery("gcc", machines, top_n=1, deadline=generous))
        )
        survivor = asyncio.ensure_future(
            batcher.submit(RankingQuery("mcf", machines, top_n=1, deadline=generous))
        )
        await asyncio.sleep(0)
        cancelled.cancel()
        batcher._flush()
        reply = await survivor
        with pytest.raises(asyncio.CancelledError):
            await cancelled
        assert reply.application == "mcf"
        assert batcher.inflight == 0  # accounting balanced after delivery

    asyncio.run(asyncio.wait_for(run(), timeout=30))


def test_microbatcher_drain_answers_inflight_then_refuses(dataset):
    from repro.service import OverloadedError

    service = _nnt_service(dataset)
    machines = tuple(dataset.machine_ids[:4])

    async def run():
        batcher = MicroBatcher(service, window=5.0, max_batch=64)
        inflight = asyncio.ensure_future(
            batcher.submit(RankingQuery("gcc", machines, top_n=1))
        )
        await asyncio.sleep(0)
        await batcher.drain()
        reply = await inflight
        assert reply.application == "gcc"
        assert batcher.draining is True
        with pytest.raises(OverloadedError):
            await batcher.submit(RankingQuery("mcf", machines, top_n=1))

    asyncio.run(asyncio.wait_for(run(), timeout=30))


# ------------------------------------------------ cache faults and corruption
def test_cache_injected_eviction_forces_retrain_but_correct_answer(dataset):
    from repro.service import FaultInjector, FaultPlan

    injector = FaultInjector(FaultPlan(seed=5, cache_evict=1.0))
    cache = SplitContextCache(capacity=8, n_shards=1, fault_injector=injector)
    service = PredictionService(
        dataset, {"NN^T": BatchedLinearTransposition()}, cache=cache
    )
    machines = tuple(dataset.machine_ids[:4])
    query = RankingQuery("gcc", machines, top_n=2)
    baseline = _nnt_service(dataset).rank(query)
    first = service.rank(query)
    second = service.rank(query)  # entry evicted between the two queries
    assert cache.injected_evictions >= 1
    assert second.cache_hit is False  # retrained, not served warm
    for reply in (first, second):
        assert reply.machine_ids == baseline.machine_ids
        assert reply.scores == baseline.scores


def test_cache_injected_corruption_is_detected_and_rebuilt(dataset):
    from repro.service import FaultInjector, FaultPlan

    injector = FaultInjector(FaultPlan(seed=5, cache_corrupt=1.0))
    cache = SplitContextCache(capacity=8, n_shards=1, fault_injector=injector)
    service = PredictionService(
        dataset, {"NN^T": BatchedLinearTransposition()}, cache=cache
    )
    machines = tuple(dataset.machine_ids[:4])
    query = RankingQuery("gcc", machines, top_n=2)
    baseline = _nnt_service(dataset).rank(query)
    first = service.rank(query)
    second = service.rank(query)  # resident entry corrupted before lookup
    assert cache.injected_corruptions >= 1
    assert service.corrupt_entries_dropped >= 1
    for reply in (first, second):
        assert reply.machine_ids == baseline.machine_ids
        assert reply.scores == baseline.scores


def test_cache_corruption_sentinel_never_reaches_clients(dataset):
    """Even under 100% eviction AND corruption, every reply is well-formed."""
    from repro.service import FaultInjector, FaultPlan

    injector = FaultInjector(
        FaultPlan(seed=9, cache_evict=0.5, cache_corrupt=1.0)
    )
    cache = SplitContextCache(capacity=8, n_shards=1, fault_injector=injector)
    service = PredictionService(
        dataset, {"NN^T": BatchedLinearTransposition()}, cache=cache
    )
    machines = tuple(dataset.machine_ids[:4])
    baseline = _nnt_service(dataset).rank(RankingQuery("gcc", machines, top_n=2))
    for _ in range(6):
        reply = service.rank(RankingQuery("gcc", machines, top_n=2))
        assert reply.machine_ids == baseline.machine_ids
        assert reply.scores == baseline.scores
