"""Tests for the traffic-replay load generator (repro.loadgen).

Schedule construction is pure and deterministic, so most tests never open
a socket; one small live run drives the real TCP front end end-to-end and
reconciles the client's counts with the server's metrics snapshot.
"""

import asyncio
import json
import threading
from collections import Counter as TallyCounter

import pytest

from repro.core import BatchedLinearTransposition
from repro.data import build_default_dataset
from repro.loadgen import (
    MIXES,
    LoadReport,
    QueryMix,
    build_schedule,
    main,
    percentile,
    run_load,
)
from repro.service import PredictionService, serve_tcp


@pytest.fixture(scope="module")
def dataset():
    return build_default_dataset()


# ------------------------------------------------------------------ percentile
def test_percentile_is_exact_linear_interpolation():
    samples = [10.0, 20.0, 30.0, 40.0]
    assert percentile(samples, 0.0) == 10.0
    assert percentile(samples, 0.5) == 25.0
    assert percentile(samples, 1.0) == 40.0
    assert percentile([7.0], 0.99) == 7.0
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile(samples, 1.5)


# -------------------------------------------------------------------- schedule
def test_schedule_is_deterministic_under_a_seed(dataset):
    mix = MIXES["mixed"]
    first = build_schedule(mix, rate=40, duration=1.0, seed=5, dataset=dataset)
    second = build_schedule(mix, rate=40, duration=1.0, seed=5, dataset=dataset)
    assert first == second
    different = build_schedule(mix, rate=40, duration=1.0, seed=6, dataset=dataset)
    assert first != different


def test_schedule_paces_the_open_loop(dataset):
    mix = QueryMix("plain", n_splits=4)
    schedule = build_schedule(mix, rate=10, duration=1.0, seed=0, dataset=dataset)
    assert len(schedule) == 10  # no bulk, no cold: one request per arrival
    send_times = [send_at for send_at, _ in schedule]
    assert send_times == [index / 10 for index in range(10)]
    for _, request in schedule:
        assert request["method"] == "NN^T"
        assert len(request["predictive_machines"]) == mix.predictive_size


def test_schedule_zipf_skew_concentrates_on_the_head(dataset):
    skewed = QueryMix("skewed", zipf_s=2.0, n_splits=8)
    schedule = build_schedule(skewed, rate=500, duration=1.0, seed=1, dataset=dataset)
    tally = TallyCounter(
        tuple(request["predictive_machines"]) for _, request in schedule
    )
    counts = sorted(tally.values(), reverse=True)
    # With s=2 over 8 splits the head split carries ~66% of the weight.
    assert counts[0] / len(schedule) > 0.45
    assert len(tally) <= skewed.n_splits


def test_schedule_cold_arrivals_leave_the_pool(dataset):
    cold = MIXES["cold-sweep"]
    schedule = build_schedule(cold, rate=50, duration=1.0, seed=2, dataset=dataset)
    machine_sets = {tuple(request["predictive_machines"]) for _, request in schedule}
    # Fresh random samples: essentially every arrival is a distinct split.
    assert len(machine_sets) > len(schedule) * 0.8


def test_schedule_bulk_arrivals_share_a_split_and_instant(dataset):
    bulky = QueryMix("bulky", bulk_fraction=1.0, bulk_size=4, n_splits=4)
    schedule = build_schedule(bulky, rate=5, duration=1.0, seed=3, dataset=dataset)
    assert len(schedule) == 5 * 4
    by_instant: dict[float, list] = {}
    for send_at, request in schedule:
        by_instant.setdefault(send_at, []).append(request)
    for burst in by_instant.values():
        assert len(burst) == 4
        splits = {tuple(request["predictive_machines"]) for request in burst}
        assert len(splits) == 1  # one tenant, one split
        apps = [request["application"] for request in burst]
        assert len(set(apps)) == len(apps)  # distinct applications


def test_schedule_rejects_an_oversized_pool(dataset):
    greedy = QueryMix("greedy", n_splits=1000, predictive_size=6)
    with pytest.raises(ValueError):
        build_schedule(greedy, rate=1, duration=1.0, dataset=dataset)
    with pytest.raises(ValueError):
        build_schedule(MIXES["mixed"], rate=0, duration=1.0, dataset=dataset)


def test_schedule_forwards_deadline_and_top_n(dataset):
    mix = QueryMix("slo", deadline_ms=50.0, top_n=5, n_splits=2)
    schedule = build_schedule(mix, rate=5, duration=1.0, seed=0, dataset=dataset)
    for _, request in schedule:
        assert request["deadline_ms"] == 50.0
        assert request["top_n"] == 5


# -------------------------------------------------------------------- live run
def test_run_load_against_live_server_reconciles_with_metrics(dataset):
    service = PredictionService(dataset, {"NN^T": BatchedLinearTransposition()})
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    server = None
    try:
        server = asyncio.run_coroutine_threadsafe(
            serve_tcp(service, "127.0.0.1", 0, window=0.001), loop
        ).result(timeout=30)
        port = server.sockets[0].getsockname()[1]
        mix = QueryMix("small", n_splits=2, zipf_s=0.0)
        report = asyncio.run(
            run_load(
                port=port,
                mix=mix,
                rate=40,
                duration=0.5,
                connections=2,
                seed=7,
                dataset=dataset,
                warmup=True,
                fetch_metrics=True,
            )
        )
    finally:
        if server is not None:
            async def _close(srv=server):
                srv.close()
                await srv.wait_closed()

            asyncio.run_coroutine_threadsafe(_close(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        loop.close()

    assert report.requests == 20
    assert report.ok == report.requests
    assert report.untyped_failures == 0 and report.error_total == 0
    assert report.cache_hit_rate == 1.0  # warmed two-split pool, zero cold
    assert set(report.latency_ms) == {"mean", "p50", "p95", "p99", "max"}
    assert report.latency_ms["p50"] <= report.latency_ms["p99"]

    counters = report.server_metrics["counters"]
    # Warmup trains one request per pool split before measurement.
    assert counters["server.requests"] == report.requests + mix.n_splits
    assert counters["server.ok"] == counters["server.requests"]

    payload = report.to_payload()
    json.dumps(payload)
    assert payload["cache_hit_rate"] == 1.0
    assert payload["error_total"] == 0


# ------------------------------------------------------------------------- CLI
def test_cli_prints_report_and_writes_json(monkeypatch, capsys, tmp_path):
    fake = LoadReport(
        mix="warm-skewed", offered_rate=10.0, duration_s=1.0, wall_s=1.0,
        requests=10, ok=10, latency_ms={"p99": 5.0}, throughput_rps=10.0,
    )
    seen = {}

    async def fake_run_load(**kwargs):
        seen.update(kwargs)
        return fake

    monkeypatch.setattr("repro.loadgen.run_load", fake_run_load)
    out_path = tmp_path / "report.json"
    code = main(
        ["--port", "1234", "--rate", "10", "--duration", "1",
         "--cold-fraction", "0.5", "--json", str(out_path)]
    )
    assert code == 0
    assert seen["port"] == 1234
    assert seen["mix"].cold_fraction == 0.5  # override applied to the mix
    assert "mix=warm-skewed" in capsys.readouterr().out
    assert json.loads(out_path.read_text())["requests"] == 10


def test_cli_exit_code_flags_untyped_failures(monkeypatch):
    fake = LoadReport(
        mix="mixed", offered_rate=1.0, duration_s=1.0, wall_s=1.0,
        requests=2, ok=1, untyped_failures=1,
    )

    async def fake_run_load(**kwargs):
        return fake

    monkeypatch.setattr("repro.loadgen.run_load", fake_run_load)
    assert main(["--mix", "mixed"]) == 1


def test_report_format_mentions_errors_and_hit_rate():
    report = LoadReport(
        mix="mixed", offered_rate=10.0, duration_s=1.0, wall_s=1.2,
        requests=10, ok=8, errors={"DEADLINE_EXCEEDED": 2}, cache_hits=4,
        latency_ms={"p50": 2.0, "p99": 9.0}, throughput_rps=8.3,
    )
    text = report.format()
    assert "DEADLINE_EXCEEDED=2" in text
    assert "cache_hit_rate=0.5" in text
    assert "p99=9.00" in text
    assert report.error_total == 2
