"""Tests for repro.ml.knn, repro.ml.genetic and repro.ml.distances."""

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    GAConfig,
    GeneticAlgorithm,
    KNNRegressor,
    euclidean_distance,
    manhattan_distance,
    pairwise_distances,
    weighted_euclidean_distance,
)


# --------------------------------------------------------------------- knn
def test_knn_exact_match_returns_training_target():
    x = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
    y = np.array([10.0, 20.0, 30.0])
    model = KNNRegressor(k=2).fit(x, y)
    assert model.predict_one([1.0, 1.0]) == pytest.approx(20.0)


def test_knn_uniform_average():
    x = np.array([[0.0], [1.0], [10.0]])
    y = np.array([0.0, 2.0, 100.0])
    model = KNNRegressor(k=2, weighting="uniform").fit(x, y)
    assert model.predict_one([0.4]) == pytest.approx(1.0)


def test_knn_distance_weighting_prefers_closer_points():
    x = np.array([[0.0], [1.0]])
    y = np.array([0.0, 10.0])
    model = KNNRegressor(k=2, weighting="distance").fit(x, y)
    prediction = model.predict_one([0.1])
    assert prediction < 5.0


def test_knn_k_larger_than_training_set_is_clamped():
    x = np.array([[0.0], [1.0]])
    y = np.array([0.0, 10.0])
    model = KNNRegressor(k=10, weighting="uniform").fit(x, y)
    assert model.predict_one([0.5]) == pytest.approx(5.0)


def test_knn_feature_weights_change_neighbours():
    x = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
    y = np.array([0.0, 1.0, 2.0])
    # zero weight on second feature makes [0, 1] identical to [0, 0]
    model = KNNRegressor(k=1, feature_weights=[1.0, 0.0]).fit(x, y)
    idx, _ = model.kneighbors([0.0, 0.9], k=1)
    assert idx[0] in (0, 2)


def test_knn_predict_matrix_shape():
    x = np.array([[0.0], [1.0], [2.0]])
    y = np.array([0.0, 1.0, 2.0])
    model = KNNRegressor(k=1).fit(x, y)
    predictions = model.predict([[0.1], [1.9]])
    assert predictions.shape == (2,)
    assert predictions[0] == pytest.approx(0.0)
    assert predictions[1] == pytest.approx(2.0)


def test_knn_rejects_invalid_configuration():
    with pytest.raises(ValueError):
        KNNRegressor(k=0)
    with pytest.raises(ValueError):
        KNNRegressor(weighting="nope")
    with pytest.raises(ValueError):
        KNNRegressor(feature_weights=[-1.0])


def test_knn_predict_before_fit_raises():
    with pytest.raises(RuntimeError):
        KNNRegressor().predict_one([1.0])


def test_knn_query_dimension_mismatch_raises():
    model = KNNRegressor(k=1).fit([[1.0, 2.0]], [1.0])
    with pytest.raises(ValueError):
        model.predict_one([1.0])


# --------------------------------------------------------------- distances
def test_euclidean_and_manhattan_basics():
    assert euclidean_distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)
    assert manhattan_distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(7.0)


def test_weighted_euclidean_ignores_zero_weight_dimensions():
    distance = weighted_euclidean_distance([0.0, 0.0], [3.0, 100.0], [1.0, 0.0])
    assert distance == pytest.approx(3.0)


def test_weighted_euclidean_rejects_negative_weights():
    with pytest.raises(ValueError):
        weighted_euclidean_distance([0.0], [1.0], [-1.0])


def test_pairwise_distances_symmetric_zero_diagonal():
    rng = np.random.default_rng(0)
    points = rng.normal(size=(10, 4))
    distances = pairwise_distances(points)
    assert np.allclose(distances, distances.T)
    assert np.allclose(np.diag(distances), 0.0)


def test_pairwise_distances_match_explicit_computation():
    points = np.array([[0.0, 0.0], [3.0, 4.0], [6.0, 8.0]])
    distances = pairwise_distances(points)
    assert distances[0, 1] == pytest.approx(5.0)
    assert distances[0, 2] == pytest.approx(10.0)
    manhattan = pairwise_distances(points, metric="manhattan")
    assert manhattan[0, 1] == pytest.approx(7.0)


def test_pairwise_distances_rejects_unknown_metric():
    with pytest.raises(ValueError):
        pairwise_distances([[0.0]], metric="cosine")


@given(
    st.lists(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=3, max_size=3),
        min_size=2,
        max_size=15,
    )
)
@settings(max_examples=40, deadline=None)
def test_pairwise_distances_triangle_inequality(points):
    distances = pairwise_distances(points)
    n = distances.shape[0]
    for i in range(n):
        for j in range(n):
            for k in range(n):
                assert distances[i, j] <= distances[i, k] + distances[k, j] + 1e-6


# ----------------------------------------------------------------- genetic
def test_ga_minimises_sphere_function():
    ga = GeneticAlgorithm(
        genome_length=4,
        fitness=lambda genome: float((genome**2).sum()),
        config=GAConfig(population_size=30, generations=40, lower_bound=-1.0, upper_bound=1.0),
        seed=0,
    )
    best = ga.run()
    assert ga.best_fitness_ < 0.05
    assert np.all(np.abs(best) < 0.5)


def test_ga_history_is_monotonically_nonincreasing():
    ga = GeneticAlgorithm(
        genome_length=3,
        fitness=lambda genome: float(((genome - 0.5) ** 2).sum()),
        config=GAConfig(population_size=20, generations=20),
        seed=1,
    )
    ga.run()
    history = np.asarray(ga.history_)
    assert np.all(np.diff(history) <= 1e-12)


def test_ga_respects_bounds():
    config = GAConfig(population_size=15, generations=10, lower_bound=0.2, upper_bound=0.8)
    ga = GeneticAlgorithm(3, lambda genome: float(genome.sum()), config, seed=2)
    best = ga.run()
    assert np.all(best >= 0.2 - 1e-12)
    assert np.all(best <= 0.8 + 1e-12)


def test_ga_deterministic_given_seed():
    def fitness(genome):
        return float(((genome - 0.3) ** 2).sum())

    config = GAConfig(population_size=12, generations=8)
    a = GeneticAlgorithm(3, fitness, config, seed=5).run()
    b = GeneticAlgorithm(3, fitness, config, seed=5).run()
    assert np.array_equal(a, b)


def test_ga_config_validation():
    with pytest.raises(ValueError):
        GAConfig(population_size=1).validate()
    with pytest.raises(ValueError):
        GAConfig(generations=0).validate()
    with pytest.raises(ValueError):
        GAConfig(crossover_rate=1.5).validate()
    with pytest.raises(ValueError):
        GAConfig(mutation_rate=-0.1).validate()
    with pytest.raises(ValueError):
        GAConfig(mutation_scale=0.0).validate()
    with pytest.raises(ValueError):
        GAConfig(tournament_size=0).validate()
    with pytest.raises(ValueError):
        GAConfig(elitism=40, population_size=40).validate()
    with pytest.raises(ValueError):
        GAConfig(lower_bound=1.0, upper_bound=0.0).validate()


def test_ga_rejects_zero_length_genome():
    with pytest.raises(ValueError):
        GeneticAlgorithm(0, lambda genome: 0.0)
