"""Tests for repro.ml.linreg."""

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import LinearRegression, RidgeRegression, SimpleLinearRegression


def test_simple_linreg_recovers_exact_line():
    x = np.array([1.0, 2.0, 3.0, 4.0])
    y = 2.5 * x + 1.0
    model = SimpleLinearRegression().fit(x, y)
    assert model.slope_ == pytest.approx(2.5)
    assert model.intercept_ == pytest.approx(1.0)
    assert model.r_squared_ == pytest.approx(1.0)
    assert model.residual_sum_of_squares_ == pytest.approx(0.0, abs=1e-9)


def test_simple_linreg_predict_scalar_and_vector():
    model = SimpleLinearRegression().fit([0.0, 1.0], [1.0, 3.0])
    assert model.predict(2.0) == pytest.approx(5.0)
    assert np.allclose(model.predict([0.0, 2.0]), [1.0, 5.0])


def test_simple_linreg_constant_regressor_predicts_mean():
    model = SimpleLinearRegression().fit([2.0, 2.0, 2.0], [1.0, 5.0, 9.0])
    assert model.slope_ == 0.0
    assert model.predict(100.0) == pytest.approx(5.0)


def test_simple_linreg_noisy_r_squared_below_one():
    rng = np.random.default_rng(0)
    x = np.linspace(0, 10, 50)
    y = 3.0 * x + rng.normal(scale=2.0, size=50)
    model = SimpleLinearRegression().fit(x, y)
    assert 0.8 < model.r_squared_ < 1.0


def test_simple_linreg_requires_two_points():
    with pytest.raises(ValueError):
        SimpleLinearRegression().fit([1.0], [2.0])


def test_simple_linreg_length_mismatch():
    with pytest.raises(ValueError):
        SimpleLinearRegression().fit([1.0, 2.0], [1.0])


def test_simple_linreg_predict_before_fit_raises():
    with pytest.raises(RuntimeError):
        SimpleLinearRegression().predict(1.0)


def test_multivariate_ols_recovers_coefficients():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(100, 3))
    true_coef = np.array([1.5, -2.0, 0.5])
    y = x @ true_coef + 4.0
    model = LinearRegression().fit(x, y)
    assert np.allclose(model.coef_, true_coef, atol=1e-8)
    assert model.intercept_ == pytest.approx(4.0)


def test_ols_without_intercept():
    x = np.array([[1.0], [2.0], [3.0]])
    y = np.array([2.0, 4.0, 6.0])
    model = LinearRegression(fit_intercept=False).fit(x, y)
    assert model.intercept_ == 0.0
    assert model.coef_[0] == pytest.approx(2.0)


def test_ols_predict_single_row():
    model = LinearRegression().fit([[0.0], [1.0]], [1.0, 3.0])
    assert model.predict([2.0])[0] == pytest.approx(5.0)


def test_ols_rejects_bad_shapes():
    with pytest.raises(ValueError):
        LinearRegression().fit([1.0, 2.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        LinearRegression().fit([[1.0], [2.0]], [1.0, 2.0, 3.0])


def test_ols_predict_before_fit_raises():
    with pytest.raises(RuntimeError):
        LinearRegression().predict([[1.0]])


def test_ridge_shrinks_coefficients():
    rng = np.random.default_rng(2)
    x = rng.normal(size=(40, 5))
    y = x @ np.array([3.0, -1.0, 2.0, 0.0, 1.0]) + rng.normal(scale=0.1, size=40)
    ols = LinearRegression().fit(x, y)
    ridge = RidgeRegression(alpha=50.0).fit(x, y)
    assert np.linalg.norm(ridge.coef_) < np.linalg.norm(ols.coef_)


def test_ridge_alpha_zero_matches_ols():
    rng = np.random.default_rng(3)
    x = rng.normal(size=(30, 2))
    y = x @ np.array([1.0, 2.0]) + 0.5
    ols = LinearRegression().fit(x, y)
    ridge = RidgeRegression(alpha=0.0).fit(x, y)
    assert np.allclose(ridge.coef_, ols.coef_, atol=1e-8)
    assert ridge.intercept_ == pytest.approx(ols.intercept_)


def test_ridge_rejects_negative_alpha():
    with pytest.raises(ValueError):
        RidgeRegression(alpha=-1.0)


def test_ridge_does_not_shrink_intercept():
    x = np.array([[0.0], [0.0], [0.0], [0.0]])
    y = np.array([10.0, 10.0, 10.0, 10.0])
    ridge = RidgeRegression(alpha=100.0).fit(x, y)
    assert ridge.intercept_ == pytest.approx(10.0)


@given(
    st.floats(min_value=-10, max_value=10),
    st.floats(min_value=-10, max_value=10),
    st.lists(st.floats(min_value=-100, max_value=100), min_size=3, max_size=30, unique=True),
)
@settings(max_examples=60, deadline=None)
def test_simple_linreg_exact_recovery_property(slope, intercept, xs):
    x = np.asarray(xs)
    y = slope * x + intercept
    model = SimpleLinearRegression().fit(x, y)
    assert model.predict(x) == pytest.approx(y, abs=1e-6)
