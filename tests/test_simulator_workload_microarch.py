"""Tests for repro.simulator.workload and repro.simulator.microarch."""

import dataclasses

import numpy as np
import pytest

from repro.simulator import REFERENCE_MACHINE, MicroarchConfig, WorkloadCharacteristics


def _workload(**overrides):
    values = dict(
        name="synthetic",
        domain="int",
        dynamic_instructions=1000.0,
        memory_fraction=0.4,
        branch_fraction=0.2,
        fp_fraction=0.0,
        ilp=2.0,
        working_set_mb=10.0,
        locality_exponent=0.8,
        branch_entropy=0.3,
        memory_level_parallelism=2.0,
        vectorizable_fraction=0.1,
    )
    values.update(overrides)
    return WorkloadCharacteristics(**values)


def _machine(**overrides):
    values = dict(
        name="test machine",
        isa="x86",
        frequency_ghz=2.0,
        issue_width=4,
        rob_size=96,
        pipeline_depth=14,
        l1_kb=32,
        l2_kb=2048,
        l3_kb=0,
        mem_latency_ns=80.0,
        mem_bandwidth_gbs=8.0,
        branch_predictor_quality=0.95,
        fp_throughput=1.0,
        simd_width=2,
        isa_efficiency=1.0,
    )
    values.update(overrides)
    return MicroarchConfig(**values)


# ----------------------------------------------------------------- workload
def test_workload_feature_vector_matches_field_order():
    workload = _workload()
    vector = workload.as_feature_vector()
    assert vector.shape == (len(WorkloadCharacteristics.FEATURE_NAMES),)
    assert vector[0] == workload.dynamic_instructions
    assert vector[1] == workload.memory_fraction
    assert vector[-1] == workload.vectorizable_fraction


def test_workload_memory_bound_flag():
    assert _workload(working_set_mb=100.0).is_memory_bound()
    assert not _workload(working_set_mb=0.5).is_memory_bound()


def test_workload_with_name_copies_characteristics():
    base = _workload()
    clone = base.with_name("my-app", description="internal workload")
    assert clone.name == "my-app"
    assert clone.description == "internal workload"
    assert np.array_equal(clone.as_feature_vector(), base.as_feature_vector())


def test_workload_rejects_invalid_domain():
    with pytest.raises(ValueError):
        _workload(domain="mixed")


def test_workload_rejects_out_of_range_fractions():
    with pytest.raises(ValueError):
        _workload(memory_fraction=1.2)
    with pytest.raises(ValueError):
        _workload(branch_entropy=-0.1)
    with pytest.raises(ValueError):
        _workload(memory_fraction=0.7, branch_fraction=0.5)


def test_workload_rejects_nonpositive_scalars():
    with pytest.raises(ValueError):
        _workload(dynamic_instructions=0.0)
    with pytest.raises(ValueError):
        _workload(ilp=0.0)
    with pytest.raises(ValueError):
        _workload(working_set_mb=-1.0)
    with pytest.raises(ValueError):
        _workload(locality_exponent=0.0)
    with pytest.raises(ValueError):
        _workload(memory_level_parallelism=0.5)


# ---------------------------------------------------------------- microarch
def test_microarch_latency_and_cache_helpers():
    machine = _machine(frequency_ghz=2.5, mem_latency_ns=60.0, l1_kb=32, l2_kb=256, l3_kb=8192)
    assert machine.memory_latency_cycles() == pytest.approx(150.0)
    assert machine.total_cache_kb() == 32 + 256 + 8192


def test_microarch_is_frozen():
    machine = _machine()
    with pytest.raises(dataclasses.FrozenInstanceError):
        machine.frequency_ghz = 3.0


def test_microarch_validation_errors():
    with pytest.raises(ValueError):
        _machine(frequency_ghz=0.0)
    with pytest.raises(ValueError):
        _machine(issue_width=0)
    with pytest.raises(ValueError):
        _machine(rob_size=0)
    with pytest.raises(ValueError):
        _machine(pipeline_depth=0)
    with pytest.raises(ValueError):
        _machine(l1_kb=0)
    with pytest.raises(ValueError):
        _machine(l2_kb=-1)
    with pytest.raises(ValueError):
        _machine(mem_latency_ns=0.0)
    with pytest.raises(ValueError):
        _machine(mem_bandwidth_gbs=0.0)
    with pytest.raises(ValueError):
        _machine(branch_predictor_quality=1.5)
    with pytest.raises(ValueError):
        _machine(fp_throughput=0.0)
    with pytest.raises(ValueError):
        _machine(simd_width=0)
    with pytest.raises(ValueError):
        _machine(isa_efficiency=0.0)


def test_reference_machine_is_a_slow_1990s_part():
    assert REFERENCE_MACHINE.frequency_ghz < 0.5
    assert REFERENCE_MACHINE.isa == "sparc"
    assert REFERENCE_MACHINE.l3_kb == 0
