"""Equivalence and plumbing tests for the batched cross-validation engine.

The batched engine is only allowed to be *fast*: every vectorised path must
reproduce the sequential implementation it replaces.  These tests pin that
contract — stacked MLP training against per-network training, downdated
leave-one-out NNᵀ against per-application refits, the batched pipeline
against the per-cell pipeline, and the process-pool fan-out against the
in-process path — plus the satellite API changes that ride along
(read-only matrix views, the ``gradient_clip`` knob).
"""

import numpy as np
import pytest

from repro.core import (
    BatchedLinearTransposition,
    BatchedMLPTransposition,
    LinearTranspositionPredictor,
    SplitContext,
    TranspositionMethod,
    run_cross_validation,
    supports_batched_prediction,
)
from repro.core.mlp_predictor import MLPTranspositionPredictor
from repro.data import build_default_dataset, family_cross_validation_splits
from repro.ml import BatchedMLPRegressor, MLPRegressor


@pytest.fixture(scope="module")
def dataset():
    return build_default_dataset()


@pytest.fixture(scope="module")
def splits(dataset):
    return family_cross_validation_splits(dataset)


# ----------------------------------------------------- batched MLP equivalence
def test_batched_mlp_matches_sequential_across_shapes():
    rng = np.random.default_rng(0)
    for n_networks, n_samples, n_features, epochs, seed in [
        (4, 12, 5, 120, 0),
        (2, 25, 9, 60, 7),
        (6, 8, 3, 200, 3),
    ]:
        features = rng.uniform(1.0, 50.0, (n_networks, n_samples, n_features))
        targets = rng.uniform(1.0, 50.0, (n_networks, n_samples))
        queries = rng.uniform(1.0, 50.0, (n_networks, 6, n_features))
        # backend="numpy" pins the reference kernel: the 1e-10 agreement is
        # the NumPy-backend contract, independent of any REPRO_BACKEND
        # selection the surrounding environment (e.g. the CI matrix leg) made.
        batched = BatchedMLPRegressor(epochs=epochs, seed=seed, backend="numpy").fit(
            features, targets
        )
        predictions = batched.predict(queries)
        for n in range(n_networks):
            reference = (
                MLPRegressor(epochs=epochs, seed=seed)
                .fit(features[n], targets[n])
                .predict(queries[n])
            )
            np.testing.assert_allclose(predictions[n], reference, rtol=1e-10)


def test_batched_mlp_matches_sequential_with_explicit_hyperparameters():
    rng = np.random.default_rng(1)
    features = rng.uniform(-2.0, 2.0, (3, 15, 4))
    targets = rng.uniform(-2.0, 2.0, (3, 15))
    kwargs = dict(
        hidden_units=5, learning_rate=0.1, momentum=0.5, epochs=90, seed=4, gradient_clip=1.0
    )
    batched = BatchedMLPRegressor(**kwargs, backend="numpy").fit(features, targets)
    predictions = batched.predict(features)
    assert batched.n_networks == 3
    assert batched.n_hidden_units == 5
    for n in range(3):
        reference = MLPRegressor(**kwargs).fit(features[n], targets[n]).predict(features[n])
        np.testing.assert_allclose(predictions[n], reference, rtol=1e-10)


def test_batched_mlp_single_network_stack_matches_sequential():
    # Regression: a one-network stack used to inherit read-only broadcast
    # views for its weights and crash inside the in-place SGD updates.
    rng = np.random.default_rng(8)
    features = rng.uniform(1.0, 50.0, (1, 10, 4))
    targets = rng.uniform(1.0, 50.0, (1, 10))
    queries = rng.uniform(1.0, 50.0, (1, 5, 4))
    batched = BatchedMLPRegressor(epochs=50, seed=2, backend="numpy").fit(
        features, targets
    )
    reference = MLPRegressor(epochs=50, seed=2).fit(features[0], targets[0]).predict(queries[0])
    np.testing.assert_allclose(batched.predict(queries)[0], reference, rtol=1e-10)


def test_batched_mlp_validation():
    with pytest.raises(ValueError):
        BatchedMLPRegressor(hidden_units=0)
    with pytest.raises(ValueError):
        BatchedMLPRegressor(gradient_clip=0.0)
    model = BatchedMLPRegressor(epochs=1)
    with pytest.raises(ValueError):
        model.fit(np.zeros((2, 4)), np.zeros((2,)))  # not 3-D
    with pytest.raises(ValueError):
        model.fit(np.ones((2, 1, 3)), np.ones((2, 1)))  # one sample
    with pytest.raises(RuntimeError):
        model.predict(np.ones((2, 2, 3)))


# ------------------------------------------------- NNᵀ leave-one-out downdating
def test_nnt_leave_one_out_matches_refit_across_shapes():
    rng = np.random.default_rng(2)
    for n_benchmarks, n_predictive, n_target in [(8, 5, 3), (29, 20, 7), (5, 2, 1)]:
        predictive = rng.uniform(1.0, 60.0, (n_benchmarks, n_predictive))
        target = rng.uniform(1.0, 60.0, (n_benchmarks, n_target))
        for criterion in ("rss", "correlation"):
            for top_k in (1, 2):
                predictor = LinearTranspositionPredictor(
                    selection_criterion=criterion, top_k=top_k, backend="numpy"
                )
                leave_one_out = predictor.predict_leave_one_out(predictive, target)
                assert leave_one_out.shape == (n_benchmarks, n_target)
                for row in range(n_benchmarks):
                    keep = np.arange(n_benchmarks) != row
                    reference = LinearTranspositionPredictor(
                        selection_criterion=criterion, top_k=top_k
                    ).predict(predictive[keep], predictive[row], target[keep])
                    np.testing.assert_allclose(
                        leave_one_out[row], reference, rtol=1e-9, atol=1e-12
                    )


def test_nnt_leave_one_out_requires_three_benchmarks():
    with pytest.raises(ValueError):
        LinearTranspositionPredictor().predict_leave_one_out(
            np.ones((2, 3)), np.ones((2, 2))
        )


def test_nnt_selection_breaks_ties_by_lowest_index():
    # All predictive machines are identical, so every fit ties; the stable
    # selection must keep the historical mergesort behaviour (lowest index).
    rng = np.random.default_rng(3)
    column = rng.uniform(1.0, 10.0, (12, 1))
    predictive = np.tile(column, (1, 6))
    target = rng.uniform(1.0, 10.0, (12, 4))
    app = rng.uniform(1.0, 10.0, 6)
    predictor = LinearTranspositionPredictor()
    predictor.predict(predictive, app, target)
    assert predictor.chosen_predictive_machines() == [0, 0, 0, 0]


# -------------------------------------------------------- pipeline equivalence
def _transposition_methods(batched, epochs=40):
    # The per-cell reference adapters are pure sequential NumPy, so the
    # batched side pins backend="numpy" — this equivalence is the reference
    # kernel's contract, whatever REPRO_BACKEND says.
    if batched:
        return {
            "NN^T": BatchedLinearTransposition(backend="numpy"),
            "MLP^T": BatchedMLPTransposition(epochs=epochs, seed=0, backend="numpy"),
        }
    return {
        "NN^T": TranspositionMethod(LinearTranspositionPredictor, "NN^T"),
        "MLP^T": TranspositionMethod(
            lambda: MLPTranspositionPredictor(epochs=epochs, seed=0), "MLP^T"
        ),
    }


def test_batched_methods_implement_both_protocols():
    methods = _transposition_methods(batched=True)
    for method in methods.values():
        assert isinstance(method, TranspositionMethod)
        assert supports_batched_prediction(method)
    assert not supports_batched_prediction(
        TranspositionMethod(LinearTranspositionPredictor, "NN^T")
    )


def test_batched_pipeline_matches_per_cell_pipeline(dataset, splits):
    applications = ["leslie3d", "gcc", "namd"]
    chosen_splits = splits[:2]
    sequential = run_cross_validation(
        dataset, chosen_splits, _transposition_methods(False), applications
    )
    batched = run_cross_validation(
        dataset, chosen_splits, _transposition_methods(True), applications
    )
    for name in ("NN^T", "MLP^T"):
        assert len(sequential[name].cells) == len(batched[name].cells)
        for cell_a, cell_b in zip(sequential[name].cells, batched[name].cells):
            assert cell_a.split_name == cell_b.split_name
            assert cell_a.application == cell_b.application
            assert cell_a.rank_correlation == pytest.approx(
                cell_b.rank_correlation, rel=1e-9, abs=1e-12
            )
            assert cell_a.top1_error_percent == pytest.approx(
                cell_b.top1_error_percent, rel=1e-9, abs=1e-9
            )
            assert cell_a.mean_error_percent == pytest.approx(
                cell_b.mean_error_percent, rel=1e-9, abs=1e-9
            )


def test_run_cross_validation_is_deterministic(dataset, splits):
    applications = ["gcc", "lbm"]
    methods = lambda: _transposition_methods(True, epochs=25)  # noqa: E731
    first = run_cross_validation(dataset, splits[:2], methods(), applications)
    second = run_cross_validation(dataset, splits[:2], methods(), applications)
    for name in first:
        assert first[name].cells == second[name].cells


def test_run_cross_validation_n_jobs_matches_in_process(dataset, splits):
    applications = ["gcc", "mcf"]
    methods = {"NN^T": BatchedLinearTransposition()}
    in_process = run_cross_validation(dataset, splits[:3], methods, applications)
    fanned_out = run_cross_validation(
        dataset, splits[:3], {"NN^T": BatchedLinearTransposition()}, applications, n_jobs=2
    )
    assert in_process["NN^T"].cells == fanned_out["NN^T"].cells


def test_run_cross_validation_rejects_bad_n_jobs(dataset, splits):
    with pytest.raises(ValueError):
        run_cross_validation(
            dataset, splits[:1], {"NN^T": BatchedLinearTransposition()}, ["gcc"], n_jobs=0
        )


def test_split_context_is_cached_and_consistent(dataset, splits):
    split = splits[0]
    context = SplitContext.for_split(dataset, split)
    assert SplitContext.for_split(dataset, split) is context
    assert context.predictive_scores.shape == (
        len(dataset.benchmark_names),
        split.n_predictive,
    )
    assert context.target_scores.shape == (len(dataset.benchmark_names), split.n_target)
    # Values line up with the (slower) named-selection path.
    reference = dataset.matrix.select_machines(split.predictive_ids).scores
    np.testing.assert_array_equal(context.predictive_scores, reference)
    np.testing.assert_array_equal(
        context.app_predictive_scores("gcc"),
        dataset.matrix.select_machines(split.predictive_ids).benchmark_scores("gcc"),
    )


def test_transposition_method_validates_training_benchmarks(dataset, splits):
    method = TranspositionMethod(LinearTranspositionPredictor, "NN^T")
    with pytest.raises(ValueError):
        method.predict_application_scores(dataset, splits[0], "gcc", ["gcc", "mcf"])
    with pytest.raises(ValueError):
        method.predict_application_scores(dataset, splits[0], "gcc", [])


# ------------------------------------------------------ GA-kNN fitness batching
def _reference_loo_fitness(baseline, features, scores, weights):
    """The per-benchmark leave-one-out loop the vectorised fitness replaced."""
    n_benchmarks = features.shape[0]
    errors = np.empty(n_benchmarks)
    for i in range(n_benchmarks):
        others = np.arange(n_benchmarks) != i
        predicted = baseline._knn_predict(
            features[i], features[others], scores[others], weights
        )
        errors[i] = float(np.mean(np.abs(predicted - scores[i]) / scores[i]))
    return float(errors.mean())


def test_ga_knn_vectorised_fitness_matches_per_benchmark_loop(dataset, splits):
    from repro.baselines import GAKNNBaseline
    from repro.ml.preprocessing import StandardScaler

    baseline = GAKNNBaseline(k=10)
    split = splits[0]
    training = [name for name in dataset.benchmark_names if name != "gcc"]
    features = StandardScaler().fit_transform(dataset.benchmark_feature_matrix(training))
    scores = np.ascontiguousarray(
        dataset.matrix.select_benchmarks(training).select_machines(split.target_ids).scores
    )
    pairwise_sq = np.ascontiguousarray(
        ((features[:, None, :] - features[None, :, :]) ** 2).transpose(2, 0, 1)
    )
    rng = np.random.default_rng(4)
    for _ in range(10):
        weights = rng.uniform(0.0, 1.0, features.shape[1])
        vectorised = baseline._loo_fitness(weights, pairwise_sq, scores)
        reference = _reference_loo_fitness(baseline, features, scores, weights)
        # Bit-identical on the study dataset (7 characteristics).
        assert vectorised == reference


def test_ga_knn_vectorised_fitness_matches_on_wide_feature_spaces():
    # Beyond NumPy's pairwise-summation block (>= 8 characteristics) the two
    # reduction orders may differ in the last ulp; agreement must stay tight.
    from repro.baselines import GAKNNBaseline

    baseline = GAKNNBaseline(k=5)
    rng = np.random.default_rng(6)
    features = rng.normal(size=(20, 12))
    scores = rng.uniform(1.0, 50.0, (20, 6))
    pairwise_sq = np.ascontiguousarray(
        ((features[:, None, :] - features[None, :, :]) ** 2).transpose(2, 0, 1)
    )
    for _ in range(10):
        weights = rng.uniform(0.0, 1.0, 12)
        vectorised = baseline._loo_fitness(weights, pairwise_sq, scores)
        reference = _reference_loo_fitness(baseline, features, scores, weights)
        assert vectorised == pytest.approx(reference, rel=1e-12)


# ----------------------------------------------------------- satellite changes
def test_machine_index_map_is_read_only(dataset):
    index = dataset.matrix.machine_index_map
    assert index[dataset.matrix.machines[0]] == 0
    assert len(index) == len(dataset.matrix.machines)
    with pytest.raises(TypeError):
        index["new-machine"] = 1


def test_matrix_score_accessors_return_read_only_views(dataset):
    matrix = dataset.matrix
    row = matrix.benchmark_scores("gcc")
    column = matrix.machine_scores(matrix.machines[0])
    np.testing.assert_array_equal(row, matrix.scores[matrix.benchmark_index("gcc")])
    with pytest.raises(ValueError):
        row[0] = 1.0
    with pytest.raises(ValueError):
        column[0] = 1.0
    # The matrix owns an immutable copy, so in-place edits cannot silently
    # desynchronise cached split contexts — they raise instead.
    with pytest.raises(ValueError):
        matrix.scores[0, 0] = 1.0


def test_gradient_clip_is_configurable():
    with pytest.raises(ValueError):
        MLPRegressor(gradient_clip=0.0)
    assert MLPRegressor().gradient_clip == MLPRegressor.GRADIENT_CLIP
    # A looser clip changes the training trajectory on data whose scaled
    # errors exceed the default threshold.
    rng = np.random.default_rng(5)
    x = rng.uniform(-1.0, 1.0, (12, 2))
    y = rng.uniform(-1.0, 1.0, 12)
    tight = MLPRegressor(epochs=30, seed=0, normalize=False, gradient_clip=0.01).fit(x, 10 * y)
    loose = MLPRegressor(epochs=30, seed=0, normalize=False, gradient_clip=100.0).fit(x, 10 * y)
    assert not np.array_equal(tight.predict(x), loose.predict(x))
    # The transposition predictor forwards the knob.
    predictor = MLPTranspositionPredictor(epochs=5, gradient_clip=7.5)
    assert predictor.gradient_clip == 7.5
