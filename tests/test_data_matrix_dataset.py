"""Tests for PerformanceMatrix, the synthetic dataset and SpecDataset."""

import numpy as np
import pytest

from repro.data import (
    PerformanceMatrix,
    SpecDataset,
    benchmark_by_name,
    build_default_dataset,
    build_machine_catalogue,
    generate_performance_matrix,
    score_application,
)


@pytest.fixture(scope="module")
def dataset():
    return build_default_dataset()


def _small_matrix():
    return PerformanceMatrix(
        benchmarks=["a", "b", "c"],
        machines=["m1", "m2"],
        scores=np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]),
    )


# ----------------------------------------------------------------- matrix
def test_matrix_shape_and_lookup():
    matrix = _small_matrix()
    assert matrix.shape == (3, 2)
    assert matrix.score("b", "m2") == 4.0
    assert matrix.benchmark_scores("a").tolist() == [1.0, 2.0]
    assert matrix.machine_scores("m1").tolist() == [1.0, 3.0, 5.0]


def test_matrix_unknown_names_raise():
    matrix = _small_matrix()
    with pytest.raises(KeyError):
        matrix.benchmark_index("zzz")
    with pytest.raises(KeyError):
        matrix.machine_index("zzz")


def test_matrix_validation_errors():
    with pytest.raises(ValueError):
        PerformanceMatrix(["a"], ["m1"], np.ones((2, 1)))
    with pytest.raises(ValueError):
        PerformanceMatrix(["a", "a"], ["m1"], np.ones((2, 1)))
    with pytest.raises(ValueError):
        PerformanceMatrix(["a"], ["m1", "m1"], np.ones((1, 2)))
    with pytest.raises(ValueError):
        PerformanceMatrix(["a"], ["m1"], np.array([[np.nan]]))
    with pytest.raises(ValueError):
        PerformanceMatrix(["a"], ["m1"], np.array([[-1.0]]))


def test_matrix_select_and_drop():
    matrix = _small_matrix()
    sub = matrix.select_machines(["m2"])
    assert sub.machines == ["m2"]
    assert sub.benchmark_scores("c").tolist() == [6.0]
    sub_b = matrix.select_benchmarks(["c", "a"])
    assert sub_b.benchmarks == ["c", "a"]
    dropped = matrix.drop_benchmark("b")
    assert dropped.benchmarks == ["a", "c"]
    dropped_m = matrix.drop_machines(["m1"])
    assert dropped_m.machines == ["m2"]
    with pytest.raises(KeyError):
        matrix.drop_benchmark("zzz")
    with pytest.raises(KeyError):
        matrix.drop_machines(["zzz"])


def test_matrix_transposed_round_trip():
    matrix = _small_matrix()
    transposed = matrix.transposed()
    assert transposed.benchmarks == matrix.machines
    assert transposed.machines == matrix.benchmarks
    assert np.array_equal(transposed.scores, matrix.scores.T)
    assert np.array_equal(transposed.transposed().scores, matrix.scores)


def test_matrix_means():
    matrix = _small_matrix()
    assert matrix.machine_means().tolist() == [3.0, 4.0]
    assert matrix.benchmark_means().tolist() == [1.5, 3.5, 5.5]


def test_matrix_csv_round_trip(tmp_path):
    matrix = _small_matrix()
    path = matrix.to_csv(tmp_path / "scores.csv")
    loaded = PerformanceMatrix.from_csv(path)
    assert loaded.benchmarks == matrix.benchmarks
    assert loaded.machines == matrix.machines
    assert np.allclose(loaded.scores, matrix.scores)


def test_matrix_from_csv_rejects_other_files(tmp_path):
    bogus = tmp_path / "bogus.csv"
    bogus.write_text("foo,bar\n1,2\n")
    with pytest.raises(ValueError):
        PerformanceMatrix.from_csv(bogus)


# --------------------------------------------------------- synthetic builder
def test_generate_performance_matrix_default_dimensions(dataset):
    assert dataset.matrix.shape == (29, 117)


def test_generate_performance_matrix_rejects_empty_inputs():
    with pytest.raises(ValueError):
        generate_performance_matrix(machines=[], noise_sigma=0.0)
    with pytest.raises(ValueError):
        generate_performance_matrix(benchmarks=[], noise_sigma=0.0)


def test_generated_scores_are_reproducible():
    machines = build_machine_catalogue()[:6]
    first = generate_performance_matrix(machines=machines, seed=3)
    second = generate_performance_matrix(machines=machines, seed=3)
    assert np.array_equal(first.scores, second.scores)


def test_generated_scores_plausible_range(dataset):
    scores = dataset.matrix.scores
    assert scores.min() > 0.5
    assert scores.max() < 250.0


def test_same_family_machines_correlate_strongly(dataset):
    gainestown = [mid for mid in dataset.machine_ids if "gainestown" in mid]
    a = dataset.matrix.machine_scores(gainestown[0])
    b = dataset.matrix.machine_scores(gainestown[1])
    assert np.corrcoef(a, b)[0, 1] > 0.98


def test_cross_isa_machines_correlate_less_than_same_nickname(dataset):
    xeon = dataset.matrix.machine_scores("intel-xeon-gainestown-1")
    xeon_sibling = dataset.matrix.machine_scores("intel-xeon-gainestown-2")
    sparc = dataset.matrix.machine_scores("ultrasparc-iii-cheetah+-1")
    same = np.corrcoef(xeon, xeon_sibling)[0, 1]
    cross = np.corrcoef(xeon, sparc)[0, 1]
    assert cross < same


def test_memory_outliers_have_above_average_scores(dataset):
    suite_mean = dataset.matrix.scores.mean()
    for name in ("leslie3d", "cactusADM", "libquantum", "lbm"):
        assert dataset.matrix.benchmark_scores(name).mean() > suite_mean, name


def test_compute_bound_benchmarks_have_below_average_scores(dataset):
    suite_mean = dataset.matrix.scores.mean()
    for name in ("namd", "hmmer"):
        assert dataset.matrix.benchmark_scores(name).mean() < suite_mean, name


def test_modern_nehalem_beats_old_ultrasparc_everywhere(dataset):
    nehalem = dataset.matrix.machine_scores("intel-xeon-gainestown-2")
    old = dataset.matrix.machine_scores("ultrasparc-iii-cheetah+-2")
    assert np.all(nehalem > old)


def test_score_application_matches_matrix_for_suite_benchmark(dataset):
    workload = benchmark_by_name("gcc")
    machines = list(dataset.machines[:5])
    scores = score_application(workload, machines, noise_sigma=0.03, seed=0)
    expected = [dataset.matrix.score("gcc", machine.machine_id) for machine in machines]
    assert np.allclose(scores, expected)


# --------------------------------------------------------------- SpecDataset
def test_dataset_metadata_consistency(dataset):
    assert dataset.machine_ids == dataset.matrix.machines
    assert dataset.benchmark_names == dataset.matrix.benchmarks
    assert dataset.machine("intel-xeon-gainestown-1").nickname == "Gainestown"
    assert dataset.benchmark("mcf").name == "mcf"
    with pytest.raises(KeyError):
        dataset.machine("nope")
    with pytest.raises(KeyError):
        dataset.benchmark("nope")


def test_dataset_groupings(dataset):
    families = dataset.families()
    years = dataset.years()
    assert len(families) == 17
    assert sum(len(v) for v in families.values()) == 117
    assert sum(len(v) for v in years.values()) == 117


def test_dataset_feature_matrix_shape(dataset):
    features = dataset.benchmark_feature_matrix()
    assert features.shape == (29, 7)
    subset = dataset.benchmark_feature_matrix(["mcf", "lbm"])
    assert subset.shape == (2, 7)


def test_dataset_restrict_machines(dataset):
    subset_ids = dataset.machine_ids[:10]
    restricted = dataset.restrict_machines(subset_ids)
    assert restricted.machine_ids == subset_ids
    assert restricted.matrix.shape == (29, 10)
    with pytest.raises(KeyError):
        dataset.restrict_machines(["nope"])


def test_dataset_validation_rejects_mismatched_metadata(dataset):
    with pytest.raises(ValueError):
        SpecDataset(
            matrix=dataset.matrix,
            machines=tuple(reversed(dataset.machines)),
            benchmarks=dataset.benchmarks,
        )
    with pytest.raises(ValueError):
        SpecDataset(
            matrix=dataset.matrix,
            machines=dataset.machines,
            benchmarks=tuple(reversed(dataset.benchmarks)),
        )


def test_build_default_dataset_is_cached():
    assert build_default_dataset() is build_default_dataset()
