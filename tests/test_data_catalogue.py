"""Tests for the benchmark suite and machine catalogue (Table 1 structure)."""

import numpy as np
import pytest

from repro.data import (
    NICKNAME_SPECS,
    PROCESSOR_FAMILIES,
    SPEC_CPU2006_BENCHMARKS,
    SPEC_FP_2006,
    SPEC_INT_2006,
    benchmark_by_name,
    benchmark_names,
    build_machine_catalogue,
    machines_by_family,
    machines_by_year,
)


# ------------------------------------------------------------ benchmark suite
def test_suite_has_29_benchmarks_12_int_17_fp():
    assert len(SPEC_CPU2006_BENCHMARKS) == 29
    assert len(SPEC_INT_2006) == 12
    assert len(SPEC_FP_2006) == 17


def test_benchmark_names_are_unique_and_sorted():
    names = benchmark_names()
    assert len(set(names)) == 29
    assert names == sorted(names, key=str.lower)


def test_well_known_benchmarks_present():
    names = set(benchmark_names())
    for expected in ("perlbench", "mcf", "libquantum", "leslie3d", "cactusADM", "lbm", "namd", "hmmer"):
        assert expected in names


def test_benchmark_by_name_lookup_and_error():
    workload = benchmark_by_name("mcf")
    assert workload.name == "mcf"
    assert workload.domain == "int"
    with pytest.raises(KeyError):
        benchmark_by_name("not-a-benchmark")


def test_outlier_benchmarks_are_memory_bound():
    for name in ("leslie3d", "cactusADM", "libquantum", "lbm", "mcf"):
        assert benchmark_by_name(name).is_memory_bound(), name


def test_compute_benchmarks_are_not_memory_bound():
    for name in ("namd", "hmmer", "gamess", "povray"):
        assert not benchmark_by_name(name).is_memory_bound(), name


def test_domains_match_suites():
    for workload in SPEC_INT_2006:
        assert workload.domain == "int"
    for workload in SPEC_FP_2006:
        assert workload.domain == "fp"


# --------------------------------------------------------- machine catalogue
def test_catalogue_has_117_machines_39_nicknames_17_families():
    machines = build_machine_catalogue()
    assert len(machines) == 117
    assert len(NICKNAME_SPECS) == 39
    assert len(PROCESSOR_FAMILIES) == 17
    nicknames = {(machine.family, machine.nickname) for machine in machines}
    assert len(nicknames) == 39


def test_three_machines_per_nickname():
    machines = build_machine_catalogue()
    counts = {}
    for machine in machines:
        counts[(machine.family, machine.nickname)] = counts.get((machine.family, machine.nickname), 0) + 1
    assert set(counts.values()) == {3}


def test_machine_ids_are_unique_and_stable():
    first = build_machine_catalogue()
    second = build_machine_catalogue()
    ids = [machine.machine_id for machine in first]
    assert len(set(ids)) == 117
    assert ids == [machine.machine_id for machine in second]


def test_variants_of_one_nickname_differ_only_in_grade():
    machines = [m for m in build_machine_catalogue() if m.nickname == "Gainestown"]
    assert len(machines) == 3
    frequencies = [m.config.frequency_ghz for m in machines]
    assert len(set(frequencies)) == 3
    assert all(m.config.l3_kb == machines[0].config.l3_kb for m in machines)
    assert all(m.family == "Intel Xeon" for m in machines)


def test_paper_families_present():
    expected_families = {
        "AMD Opteron (K10)", "AMD Opteron (K8)", "AMD Phenom", "AMD Turion",
        "IBM POWER 5", "IBM POWER 6", "Intel Core 2", "Intel Core Duo",
        "Intel Core i7", "Intel Itanium", "Intel Pentium D",
        "Intel Pentium Dual-Core", "Intel Pentium M", "Intel Xeon",
        "SPARC64 VI", "SPARC64 VII", "UltraSPARC III",
    }
    assert set(PROCESSOR_FAMILIES) == expected_families


def test_machines_by_family_partition():
    machines = build_machine_catalogue()
    grouped = machines_by_family(machines)
    assert sum(len(group) for group in grouped.values()) == 117
    assert len(grouped["Intel Xeon"]) == 13 * 3


def test_machines_by_year_partition_and_2009_targets_exist():
    machines = build_machine_catalogue()
    grouped = machines_by_year(machines)
    assert sum(len(group) for group in grouped.values()) == 117
    assert len(grouped[2009]) >= 9
    assert len(grouped[2008]) >= 18
    assert len(grouped.get(2007, [])) >= 9
    assert all(year <= 2009 for year in grouped)


def test_machine_spec_properties():
    machine = build_machine_catalogue()[0]
    assert machine.name == machine.config.name
    assert machine.isa == machine.config.isa


def test_isas_cover_x86_power_sparc_ia64():
    machines = build_machine_catalogue()
    assert {machine.isa for machine in machines} == {"x86", "power", "sparc", "ia64"}


def test_release_years_are_plausible():
    for machine in build_machine_catalogue():
        assert 2001 <= machine.release_year <= 2009
