"""Tests for the repro-serve wire protocol and front ends.

Covers request parsing (every malformed-payload branch answers with an
error object, never a traceback), the stdio JSON-lines loop, the TCP front
end with micro-batching, and the CLI dispatch from ``repro-experiments
serve``.
"""

import asyncio
import io
import json

import pytest

from repro.core import BatchedLinearTransposition
from repro.data import build_default_dataset
from repro.service import (
    InProcessClient,
    PredictionService,
    RankingQuery,
    ServiceError,
    build_service,
    serve_stdio,
    serve_tcp,
)
from repro.service.server import query_from_payload, reply_to_payload


@pytest.fixture(scope="module")
def dataset():
    return build_default_dataset()


@pytest.fixture(scope="module")
def service(dataset):
    return PredictionService(dataset, {"NN^T": BatchedLinearTransposition()})


# ------------------------------------------------------------------ protocol
def test_query_from_payload_round_trip(dataset):
    payload = {
        "application": "gcc",
        "predictive_machines": dataset.machine_ids[:3],
        "target_machines": dataset.machine_ids[3:6],
        "method": "NN^T",
        "top_n": 2,
    }
    query = query_from_payload(payload)
    assert query == RankingQuery(
        "gcc",
        tuple(dataset.machine_ids[:3]),
        tuple(dataset.machine_ids[3:6]),
        "NN^T",
        2,
    )


@pytest.mark.parametrize(
    "payload",
    [
        [],  # not an object
        {"predictive_machines": ["m"]},  # missing application
        {"application": "gcc"},  # missing predictive machines
        {"application": 7, "predictive_machines": ["m"]},
        {"application": "gcc", "predictive_machines": "m001"},
        {"application": "gcc", "predictive_machines": [1, 2]},
        {"application": "gcc", "predictive_machines": ["m"], "target_machines": "m"},
        {"application": "gcc", "predictive_machines": ["m"], "top_n": "3"},
        {"application": "gcc", "predictive_machines": ["m"], "top_n": True},
        {"application": "gcc", "predictive_machines": ["m"], "method": 5},
        {"application": "gcc", "predictive_machines": ["m"], "surprise": True},
        {"application": "gcc", "predictive_machines": ["m"], "deadline_ms": "1s"},
        {"application": "gcc", "predictive_machines": ["m"], "deadline_ms": 0},
        {"application": "gcc", "predictive_machines": ["m"], "deadline_ms": True},
    ],
)
def test_query_from_payload_rejects_malformed_requests(payload):
    with pytest.raises(ServiceError):
        query_from_payload(payload)


def test_reply_payload_shape(service, dataset):
    reply = service.rank(RankingQuery("gcc", tuple(dataset.machine_ids[:4]), top_n=2))
    payload = reply_to_payload(reply)
    assert payload["ok"] is True
    assert payload["application"] == "gcc"
    assert [entry["machine"] for entry in payload["ranking"]] == list(reply.machine_ids)
    assert all(isinstance(entry["score"], float) for entry in payload["ranking"])
    # The whole payload must survive JSON serialisation (the wire format).
    assert json.loads(json.dumps(payload)) == payload


# ----------------------------------------------------------------- in-process
def test_in_process_client_speaks_the_wire_protocol(service, dataset):
    client = InProcessClient(service)
    reply = client.request(
        {"application": "mcf", "predictive_machines": dataset.machine_ids[:4], "top_n": 1}
    )
    assert reply["ok"] is True and len(reply["ranking"]) == 1
    error = client.request({"application": "mcf"})
    assert error["ok"] is False and error["code"] == "INVALID_REQUEST"
    assert "predictive_machines" in error["error"]
    stats = client.request({"stats": True})
    assert stats["ok"] is True and stats["stats"]["entries"] >= 1


def test_stats_reply_exposes_full_cache_accounting(service, dataset):
    """The stats response carries the SplitContextCache counters + shards."""
    client = InProcessClient(service)
    client.request(
        {"application": "gcc", "predictive_machines": dataset.machine_ids[:4]}
    )
    client.request(
        {"application": "gcc", "predictive_machines": dataset.machine_ids[:4]}
    )
    stats = client.request({"stats": True})["stats"]
    assert stats["misses"] >= 1 and stats["hits"] >= 1
    lookups = stats["hits"] + stats["misses"]
    assert stats["hit_rate"] == pytest.approx(stats["hits"] / lookups)
    assert stats["capacity"] == service.cache.capacity
    assert len(stats["shards"]) == service.cache.n_shards
    # Per-shard counters sum to the aggregates.
    for key in ("hits", "misses", "evictions", "expirations", "entries"):
        assert sum(shard[key] for shard in stats["shards"]) == stats[key]
    assert json.loads(json.dumps(stats)) == stats


def test_stats_hit_rate_is_null_before_any_lookup():
    fresh = build_service(preset="smoke", cache_capacity=4, cache_shards=2)
    stats = InProcessClient(fresh).request({"stats": True})["stats"]
    assert stats["hit_rate"] is None and stats["entries"] == 0


# ---------------------------------------------------------------------- stdio
def test_serve_stdio_answers_one_line_per_request(service, dataset):
    machines = dataset.machine_ids[:4]
    lines = "\n".join(
        [
            json.dumps({"application": "gcc", "predictive_machines": machines, "top_n": 2}),
            "",  # blank lines are skipped
            "not json",
            json.dumps({"application": "gcc", "predictive_machines": ["bogus"]}),
            json.dumps({"stats": True}),
        ]
    )
    out = io.StringIO()
    served = serve_stdio(service, io.StringIO(lines), out)
    replies = [json.loads(line) for line in out.getvalue().splitlines()]
    assert served == len(replies) == 4
    assert replies[0]["ok"] is True
    assert [entry["machine"] for entry in replies[0]["ranking"]]
    assert replies[1]["ok"] is False and replies[1]["code"] == "INVALID_JSON"
    assert replies[2]["ok"] is False and replies[2]["code"] == "INVALID_REQUEST"
    assert replies[3]["ok"] is True and "stats" in replies[3]


# ------------------------------------------------------------------------ tcp
def test_serve_tcp_round_trip(service, dataset):
    machines = dataset.machine_ids[:4]

    async def run():
        server = await serve_tcp(service, "127.0.0.1", 0, window=0.001)
        port = server.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        requests = [
            {"application": "gcc", "predictive_machines": machines, "top_n": 1},
            {"application": "namd", "predictive_machines": machines, "top_n": 1},
            {"application": "gcc", "predictive_machines": ["bogus"]},
            {"stats": True},
        ]
        for request in requests:
            writer.write((json.dumps(request) + "\n").encode())
        await writer.drain()
        replies = [json.loads(await reader.readline()) for _ in requests]
        writer.close()
        await writer.wait_closed()
        server.close()
        await server.wait_closed()
        return replies

    replies = asyncio.run(asyncio.wait_for(run(), timeout=30))
    assert replies[0]["ok"] is True and replies[0]["application"] == "gcc"
    assert replies[1]["ok"] is True and replies[1]["application"] == "namd"
    assert replies[2]["ok"] is False and replies[2]["code"] == "INVALID_REQUEST"
    assert replies[3]["ok"] is True and replies[3]["stats"]["entries"] >= 1


def test_serve_tcp_pipelined_requests_coalesce_and_stay_ordered(service, dataset):
    from repro.service import MicroBatcher

    machines = dataset.machine_ids[:4]
    apps = ["gcc", "mcf", "lbm", "namd", "povray"]
    batcher = MicroBatcher(service, window=0.02)

    async def run():
        server = await serve_tcp(service, "127.0.0.1", 0, batcher=batcher)
        port = server.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        before = batcher.batches_dispatched
        # Pipeline every request in one write, then read the replies.
        writer.write(
            "".join(
                json.dumps({"application": app, "predictive_machines": machines, "top_n": 1})
                + "\n"
                for app in apps
            ).encode()
        )
        await writer.drain()
        replies = [json.loads(await reader.readline()) for _ in apps]
        writer.close()
        await writer.wait_closed()
        server.close()
        await server.wait_closed()
        return before, replies

    before, replies = asyncio.run(asyncio.wait_for(run(), timeout=30))
    # Replies come back in request order...
    assert [reply["application"] for reply in replies] == apps
    # ...and same-connection pipelined requests shared batches instead of
    # dispatching one batch per request.
    assert batcher.batches_dispatched - before < len(apps)


# ------------------------------------------------------------------------ cli
def test_build_service_applies_preset_and_rejects_unknown():
    service = build_service(preset="smoke", cache_capacity=8, cache_shards=2)
    assert set(service.methods) == {"NN^T", "MLP^T", "GA-kNN"}
    assert service.cache.capacity == 8
    assert service.cache.n_shards == 2
    with pytest.raises(ValueError):
        build_service(preset="warp-speed")


def test_cli_dispatches_serve_subcommand(dataset, capsys, monkeypatch):
    from repro import cli

    machines = dataset.machine_ids[:4]
    request = json.dumps({"application": "gcc", "predictive_machines": machines, "top_n": 1})
    monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
    assert cli.main(["serve", "--preset", "smoke"]) == 0
    reply = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
    assert reply["ok"] is True and len(reply["ranking"]) == 1


# ----------------------------------------------------------------- ops verbs
def test_health_and_ready_ops_report_ok_state(service):
    client = InProcessClient(service)
    health = client.request({"op": "health"})
    assert health["ok"] is True and health["status"] == "ok"
    assert health["ready"] is True
    assert health["degraded_served"] == 0
    ready = client.request({"op": "ready"})
    assert ready == {"ok": True, "ready": True}
    unknown = client.request({"op": "levitate"})
    assert unknown["ok"] is False and unknown["code"] == "INVALID_REQUEST"


def test_health_reports_resilient_backend_breaker():
    fresh = build_service(preset="smoke", cache_capacity=4, cache_shards=2)
    health = InProcessClient(fresh).request({"op": "health"})
    assert health["backend"]["breaker"]["state"] == "closed"
    assert health["backend"]["primary"] == fresh.resilient_backend.primary.name
    assert json.loads(json.dumps(health)) == health


# -------------------------------------------------------------- bounded lines
def test_serve_stdio_bounds_line_length(service, dataset):
    machines = dataset.machine_ids[:4]
    good = json.dumps({"application": "gcc", "predictive_machines": machines, "top_n": 1})
    huge = '{"application": "' + "x" * 4096 + '"}'
    out = io.StringIO()
    served = serve_stdio(
        service, io.StringIO(huge + "\n" + good + "\n"), out, max_line_bytes=1024
    )
    replies = [json.loads(line) for line in out.getvalue().splitlines()]
    assert served == 2
    assert replies[0]["ok"] is False and replies[0]["code"] == "PAYLOAD_TOO_LARGE"
    # The stream recovers: the next (normal) line is answered normally.
    assert replies[1]["ok"] is True


def test_serve_tcp_bounds_line_length(service, dataset):
    machines = dataset.machine_ids[:4]

    async def run():
        server = await serve_tcp(
            service, "127.0.0.1", 0, window=0.001, max_line_bytes=1024
        )
        port = server.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(b'{"application": "' + b"x" * 200_000 + b'"}\n')
        writer.write(
            (json.dumps({"application": "gcc", "predictive_machines": machines}) + "\n").encode()
        )
        await writer.drain()
        replies = [json.loads(await reader.readline()) for _ in range(2)]
        writer.close()
        await writer.wait_closed()
        server.close()
        await server.wait_closed()
        return replies

    replies = asyncio.run(asyncio.wait_for(run(), timeout=30))
    assert replies[0]["ok"] is False and replies[0]["code"] == "PAYLOAD_TOO_LARGE"
    assert replies[1]["ok"] is True


# ------------------------------------------------------------------ shutdown
def test_serve_stdio_handles_keyboard_interrupt_cleanly(service, dataset):
    machines = dataset.machine_ids[:4]
    good = json.dumps({"application": "gcc", "predictive_machines": machines, "top_n": 1})

    class InterruptingStream:
        """Yields one good line, then simulates ctrl-C on the next read."""

        def __init__(self):
            self.lines = iter([good + "\n"])

        def readline(self, limit=-1):
            try:
                return next(self.lines)
            except StopIteration:
                raise KeyboardInterrupt

    out = io.StringIO()
    served = serve_stdio(service, InterruptingStream(), out)
    assert served == 1
    assert json.loads(out.getvalue().strip())["ok"] is True


# ----------------------------------------------------------------- tcp client
def test_tcp_client_round_trip_and_reuse(service, dataset):
    from repro.service import RetryPolicy, TCPClient

    machines = dataset.machine_ids[:4]

    async def run():
        server = await serve_tcp(service, "127.0.0.1", 0, window=0.001)
        port = server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()

        def client_calls():
            with TCPClient(
                "127.0.0.1", port, retry=RetryPolicy(max_attempts=2, seed=3)
            ) as client:
                first = client.request(
                    {"application": "gcc", "predictive_machines": machines, "top_n": 1}
                )
                second = client.request({"op": "ready"})
                return first, second

        first, second = await loop.run_in_executor(None, client_calls)
        server.close()
        await server.wait_closed()
        return first, second

    first, second = asyncio.run(asyncio.wait_for(run(), timeout=30))
    assert first["ok"] is True and len(first["ranking"]) == 1
    assert second == {"ok": True, "ready": True}


def test_tcp_client_reconnects_after_connection_drop(service, dataset):
    """A dropped connection is retried on a fresh connection, not surfaced."""
    from repro.service import RetryPolicy, TCPClient

    machines = dataset.machine_ids[:4]
    drops = {"remaining": 1}

    async def run():
        server = await serve_tcp(service, "127.0.0.1", 0, window=0.001)
        real_port = server.sockets[0].getsockname()[1]

        # A proxy that kills the first connection before any reply.
        async def proxy(reader, writer):
            if drops["remaining"]:
                drops["remaining"] -= 1
                writer.close()
                return
            upstream_reader, upstream_writer = await asyncio.open_connection(
                "127.0.0.1", real_port
            )

            async def pump(src, dst):
                try:
                    while True:
                        data = await src.read(65536)
                        if not data:
                            break
                        dst.write(data)
                        await dst.drain()
                finally:
                    dst.close()

            await asyncio.gather(
                pump(reader, upstream_writer), pump(upstream_reader, writer)
            )

        front = await asyncio.start_server(proxy, "127.0.0.1", 0)
        front_port = front.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()

        def client_call():
            client = TCPClient(
                "127.0.0.1",
                front_port,
                retry=RetryPolicy(max_attempts=4, base_delay=0.01, seed=11),
            )
            try:
                return client.request(
                    {"application": "gcc", "predictive_machines": machines, "top_n": 1}
                )
            finally:
                client.close()

        reply = await loop.run_in_executor(None, client_call)
        front.close()
        await front.wait_closed()
        server.close()
        await server.wait_closed()
        return reply

    reply = asyncio.run(asyncio.wait_for(run(), timeout=30))
    assert reply["ok"] is True and drops["remaining"] == 0


# -------------------------------------------------------- stats & metrics ops
def test_stats_op_and_legacy_alias_return_identical_payloads(service, dataset):
    """``{"op": "stats"}`` and the legacy ``{"stats": true}`` are one verb."""
    client = InProcessClient(service)
    client.request(
        {"application": "mcf", "predictive_machines": dataset.machine_ids[:4]}
    )
    via_op = client.request({"op": "stats"})
    via_alias = client.request({"stats": True})
    assert via_op == via_alias
    assert via_op["ok"] is True and via_op["stats"]["methods"]


def test_stats_shard_counters_match_cache_shard_stats(service, dataset):
    """The wire payload's shards block is exactly ``cache.shard_stats()``."""
    client = InProcessClient(service)
    client.request(
        {"application": "mcf", "predictive_machines": dataset.machine_ids[:4]}
    )
    shards = client.request({"op": "stats"})["stats"]["shards"]
    direct = service.cache.shard_stats()
    assert len(shards) == len(direct)
    for wire, stats in zip(shards, direct):
        assert wire["hits"] == stats.hits
        assert wire["misses"] == stats.misses
        assert wire["evictions"] == stats.evictions
        assert wire["expirations"] == stats.expirations
        assert wire["entries"] == stats.entries


def test_stats_hit_rate_arithmetic_from_a_fresh_service(dataset):
    """One miss then one hit: hits=1, misses=1, hit_rate=0.5 exactly.

    Built directly (not via ``build_service``) so an active ``REPRO_FAULTS``
    spec in the chaos leg cannot evict the entry between the two requests.
    """
    fresh = PredictionService(dataset, {"NN^T": BatchedLinearTransposition()})
    client = InProcessClient(fresh)
    machines = list(dataset.machine_ids[:4])
    request = {"application": "gcc", "predictive_machines": machines}
    assert client.request(request)["cache_hit"] is False
    assert client.request(request)["cache_hit"] is True
    stats = client.request({"op": "stats"})["stats"]
    assert (stats["hits"], stats["misses"], stats["hit_rate"]) == (1, 1, 0.5)


def test_metrics_op_exposes_counters_and_percentiles(service, dataset):
    """The metrics verb reports request counters and latency histograms."""
    client = InProcessClient(service)
    before = client.request({"op": "metrics"})["metrics"]
    client.request(
        {"application": "lbm", "predictive_machines": dataset.machine_ids[:4]}
    )
    client.request({"application": "lbm"})  # INVALID_REQUEST: counted as error
    after = client.request({"op": "metrics"})
    assert after["ok"] is True
    metrics = after["metrics"]
    counters = metrics["counters"]
    assert counters["server.requests"] == before["counters"].get("server.requests", 0) + 2
    assert counters["server.errors"] >= 1
    assert counters["server.error.INVALID_REQUEST"] >= 1
    latency = metrics["histograms"]["server.request_ms"]
    assert latency["count"] == counters["server.requests"]
    assert latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]
    assert metrics["cache"]["capacity"] == service.cache.capacity
    assert json.loads(json.dumps(metrics)) == metrics


def test_metrics_op_is_not_counted_as_server_load(service):
    """Monitoring traffic must not perturb the load counters it reports."""
    client = InProcessClient(service)
    first = client.request({"op": "metrics"})["metrics"]["counters"]
    second = client.request({"op": "metrics"})["metrics"]["counters"]
    assert second.get("server.requests", 0) == first.get("server.requests", 0)


def test_unknown_op_lists_the_full_verb_catalogue(service):
    reply = InProcessClient(service).request({"op": "bogus"})
    assert reply["ok"] is False and reply["code"] == "INVALID_REQUEST"
    assert "health, metrics, ready, stats" in reply["error"]


# ----------------------------------------------------------------- trace echo
def test_ranking_replies_echo_a_trace_with_stage_spans(service, dataset):
    client = InProcessClient(service)
    reply = client.request(
        {"application": "milc", "predictive_machines": dataset.machine_ids[:4]}
    )
    trace = reply["trace"]
    assert trace["id"]
    stages = [span["stage"] for span in trace["spans"]]
    assert "admission" in stages and "engine" in stages and "reply" in stages
    assert all(span["ms"] >= 0 for span in trace["spans"])


def test_client_supplied_trace_id_is_echoed_back(service, dataset):
    client = InProcessClient(service)
    reply = client.request(
        {
            "application": "milc",
            "predictive_machines": dataset.machine_ids[:4],
            "trace_id": "caller-7",
        }
    )
    assert reply["trace"]["id"] == "caller-7"
    # Error replies carry a trace too (fresh id when the caller sent none).
    error = client.request({"application": "milc"})
    assert error["ok"] is False and error["trace"]["id"]


def test_tcp_replies_carry_queue_and_batch_spans(service, dataset):
    """Requests through the micro-batcher record the queue/batch stages."""
    machines = dataset.machine_ids[:4]

    async def run():
        server = await serve_tcp(service, "127.0.0.1", 0, window=0.001)
        port = server.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(
            (
                json.dumps(
                    {
                        "application": "gcc",
                        "predictive_machines": machines,
                        "trace_id": "tcp-1",
                    }
                )
                + "\n"
            ).encode()
        )
        await writer.drain()
        reply = json.loads(await reader.readline())
        writer.close()
        await writer.wait_closed()
        server.close()
        await server.wait_closed()
        return reply

    reply = asyncio.run(asyncio.wait_for(run(), timeout=30))
    assert reply["ok"] is True and reply["trace"]["id"] == "tcp-1"
    stages = [span["stage"] for span in reply["trace"]["spans"]]
    for stage in ("admission", "queue", "batch", "engine", "reply"):
        assert stage in stages, stages
