"""Tests for the serving stack's resilience layer.

Three layers of coverage:

* unit — :class:`Deadline`, :class:`CircuitBreaker` (trip / cooldown /
  half-open probe / recovery, with injectable clocks), :class:`RetryPolicy`
  determinism, :class:`FaultPlan` parsing, and :class:`ResilientBackend`
  degradation bit-exactness;
* integration — deadline-driven method degradation through
  :class:`PredictionService`, retrying :class:`InProcessClient`;
* chaos acceptance — a live TCP server under an active fault injector
  (backend errors, latency spikes, cache evictions/corruption, connection
  drops): every request must end in a successful bit-identical reply or a
  typed error, deadlines must be honored, and ``{"op": "health"}`` must
  report the degraded state truthfully.  The CI chaos leg reruns this file
  (and the rest of the service suite) with ``REPRO_FAULTS`` set; the
  acceptance test honours that spec when present.
"""

import asyncio
import json
import os
import threading

import numpy as np
import pytest

from repro.core import BatchedLinearTransposition, BatchedMLPTransposition
from repro.core.backends import NumpyBackend
from repro.data import build_default_dataset
from repro.service import (
    ERROR_CODES,
    CircuitBreaker,
    Deadline,
    FaultInjector,
    FaultPlan,
    InProcessClient,
    InjectedFault,
    OverloadedError,
    PredictionService,
    RankingQuery,
    ResilientBackend,
    RetryPolicy,
    SplitContextCache,
    TCPClient,
    serve_tcp,
)


@pytest.fixture(scope="module")
def dataset():
    return build_default_dataset()


# ------------------------------------------------------------------ deadlines
def test_deadline_tracks_injected_clock():
    now = [0.0]
    deadline = Deadline.after_ms(250, clock=lambda: now[0])
    assert deadline.remaining() == pytest.approx(0.25)
    assert not deadline.expired
    now[0] = 0.2
    assert deadline.remaining_ms() == pytest.approx(50.0)
    now[0] = 0.25
    assert deadline.expired


def test_deadline_rejects_non_positive_budget():
    with pytest.raises(ValueError):
        Deadline.after_ms(0)
    with pytest.raises(ValueError):
        Deadline.after_ms(-5)


# ------------------------------------------------------------ circuit breaker
def test_breaker_trips_after_consecutive_failures_only():
    breaker = CircuitBreaker(failure_threshold=3, cooldown=1.0, clock=lambda: 0.0)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()  # resets the consecutive count
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "closed"
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.trips == 1


def test_breaker_half_open_grants_single_probe_then_recovers():
    now = [0.0]
    breaker = CircuitBreaker(failure_threshold=1, cooldown=2.0, clock=lambda: now[0])
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.allow() is False  # still cooling down
    now[0] = 2.0
    assert breaker.allow() is True   # the half-open probe
    assert breaker.state == "half-open"
    assert breaker.allow() is False  # one probe at a time
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.recoveries == 1
    assert breaker.allow() is True


def test_breaker_failed_probe_reopens_for_another_cooldown():
    now = [0.0]
    breaker = CircuitBreaker(failure_threshold=1, cooldown=2.0, clock=lambda: now[0])
    breaker.record_failure()
    now[0] = 2.0
    assert breaker.allow() is True
    breaker.record_failure()  # the probe fails
    assert breaker.state == "open"
    assert breaker.trips == 2
    assert breaker.allow() is False  # cooldown restarted at t=2
    now[0] = 4.0
    assert breaker.allow() is True


# -------------------------------------------------------------------- retries
def test_retry_policy_is_deterministic_and_bounded():
    policy = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=0.5, seed=42)
    first = list(policy.delays())
    assert len(first) == 4
    assert first == list(policy.delays())
    ceilings = [0.1, 0.2, 0.4, 0.5]
    assert all(0.0 <= d <= c for d, c in zip(first, ceilings))


def test_in_process_client_retries_retryable_codes(dataset, monkeypatch):
    service = PredictionService(dataset, {"NN^T": BatchedLinearTransposition()})
    real_rank = service.rank
    failures = {"remaining": 2}

    def flaky_rank(query):
        if failures["remaining"]:
            failures["remaining"] -= 1
            raise OverloadedError("synthetic overload")
        return real_rank(query)

    monkeypatch.setattr(service, "rank", flaky_rank)
    sleeps = []
    client = InProcessClient(
        service, retry=RetryPolicy(max_attempts=4, seed=7), sleep=sleeps.append
    )
    reply = client.request(
        {"application": "gcc", "predictive_machines": dataset.machine_ids[:4], "top_n": 1}
    )
    assert reply["ok"] is True
    assert client.retries == 2 and len(sleeps) == 2


def test_in_process_client_does_not_retry_client_errors(dataset):
    service = PredictionService(dataset, {"NN^T": BatchedLinearTransposition()})
    sleeps = []
    client = InProcessClient(
        service, retry=RetryPolicy(max_attempts=4, seed=7), sleep=sleeps.append
    )
    reply = client.request({"application": "nope", "predictive_machines": ["m001"]})
    assert reply["ok"] is False and reply["code"] == "INVALID_REQUEST"
    assert client.retries == 0 and sleeps == []


# ----------------------------------------------------------------- fault plan
def test_fault_plan_parse_rejects_bad_specs():
    with pytest.raises(ValueError):
        FaultPlan.parse("unknown_knob=1")
    with pytest.raises(ValueError):
        FaultPlan.parse("latency=lots")
    with pytest.raises(ValueError):
        FaultPlan.parse("backend_error=1.5")


def test_fault_injector_streams_are_per_seam_independent():
    plan = FaultPlan(seed=3, backend_error=0.5, cache_evict=0.5)
    solo = FaultInjector(plan)
    solo_schedule = [solo.fires("backend_error") for _ in range(16)]
    interleaved = FaultInjector(plan)
    schedule = []
    for _ in range(16):
        interleaved.fires("cache_evict")  # extra draws on another seam
        schedule.append(interleaved.fires("backend_error"))
    assert schedule == solo_schedule


# ----------------------------------------------------------- resilient backend
class _ExplodingBackend:
    """A backend whose kernels vandalise their inputs and then fail."""

    name = "exploding"

    def __init__(self):
        self.calls = 0

    def mlp_sgd(self, x, y, w_hidden, b_hidden, w_output, b_output, *rest):
        self.calls += 1
        w_hidden += 1e6  # corrupt the (supposedly consumed) weights
        raise RuntimeError("kernel exploded")

    def nnt_downdated_statistics(self, pred, target, rows):
        self.calls += 1
        raise RuntimeError("kernel exploded")


def test_resilient_backend_degrades_bit_exactly_on_primary_failure():
    rng = np.random.default_rng(0)
    pred = rng.normal(size=(10, 3))
    target = rng.normal(size=(10, 2))
    rows = np.arange(10)
    primary = _ExplodingBackend()
    backend = ResilientBackend(
        primary=primary, breaker=CircuitBreaker(failure_threshold=2, cooldown=60.0)
    )
    degraded = backend.nnt_downdated_statistics(pred, target, rows)
    reference = NumpyBackend().nnt_downdated_statistics(pred, target, rows)
    for got, want in zip(degraded, reference):
        np.testing.assert_array_equal(got, want)
    assert backend.fallback_calls == 1 and backend.primary_calls == 0


def test_resilient_backend_protects_mlp_weights_from_failed_primary():
    rng = np.random.default_rng(1)
    n_networks, n_features, n_hidden, n_samples = 2, 3, 4, 5
    args = dict(
        x=rng.normal(size=(n_samples, n_networks, n_features)),
        y=rng.normal(size=(n_samples, n_networks)),
        w_hidden=rng.normal(size=(n_networks, n_features, n_hidden)),
        b_hidden=rng.normal(size=(n_networks, n_hidden)),
        w_output=rng.normal(size=(n_networks, n_hidden)),
        b_output=rng.normal(size=n_networks),
        shuffle=np.stack([rng.permutation(n_samples) for _ in range(3)]),
    )

    def call(backend):
        return backend.mlp_sgd(
            args["x"].copy(), args["y"].copy(),
            args["w_hidden"].copy(), args["b_hidden"].copy(),
            args["w_output"].copy(), args["b_output"].copy(),
            args["shuffle"].copy(), 0.1, 0.9, 5.0,
        )

    resilient = ResilientBackend(primary=_ExplodingBackend())
    for got, want in zip(call(resilient), call(NumpyBackend())):
        np.testing.assert_array_equal(got, want)


def test_resilient_backend_breaker_recovers_via_half_open_probe():
    now = [0.0]
    primary = _ExplodingBackend()
    backend = ResilientBackend(
        primary=primary,
        breaker=CircuitBreaker(failure_threshold=2, cooldown=5.0, clock=lambda: now[0]),
    )
    rng = np.random.default_rng(2)
    pred, target = rng.normal(size=(8, 2)), rng.normal(size=(8, 2))
    rows = np.arange(8)

    for _ in range(3):
        backend.nnt_downdated_statistics(pred, target, rows)
    assert backend.breaker.state == "open"
    calls_when_open = primary.calls
    backend.nnt_downdated_statistics(pred, target, rows)  # open: no primary call
    assert primary.calls == calls_when_open

    # The primary heals; after the cooldown one probe goes through and
    # closes the breaker.
    primary.nnt_downdated_statistics = NumpyBackend().nnt_downdated_statistics
    now[0] = 5.0
    backend.nnt_downdated_statistics(pred, target, rows)
    assert backend.breaker.state == "closed"
    assert backend.breaker.recoveries == 1
    assert backend.primary_calls >= 1


def test_resilient_backend_injected_faults_fire_on_primary_only():
    injector = FaultInjector(FaultPlan(seed=4, backend_error=1.0))
    backend = ResilientBackend(injector=injector)
    rng = np.random.default_rng(3)
    pred, target = rng.normal(size=(8, 2)), rng.normal(size=(8, 2))
    rows = np.arange(8)
    degraded = backend.nnt_downdated_statistics(pred, target, rows)
    reference = NumpyBackend().nnt_downdated_statistics(pred, target, rows)
    for got, want in zip(degraded, reference):
        np.testing.assert_array_equal(got, want)
    assert injector.injected["backend_error"] >= 1
    assert backend.fallback_calls == 1


# --------------------------------------------------------- method degradation
def test_deadline_degrades_to_fallback_method_when_cold_cost_too_high(dataset):
    service = PredictionService(
        dataset,
        {
            "NN^T": BatchedLinearTransposition(),
            "MLP^T": BatchedMLPTransposition(epochs=5),
        },
        fallbacks={"MLP^T": "NN^T"},
    )
    machines = tuple(dataset.machine_ids[:4])
    # Teach the service that a cold MLP^T pass costs far more than the
    # budget (what rank_many would learn from a real cold pass).
    service._cold_cost["MLP^T"] = 100.0
    tight = Deadline.after_ms(50)
    reply = service.rank(
        RankingQuery("gcc", machines, method="MLP^T", top_n=2, deadline=tight)
    )
    assert reply.degraded is True
    assert reply.method == "MLP^T" and reply.served_method == "NN^T"
    assert service.degraded_served == 1
    # Scores are exactly what NN^T answers.
    direct = service.rank(RankingQuery("gcc", machines, method="NN^T", top_n=2))
    assert reply.scores == direct.scores


def test_warm_method_is_served_as_asked_despite_tight_deadline(dataset):
    service = PredictionService(
        dataset,
        {
            "NN^T": BatchedLinearTransposition(),
            "MLP^T": BatchedMLPTransposition(epochs=5),
        },
        fallbacks={"MLP^T": "NN^T"},
    )
    machines = tuple(dataset.machine_ids[:4])
    warmup = service.rank(RankingQuery("gcc", machines, method="MLP^T", top_n=2))
    assert warmup.degraded is False
    service._cold_cost["MLP^T"] = 100.0
    tight = Deadline.after_ms(50)
    reply = service.rank(
        RankingQuery("gcc", machines, method="MLP^T", top_n=2, deadline=tight)
    )
    # Warm state answers in a lookup: no degradation needed.
    assert reply.degraded is False and reply.served_method == "MLP^T"
    assert reply.cache_hit is True


# ------------------------------------------------------------------ chaos run
DEFAULT_CHAOS_SPEC = (
    "seed=1307,backend_error=0.3,latency=0.2,latency_ms=2,"
    "cache_evict=0.25,cache_corrupt=0.15,conn_drop=0.2"
)


def _chaos_stack(dataset, spec):
    injector = FaultInjector(FaultPlan.parse(spec))
    backend = ResilientBackend(
        breaker=CircuitBreaker(failure_threshold=2, cooldown=0.05),
        injector=injector,
    )
    cache = SplitContextCache(capacity=8, n_shards=2, fault_injector=injector)
    service = PredictionService(
        dataset,
        {"NN^T": BatchedLinearTransposition(backend=backend)},
        cache=cache,
        fault_injector=injector,
    )
    service.resilient_backend = backend
    return service, injector, backend


def test_chaos_every_request_ends_well_and_health_stays_truthful(dataset):
    """The acceptance scenario: live TCP serving under scheduled faults.

    Every query must end in a successful (bit-identical) reply or a typed
    error; no reply may arrive after its deadline; the server must never
    crash; and health must reflect the breaker truthfully afterwards.
    """
    spec = os.environ.get("REPRO_FAULTS") or DEFAULT_CHAOS_SPEC
    service, injector, backend = _chaos_stack(dataset, spec)
    machines = tuple(dataset.machine_ids[:4])
    apps = [name for name in dataset.benchmark_names[:8]]
    reference = PredictionService(dataset, {"NN^T": BatchedLinearTransposition()})
    expected = {
        app: reference.rank(RankingQuery(app, machines, top_n=3)) for app in apps
    }

    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    try:
        server = asyncio.run_coroutine_threadsafe(
            serve_tcp(service, "127.0.0.1", 0, window=0.001), loop
        ).result(timeout=30)
        port = server.sockets[0].getsockname()[1]

        client = TCPClient(
            "127.0.0.1",
            port,
            retry=RetryPolicy(max_attempts=8, base_delay=0.005, seed=99),
        )
        outcomes = {"ok": 0, "typed_error": 0}
        for round_index in range(5):
            for app in apps:
                reply = client.request(
                    {
                        "application": app,
                        "predictive_machines": list(machines),
                        "top_n": 3,
                        "deadline_ms": 10_000,
                    }
                )
                if reply["ok"]:
                    outcomes["ok"] += 1
                    # Degraded or not, the ranking is bit-identical to the
                    # clean reference — the fallback backend is exact.
                    want = expected[app]
                    assert [r["machine"] for r in reply["ranking"]] == list(
                        want.machine_ids
                    )
                    assert [r["score"] for r in reply["ranking"]] == list(want.scores)
                else:
                    outcomes["typed_error"] += 1
                    assert reply["code"] in ERROR_CODES

        # An (effectively) already-expired deadline is answered with the
        # typed error, never a stale ranking.
        late = client.request(
            {
                "application": apps[0],
                "predictive_machines": list(machines),
                "deadline_ms": 1e-6,
            }
        )
        assert late["ok"] is False and late["code"] == "DEADLINE_EXCEEDED"

        health = client.request({"op": "health"})
        client.close()
        assert health["ok"] is True
        assert health["status"] in {"ok", "degraded"}
        snapshot = health["backend"]["breaker"]
        assert snapshot["trips"] == backend.breaker.trips
        assert (health["status"] == "degraded") == (snapshot["state"] != "closed")
        assert health["cache"]["injected_evictions"] == service.cache.injected_evictions
        assert health["faults"]["injected"] == injector.snapshot()

        # The stack actually hurt: with the default spec every seam fired.
        if spec == DEFAULT_CHAOS_SPEC:
            fired = injector.snapshot()
            assert fired["backend_error"] > 0
            assert fired["cache_evict"] > 0 or fired["cache_corrupt"] > 0
            assert fired["conn_drop"] > 0
        assert outcomes["ok"] > 0  # the service kept answering throughout

        asyncio.run_coroutine_threadsafe(_close_server(server), loop).result(timeout=30)
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()


async def _close_server(server):
    server.close()
    await server.wait_closed()


def test_chaos_stdio_front_end_survives_fault_injection(dataset):
    """The synchronous front end under the same faults: no crashes either."""
    import io

    from repro.service import serve_stdio

    spec = os.environ.get("REPRO_FAULTS") or DEFAULT_CHAOS_SPEC
    service, _, _ = _chaos_stack(dataset, spec)
    machines = list(dataset.machine_ids[:4])
    requests = "".join(
        json.dumps({"application": app, "predictive_machines": machines, "top_n": 1})
        + "\n"
        for app in dataset.benchmark_names[:6]
    )
    out = io.StringIO()
    served = serve_stdio(service, io.StringIO(requests), out)
    replies = [json.loads(line) for line in out.getvalue().splitlines()]
    assert served == len(replies) == 6
    for reply in replies:
        assert reply["ok"] is True or reply["code"] in ERROR_CODES


# ------------------------------------------------- fault-schedule determinism
def test_fault_injector_same_seed_replays_identical_sequences():
    """Two fresh injectors from one spec fire the exact same event sequence.

    This is the property the CI chaos leg relies on: a red chaos run can be
    replayed locally with the same ``REPRO_FAULTS`` string and hit the same
    faults in the same order.
    """
    spec = DEFAULT_CHAOS_SPEC
    first = FaultInjector(FaultPlan.parse(spec))
    second = FaultInjector(FaultPlan.parse(spec))
    from repro.service.faults import SEAMS

    for seam in SEAMS:
        sequence_a = [first.fires(seam) for _ in range(64)]
        sequence_b = [second.fires(seam) for _ in range(64)]
        assert sequence_a == sequence_b, seam
        assert any(sequence_a), f"{seam} never fired in 64 draws"
    assert first.injected == second.injected


def test_fault_injector_every_seam_ignores_traffic_on_the_others():
    """Each seam's schedule depends only on its own consultation count."""
    from repro.service.faults import SEAMS

    plan = FaultPlan.parse(DEFAULT_CHAOS_SPEC)
    for seam in SEAMS:
        solo = FaultInjector(plan)
        expected = [solo.fires(seam) for _ in range(32)]
        noisy = FaultInjector(plan)
        observed = []
        for _ in range(32):
            for other in SEAMS:  # consult every other seam in between
                if other != seam:
                    noisy.fires(other)
            observed.append(noisy.fires(seam))
        assert observed == expected, seam


def test_inject_latency_uses_the_injected_sleep():
    injector = FaultInjector(FaultPlan(seed=5, latency=1.0, latency_ms=4.0))
    slept = []
    injected = injector.inject_latency(sleep=slept.append)
    assert injected == 4.0 and slept == [0.004]
    calm = FaultInjector(FaultPlan(seed=5, latency=0.0, latency_ms=4.0))
    assert calm.inject_latency(sleep=slept.append) == 0.0 and len(slept) == 1


# --------------------------------------------- clock-injected backoff timing
def test_retry_policy_delays_are_full_jitter_within_the_envelope():
    """Every delay sits inside [0, min(max_delay, base * 2^attempt)]."""
    policy = RetryPolicy(max_attempts=6, base_delay=0.1, max_delay=0.8, seed=42)
    delays = list(policy.delays())
    assert len(delays) == policy.max_attempts - 1
    for attempt, delay in enumerate(delays):
        assert 0.0 <= delay <= min(0.8, 0.1 * 2**attempt)
    # Seeded: byte-identical on every regeneration; unseeded draws differ.
    assert list(policy.delays()) == delays
    assert list(RetryPolicy(max_attempts=6, seed=43).delays()) != delays


def test_tcp_client_reconnect_waits_match_the_policy_without_sleeping():
    """Against a dead port the client waits exactly the policy's delays —
    measured with a recording fake sleep, so the test never really waits."""
    import socket

    placeholder = socket.socket()
    placeholder.bind(("127.0.0.1", 0))
    dead_port = placeholder.getsockname()[1]
    placeholder.close()  # nothing listens here any more

    policy = RetryPolicy(max_attempts=4, base_delay=0.5, max_delay=2.0, seed=21)
    slept: list[float] = []
    client = TCPClient(
        "127.0.0.1", dead_port, retry=policy, timeout=0.5, sleep=slept.append
    )
    with pytest.raises(OSError):
        client.request({"op": "health"})
    assert slept == list(policy.delays())  # same seed -> same waits
    assert client.retries == policy.max_attempts - 1
    assert all(delay <= 2.0 for delay in slept)
