"""Tests for repro.stats.correlation against scipy as an oracle."""

import numpy as np
import pytest
import scipy.stats

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import kendall_tau, pearson_correlation, spearman_correlation


def test_pearson_perfect_positive():
    x = [1.0, 2.0, 3.0, 4.0]
    y = [2.0, 4.0, 6.0, 8.0]
    assert pearson_correlation(x, y) == pytest.approx(1.0)


def test_pearson_perfect_negative():
    x = [1.0, 2.0, 3.0, 4.0]
    y = [8.0, 6.0, 4.0, 2.0]
    assert pearson_correlation(x, y) == pytest.approx(-1.0)


def test_pearson_constant_input_returns_zero():
    assert pearson_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0


def test_pearson_matches_scipy():
    rng = np.random.default_rng(0)
    x = rng.normal(size=50)
    y = 0.5 * x + rng.normal(size=50)
    expected = scipy.stats.pearsonr(x, y).statistic
    assert pearson_correlation(x, y) == pytest.approx(expected)


def test_spearman_monotonic_nonlinear_is_one():
    x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
    y = np.exp(x)
    assert spearman_correlation(x, y) == pytest.approx(1.0)


def test_spearman_matches_scipy_with_ties():
    x = np.array([1.0, 2.0, 2.0, 3.0, 5.0, 5.0, 7.0])
    y = np.array([3.0, 1.0, 4.0, 4.0, 2.0, 6.0, 5.0])
    expected = scipy.stats.spearmanr(x, y).statistic
    assert spearman_correlation(x, y) == pytest.approx(expected)


def test_spearman_reversed_is_minus_one():
    x = [1.0, 2.0, 3.0, 4.0, 5.0]
    y = [50.0, 40.0, 30.0, 20.0, 10.0]
    assert spearman_correlation(x, y) == pytest.approx(-1.0)


def test_kendall_matches_scipy():
    rng = np.random.default_rng(1)
    x = rng.normal(size=30)
    y = x + rng.normal(scale=0.5, size=30)
    expected = scipy.stats.kendalltau(x, y).statistic
    assert kendall_tau(x, y) == pytest.approx(expected)


def test_kendall_with_ties_matches_scipy():
    x = np.array([1.0, 1.0, 2.0, 3.0, 3.0, 4.0])
    y = np.array([2.0, 3.0, 3.0, 1.0, 4.0, 4.0])
    expected = scipy.stats.kendalltau(x, y).statistic
    assert kendall_tau(x, y) == pytest.approx(expected)


def test_correlation_length_mismatch_raises():
    with pytest.raises(ValueError):
        pearson_correlation([1.0, 2.0], [1.0, 2.0, 3.0])


def test_correlation_single_point_raises():
    with pytest.raises(ValueError):
        spearman_correlation([1.0], [2.0])


def test_correlation_rejects_2d_input():
    with pytest.raises(ValueError):
        pearson_correlation(np.ones((2, 2)), np.ones((2, 2)))


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=3, max_size=40),
)
@settings(max_examples=50, deadline=None)
def test_pearson_self_correlation_property(values):
    arr = np.asarray(values)
    result = pearson_correlation(arr, arr)
    # Self correlation is 1 whenever the variance is representable; inputs
    # whose variance underflows to zero are treated as constant (0.0).
    assert result == 0.0 or result == pytest.approx(1.0)


@given(
    st.lists(st.integers(min_value=-10**6, max_value=10**6), min_size=3, max_size=40),
    st.floats(min_value=0.1, max_value=10.0),
    st.floats(min_value=-100.0, max_value=100.0),
)
@settings(max_examples=50, deadline=None)
def test_spearman_invariant_under_positive_affine_transform(values, scale, shift):
    arr = np.asarray(values, dtype=float)
    if np.ptp(arr) == 0:
        return
    transformed = scale * arr + shift
    base = spearman_correlation(arr, arr)
    assert spearman_correlation(arr, transformed) == pytest.approx(base, abs=1e-9)


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=3, max_size=30),
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=3, max_size=30),
)
@settings(max_examples=50, deadline=None)
def test_correlation_is_symmetric(xs, ys):
    n = min(len(xs), len(ys))
    x = np.asarray(xs[:n])
    y = np.asarray(ys[:n])
    assert pearson_correlation(x, y) == pytest.approx(pearson_correlation(y, x))
    assert spearman_correlation(x, y) == pytest.approx(spearman_correlation(y, x))


@given(
    st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=3, max_size=30),
    st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=3, max_size=30),
)
@settings(max_examples=50, deadline=None)
def test_correlations_bounded(xs, ys):
    n = min(len(xs), len(ys))
    x = np.asarray(xs[:n])
    y = np.asarray(ys[:n])
    assert -1.0 - 1e-9 <= pearson_correlation(x, y) <= 1.0 + 1e-9
    assert -1.0 - 1e-9 <= spearman_correlation(x, y) <= 1.0 + 1e-9
    assert -1.0 - 1e-9 <= kendall_tau(x, y) <= 1.0 + 1e-9
