"""Tests for repro.ml.mlp."""

import numpy as np
import pytest

from repro.ml import MLPRegressor


def test_mlp_learns_linear_function():
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, size=(60, 2))
    y = 3.0 * x[:, 0] - 2.0 * x[:, 1] + 1.0
    model = MLPRegressor(hidden_units=6, epochs=300, seed=0).fit(x, y)
    predictions = model.predict(x)
    mae = np.abs(predictions - y).mean()
    assert mae < 0.25


def test_mlp_learns_nonlinear_function_better_than_mean():
    rng = np.random.default_rng(1)
    x = rng.uniform(-1, 1, size=(80, 1))
    y = np.sin(3.0 * x[:, 0])
    model = MLPRegressor(hidden_units=10, epochs=400, seed=1).fit(x, y)
    predictions = model.predict(x)
    residual = ((predictions - y) ** 2).mean()
    baseline = ((y.mean() - y) ** 2).mean()
    assert residual < 0.3 * baseline


def test_mlp_is_deterministic_given_seed():
    rng = np.random.default_rng(2)
    x = rng.uniform(-1, 1, size=(30, 3))
    y = x.sum(axis=1)
    a = MLPRegressor(hidden_units=4, epochs=50, seed=42).fit(x, y).predict(x)
    b = MLPRegressor(hidden_units=4, epochs=50, seed=42).fit(x, y).predict(x)
    assert np.array_equal(a, b)


def test_mlp_different_seeds_differ():
    rng = np.random.default_rng(3)
    x = rng.uniform(-1, 1, size=(30, 3))
    y = x.sum(axis=1)
    a = MLPRegressor(hidden_units=4, epochs=50, seed=0).fit(x, y).predict(x)
    b = MLPRegressor(hidden_units=4, epochs=50, seed=1).fit(x, y).predict(x)
    assert not np.array_equal(a, b)


def test_mlp_default_hidden_units_follow_weka_rule():
    rng = np.random.default_rng(4)
    x = rng.uniform(size=(20, 9))
    y = x[:, 0]
    model = MLPRegressor(epochs=5, seed=0).fit(x, y)
    assert model.n_hidden_units == (9 + 1) // 2


def test_mlp_training_loss_decreases():
    rng = np.random.default_rng(5)
    x = rng.uniform(-1, 1, size=(50, 2))
    y = x[:, 0] * 2.0
    model = MLPRegressor(hidden_units=5, epochs=100, seed=0).fit(x, y)
    assert model.training_loss_[-1] < model.training_loss_[0]


def test_mlp_predict_single_row():
    x = np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.2], [0.1, 0.9]])
    y = np.array([0.0, 2.0, 0.7, 1.0])
    model = MLPRegressor(hidden_units=3, epochs=100, seed=0).fit(x, y)
    single = model.predict(np.array([0.5, 0.5]))
    assert single.shape == (1,)


def test_mlp_predict_before_fit_raises():
    with pytest.raises(RuntimeError):
        MLPRegressor().predict([[1.0]])


def test_mlp_hidden_units_property_before_fit_raises():
    with pytest.raises(RuntimeError):
        _ = MLPRegressor().n_hidden_units


def test_mlp_rejects_invalid_hyperparameters():
    with pytest.raises(ValueError):
        MLPRegressor(hidden_units=0)
    with pytest.raises(ValueError):
        MLPRegressor(learning_rate=0.0)
    with pytest.raises(ValueError):
        MLPRegressor(momentum=1.5)
    with pytest.raises(ValueError):
        MLPRegressor(epochs=0)


def test_mlp_rejects_bad_training_shapes():
    with pytest.raises(ValueError):
        MLPRegressor().fit([1.0, 2.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        MLPRegressor().fit([[1.0], [2.0]], [1.0, 2.0, 3.0])
    with pytest.raises(ValueError):
        MLPRegressor().fit([[1.0]], [1.0])


def test_mlp_without_normalization_still_trains():
    rng = np.random.default_rng(6)
    x = rng.uniform(-1, 1, size=(40, 2))
    y = x[:, 0] + x[:, 1]
    model = MLPRegressor(hidden_units=4, epochs=200, normalize=False, learning_rate=0.05, seed=0)
    predictions = model.fit(x, y).predict(x)
    assert np.abs(predictions - y).mean() < 0.5
