"""Tests for the documentation checker (tools/check_docs.py)."""

import importlib.util
from pathlib import Path

import pytest


@pytest.fixture(scope="module")
def check_docs():
    path = Path(__file__).resolve().parent.parent / "tools" / "check_docs.py"
    spec = importlib.util.spec_from_file_location("check_docs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_fenced_blocks_parse_languages_and_content(check_docs):
    text = "\n".join(
        [
            "para",
            "```python",
            "x = 1",
            "```",
            "```json",
            '{"ok": true}',
            "```",
            "```",
            "plain",
            "```",
        ]
    )
    blocks = list(check_docs.iter_fenced_blocks(text))
    assert [(lang, src) for lang, _, src in blocks] == [
        ("python", "x = 1"),
        ("json", '{"ok": true}'),
        ("", "plain"),
    ]


def test_fenced_blocks_accept_info_strings(check_docs):
    # An info string beyond the language must not invert open/close state
    # for the rest of the document.
    text = "\n".join(
        [
            '```python title="example"',
            "y = 2",
            "```",
            "```json",
            "{not json",
            "```",
        ]
    )
    blocks = list(check_docs.iter_fenced_blocks(text))
    assert [lang for lang, _, _ in blocks] == ["python", "json"]
    problems = []
    check_docs.check_snippets(Path("doc.md"), text, problems)
    assert len(problems) == 1 and "json" in problems[0]


def test_broken_snippets_and_links_are_reported(check_docs, tmp_path):
    problems = []
    check_docs.check_snippets(
        Path("doc.md"), "```python\ndef broken(:\n```", problems
    )
    assert len(problems) == 1 and "python" in problems[0]

    doc = tmp_path / "doc.md"
    problems = []
    check_docs.check_links(
        doc, "[missing](nope.md) [web](https://example.com) [anchor](#x)", problems
    )
    assert len(problems) == 1 and "nope.md" in problems[0]


def test_repository_docs_are_clean(check_docs):
    assert check_docs.main() == 0
