"""Tests for repro.stats.metrics and repro.stats.bootstrap."""

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    bootstrap_confidence_interval,
    bootstrap_statistic,
    coefficient_of_determination,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_error_percent,
    root_mean_squared_error,
    summarize,
    top1_deficiency,
    top_n_deficiency,
)


def test_mae_and_rmse_on_exact_predictions():
    actual = [1.0, 2.0, 3.0]
    assert mean_absolute_error(actual, actual) == 0.0
    assert root_mean_squared_error(actual, actual) == 0.0


def test_mae_simple_case():
    assert mean_absolute_error([1.0, 3.0], [2.0, 2.0]) == pytest.approx(1.0)


def test_rmse_penalises_large_errors_more_than_mae():
    predicted = [0.0, 0.0]
    actual = [0.0, 4.0]
    assert root_mean_squared_error(predicted, actual) > mean_absolute_error(predicted, actual)


def test_mape_is_percentage():
    assert mean_absolute_percentage_error([11.0], [10.0]) == pytest.approx(10.0)


def test_mean_error_percent_is_alias():
    assert mean_error_percent is mean_absolute_percentage_error


def test_mape_rejects_zero_actuals():
    with pytest.raises(ValueError):
        mean_absolute_percentage_error([1.0], [0.0])


def test_metrics_shape_mismatch_raises():
    with pytest.raises(ValueError):
        mean_absolute_error([1.0, 2.0], [1.0])


def test_metrics_empty_raises():
    with pytest.raises(ValueError):
        mean_absolute_error([], [])


def test_r_squared_perfect():
    actual = [1.0, 2.0, 3.0, 4.0]
    assert coefficient_of_determination(actual, actual) == pytest.approx(1.0)


def test_r_squared_mean_predictor_is_zero():
    actual = np.array([1.0, 2.0, 3.0, 4.0])
    predicted = np.full(4, actual.mean())
    assert coefficient_of_determination(predicted, actual) == pytest.approx(0.0)


def test_r_squared_can_be_negative():
    actual = [1.0, 2.0, 3.0]
    predicted = [30.0, -10.0, 50.0]
    assert coefficient_of_determination(predicted, actual) < 0.0


def test_top1_deficiency_zero_when_best_machine_predicted():
    predicted = [10.0, 50.0, 20.0]
    actual = [15.0, 60.0, 25.0]
    assert top1_deficiency(predicted, actual) == 0.0


def test_top1_deficiency_when_wrong_machine_predicted():
    predicted = [50.0, 10.0, 20.0]  # model thinks machine 0 is best
    actual = [40.0, 60.0, 25.0]  # machine 1 is actually best
    expected = (60.0 - 40.0) / 40.0 * 100.0
    assert top1_deficiency(predicted, actual) == pytest.approx(expected)


def test_top_n_deficiency_shrinks_with_larger_shortlist():
    predicted = [50.0, 10.0, 20.0]
    actual = [40.0, 60.0, 25.0]
    top1 = top_n_deficiency(predicted, actual, n=1)
    top2 = top_n_deficiency(predicted, actual, n=2)
    assert top2 <= top1


def test_top_n_deficiency_requires_positive_actuals():
    with pytest.raises(ValueError):
        top_n_deficiency([1.0, 2.0], [-1.0, 0.5], n=1)


def test_summarize_higher_is_better():
    summary = summarize([0.9, 0.5, 0.7], higher_is_better=True)
    assert summary.mean == pytest.approx(0.7)
    assert summary.worst == pytest.approx(0.5)
    assert summary.best == pytest.approx(0.9)
    assert summary.count == 3


def test_summarize_lower_is_better():
    summary = summarize([5.0, 20.0, 11.0], higher_is_better=False)
    assert summary.worst == pytest.approx(20.0)
    assert summary.best == pytest.approx(5.0)


def test_summarize_paper_cell_format():
    summary = summarize([0.9, 0.5], higher_is_better=True)
    assert summary.as_paper_cell() == "0.70 (0.50)"


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([], higher_is_better=True)


def test_bootstrap_statistic_reproducible():
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    a = bootstrap_statistic(values, resamples=200, seed=7)
    b = bootstrap_statistic(values, resamples=200, seed=7)
    assert np.array_equal(a, b)


def test_bootstrap_interval_contains_point_estimate():
    rng = np.random.default_rng(0)
    values = rng.normal(10.0, 2.0, size=100)
    result = bootstrap_confidence_interval(values, resamples=500, seed=1)
    assert result.lower <= result.estimate <= result.upper
    assert result.contains(result.estimate)
    assert result.width() > 0.0


def test_bootstrap_interval_narrows_with_more_data():
    rng = np.random.default_rng(0)
    small = bootstrap_confidence_interval(rng.normal(size=20), resamples=300, seed=2)
    large = bootstrap_confidence_interval(rng.normal(size=2000), resamples=300, seed=2)
    assert large.width() < small.width()


def test_bootstrap_invalid_confidence():
    with pytest.raises(ValueError):
        bootstrap_confidence_interval([1.0, 2.0], confidence=1.5)


def test_bootstrap_empty_raises():
    with pytest.raises(ValueError):
        bootstrap_statistic([])


@given(
    st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=2, max_size=30),
    st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=2, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_top1_deficiency_is_nonnegative(predicted, actual):
    n = min(len(predicted), len(actual))
    value = top1_deficiency(predicted[:n], actual[:n])
    assert value >= 0.0


@given(st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=2, max_size=30))
@settings(max_examples=60, deadline=None)
def test_perfect_prediction_has_zero_errors(actual):
    assert mean_absolute_percentage_error(actual, actual) == 0.0
    assert top1_deficiency(actual, actual) == 0.0
    assert coefficient_of_determination(actual, actual) == pytest.approx(1.0)
