"""Unit tests for the metrics/tracing layer (repro.service.observability).

Everything time-dependent runs against injected fake clocks — no real
sleeps, no wall-clock flakiness.  The histogram tests pin the percentile
estimator's contract: linear interpolation inside fixed buckets, clamped
to the observed min/max, overflow bucket reporting the observed maximum.
"""

import json
import threading

import pytest

from repro.service import (
    TRACE_STAGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PeriodicSnapshot,
    Trace,
)
from repro.service.observability import DEFAULT_LATENCY_BUCKETS_MS, new_trace_id


# ------------------------------------------------------------- counters/gauges
def test_counter_accumulates_and_rejects_negative():
    counter = Counter("requests")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.value == 5


def test_gauge_holds_last_value():
    gauge = Gauge("depth")
    assert gauge.value == 0
    gauge.set(7)
    gauge.set(3)
    assert gauge.value == 3


# ------------------------------------------------------------------ histograms
def test_histogram_percentile_interpolates_within_buckets():
    histogram = Histogram("lat", buckets=(10.0, 20.0, 40.0))
    # Four observations in (10, 20]: ranks spread evenly across the bucket.
    for value in (12.0, 14.0, 16.0, 18.0):
        histogram.observe(value)
    # p50 rank = 2 of 4 -> halfway through the (10, 20] bucket = 15.
    assert histogram.percentile(0.5) == pytest.approx(15.0)
    # Estimates never leave the observed range.
    assert histogram.percentile(0.0) == pytest.approx(12.0)
    assert histogram.percentile(1.0) == pytest.approx(18.0)


def test_histogram_percentile_clamped_to_observed_max():
    histogram = Histogram("lat", buckets=(1.0, 100.0))
    histogram.observe(0.5)
    histogram.observe(2.0)  # in (1, 100] but far below the upper bound
    # Naive interpolation would estimate ~100; the clamp keeps it honest.
    assert histogram.percentile(0.99) == pytest.approx(2.0)


def test_histogram_overflow_bucket_is_bounded_by_observed_max():
    # The last bucket is unbounded; its upper edge for interpolation is the
    # observed maximum, so even overflow estimates stay inside real data.
    histogram = Histogram("lat", buckets=(1.0,))
    histogram.observe(50.0)
    histogram.observe(75.0)
    assert 50.0 <= histogram.percentile(0.99) <= 75.0
    assert histogram.percentile(1.0) == pytest.approx(75.0)
    assert histogram.snapshot()["max"] == pytest.approx(75.0)


def test_histogram_empty_and_invalid_inputs():
    histogram = Histogram("lat")
    assert histogram.percentile(0.5) is None
    snap = histogram.snapshot()
    assert snap["count"] == 0 and snap["p99"] is None
    with pytest.raises(ValueError):
        histogram.percentile(1.5)
    with pytest.raises(ValueError):
        Histogram("bad", buckets=())
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(5.0, 1.0))


def test_histogram_snapshot_summary_fields():
    histogram = Histogram("lat", buckets=DEFAULT_LATENCY_BUCKETS_MS)
    for value in (1.0, 2.0, 3.0, 4.0):
        histogram.observe(value)
    snap = histogram.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(10.0)
    assert snap["mean"] == pytest.approx(2.5)
    assert snap["min"] == 1.0 and snap["max"] == 4.0
    assert snap["min"] <= snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]


def test_histogram_time_context_manager_uses_injected_clock():
    ticks = iter([1.0, 1.25])
    histogram = Histogram("lat", buckets=(1000.0,), clock=lambda: next(ticks))
    with histogram.time():
        pass
    assert histogram.snapshot()["max"] == pytest.approx(250.0)  # ms


# -------------------------------------------------------------------- registry
def test_registry_factories_are_idempotent():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")
    # Bucket bounds only apply on first creation.
    first = registry.histogram("sized", buckets=(1.0, 2.0))
    again = registry.histogram("sized", buckets=(99.0,))
    assert again is first and again.bounds == (1.0, 2.0)


def test_registry_snapshot_is_sorted_and_json_serialisable():
    registry = MetricsRegistry()
    registry.counter("z").inc()
    registry.counter("a").inc(2)
    registry.gauge("depth").set(4)
    registry.histogram("lat").observe(3.0)
    snap = registry.snapshot()
    assert list(snap["counters"]) == ["a", "z"]
    assert snap["counters"] == {"a": 2, "z": 1}
    assert snap["gauges"] == {"depth": 4}
    assert snap["histograms"]["lat"]["count"] == 1
    json.dumps(snap)  # must not raise


def test_registry_observe_trace_records_stage_histograms():
    ticks = iter([0.0, 0.002, 0.002, 0.005])
    registry = MetricsRegistry()
    trace = Trace(trace_id="t", clock=lambda: next(ticks))
    with trace.span("admission"):
        pass
    with trace.span("engine"):
        pass
    registry.observe_trace(trace)
    snap = registry.snapshot()["histograms"]
    assert snap["stage.admission_ms"]["max"] == pytest.approx(2.0)
    assert snap["stage.engine_ms"]["max"] == pytest.approx(3.0)


def test_metrics_are_thread_safe_under_contention():
    registry = MetricsRegistry()
    counter = registry.counter("hits")
    histogram = registry.histogram("lat")

    def work():
        for _ in range(1000):
            counter.inc()
            histogram.observe(1.0)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == 8000
    assert histogram.snapshot()["count"] == 8000


# ---------------------------------------------------------------------- traces
def test_trace_ids_are_unique_and_client_ids_are_kept():
    assert new_trace_id() != new_trace_id()
    assert Trace(trace_id="client-1").trace_id == "client-1"
    assert Trace().trace_id  # auto-assigned, non-empty


def test_trace_spans_measure_with_injected_clock():
    ticks = iter([0.0, 0.010, 0.010, 0.025])
    trace = Trace(trace_id="t", clock=lambda: next(ticks))
    trace.begin("queue")
    trace.end("queue")
    trace.begin("engine")
    trace.end("engine")
    assert trace.duration_ms("queue") == pytest.approx(10.0)
    assert trace.duration_ms("engine") == pytest.approx(15.0)
    payload = trace.to_payload()
    assert payload["id"] == "t"
    assert [span["stage"] for span in payload["spans"]] == ["queue", "engine"]
    json.dumps(payload)


def test_trace_begin_end_are_idempotent():
    ticks = iter([0.0, 0.5, 9.0, 9.0])
    trace = Trace(trace_id="t", clock=lambda: next(ticks))
    trace.begin("engine")
    trace.end("engine")
    trace.begin("engine")  # already opened: ignored (no clock call needed,
    trace.end("engine")  # already closed: ignored) -- duration unchanged
    assert trace.duration_ms("engine") == pytest.approx(500.0)


def test_trace_close_ends_open_spans_and_skips_missing_ones():
    ticks = iter([0.0, 0.1])
    trace = Trace(trace_id="t", clock=lambda: next(ticks))
    trace.begin("reply")
    assert trace.duration_ms("reply") is None  # still open
    trace.close()
    assert trace.duration_ms("reply") == pytest.approx(100.0)
    assert trace.duration_ms("never-started") is None
    assert trace.end("never-started") is None  # no-op, no error


def test_trace_stage_catalogue_is_the_pipeline_order():
    assert TRACE_STAGES == ("admission", "queue", "batch", "engine", "reply")


# ---------------------------------------------------------- periodic snapshots
def test_periodic_snapshot_respects_interval_with_fake_clock():
    now = [0.0]
    lines = []
    registry = MetricsRegistry()
    registry.counter("requests").inc(3)
    snap = PeriodicSnapshot(
        registry, interval=5.0, sink=lines.append, clock=lambda: now[0]
    )
    assert snap.maybe_emit() is False
    now[0] = 4.9
    assert snap.maybe_emit() is False
    now[0] = 5.0
    assert snap.maybe_emit() is True
    now[0] = 9.0  # timer reset at the last emission
    assert snap.maybe_emit() is False
    assert len(lines) == 1


def test_periodic_snapshot_line_is_parseable_json():
    lines = []
    registry = MetricsRegistry()
    registry.counter("requests").inc()
    PeriodicSnapshot(registry, interval=1.0, sink=lines.append).emit()
    (line,) = lines
    assert line.startswith("repro-serve metrics ")
    payload = json.loads(line.removeprefix("repro-serve metrics "))
    assert payload["counters"]["requests"] == 1


def test_periodic_snapshot_rejects_non_positive_interval():
    with pytest.raises(ValueError):
        PeriodicSnapshot(MetricsRegistry(), interval=0.0)
