"""Batched GA-kNN equivalence: the lockstep tensor path vs the sequential GA.

The contract is **bit-exactness**: :class:`~repro.baselines.ga_knn.
BatchedGAKNN` must reproduce :class:`~repro.baselines.ga_knn.GAKNNBaseline`
to the last bit — same seeded random stream, same learned weights, same
predictions — across every family split.  The tests keep the GA budget
small (the equivalence does not depend on it) so the full sweep stays
unit-test fast.
"""

import numpy as np
import pytest

from repro.baselines.ga_knn import BatchedGAKNN, GAKNNBaseline
from repro.core import predict_split_scores, supports_batched_prediction
from repro.data import build_default_dataset, family_cross_validation_splits
from repro.ml.genetic import GAConfig, GeneticAlgorithm, LockstepGeneticAlgorithm

SMALL_GA = GAConfig(population_size=8, generations=3)


@pytest.fixture(scope="module")
def dataset():
    return build_default_dataset()


@pytest.fixture(scope="module")
def splits(dataset):
    return family_cross_validation_splits(dataset)


def _sequential_scores(dataset, split, applications, **kwargs):
    method = GAKNNBaseline(**kwargs)
    scores = {}
    for application in applications:
        training = [b for b in dataset.benchmark_names if b != application]
        scores[application] = method.predict_application_scores(
            dataset, split, application, training
        )
    return scores


# ------------------------------------------------------------ lockstep driver
def test_lockstep_ga_matches_independent_sequential_runs():
    """S problems in lockstep == S sequential GeneticAlgorithm runs, bit for bit."""
    rng = np.random.default_rng(7)
    targets = rng.uniform(0.0, 1.0, size=(5, 6))  # 5 problems, 6 genes

    def problem_fitness(index):
        return lambda genome: float(np.abs(genome - targets[index]).sum())

    sequential = [
        GeneticAlgorithm(
            genome_length=6, fitness=problem_fitness(i), config=SMALL_GA, seed=3
        )
        for i in range(5)
    ]
    expected = np.stack([ga.run() for ga in sequential])

    lockstep = LockstepGeneticAlgorithm(
        n_problems=5,
        genome_length=6,
        fitness=lambda block: np.abs(block - targets[:, None, :]).sum(axis=2),
        config=SMALL_GA,
        seed=3,
    )
    best = lockstep.run()

    np.testing.assert_array_equal(best, expected)
    np.testing.assert_array_equal(
        lockstep.best_fitnesses_, [ga.best_fitness_ for ga in sequential]
    )
    # Convergence histories line up generation by generation too.
    for index, ga in enumerate(sequential):
        np.testing.assert_array_equal(
            [h[index] for h in lockstep.history_], ga.history_
        )


def test_lockstep_ga_validates_fitness_shape():
    bad = LockstepGeneticAlgorithm(
        n_problems=2,
        genome_length=3,
        fitness=lambda block: np.zeros(4),
        config=SMALL_GA,
        seed=0,
    )
    with pytest.raises(ValueError, match="shape"):
        bad.run()


# -------------------------------------------------------------- bit-exactness
def test_batched_gaknn_bit_identical_on_one_split_all_applications(dataset, splits):
    """Every one of the 29 leave-one-out cells of a split, bit for bit."""
    applications = dataset.benchmark_names
    expected = _sequential_scores(
        dataset, splits[0], applications, k=10, ga_config=SMALL_GA, seed=0
    )
    batched = BatchedGAKNN(k=10, ga_config=SMALL_GA, seed=0).predict_all_applications(
        dataset, splits[0], applications
    )
    assert sorted(batched) == sorted(applications)
    for application in applications:
        np.testing.assert_array_equal(batched[application], expected[application])


def test_batched_gaknn_bit_identical_across_all_family_splits(dataset, splits):
    """Acceptance: bit-identical to the sequential baseline on all 17 splits."""
    assert len(splits) == 17
    applications = ["leslie3d", "gcc", "namd"]  # outlier + typical int/fp codes
    for split in splits:
        expected = _sequential_scores(
            dataset, split, applications, k=10, ga_config=SMALL_GA, seed=0
        )
        batched = BatchedGAKNN(
            k=10, ga_config=SMALL_GA, seed=0
        ).predict_all_applications(dataset, split, applications)
        for application in applications:
            np.testing.assert_array_equal(
                batched[application], expected[application], err_msg=split.name
            )


def test_batched_gaknn_seed_and_k_sensitivity_matches_sequential(dataset, splits):
    """The same seeded RNG stream: different seeds/k match their sequential twin."""
    applications = ["gcc", "lbm"]
    for seed, k in ((1, 3), (5, 10)):
        expected = _sequential_scores(
            dataset, splits[1], applications, k=k, ga_config=SMALL_GA, seed=seed
        )
        batched = BatchedGAKNN(
            k=k, ga_config=SMALL_GA, seed=seed
        ).predict_all_applications(dataset, splits[1], applications)
        for application in applications:
            np.testing.assert_array_equal(batched[application], expected[application])


def test_batched_gaknn_learned_weights_match_sequential(dataset, splits):
    applications = ["gcc", "leslie3d"]
    batched = BatchedGAKNN(k=10, ga_config=SMALL_GA, seed=0)
    batched.predict_all_applications(dataset, splits[0], applications)
    for application in applications:
        sequential = GAKNNBaseline(k=10, ga_config=SMALL_GA, seed=0)
        training = [b for b in dataset.benchmark_names if b != application]
        sequential.predict_application_scores(
            dataset, splits[0], application, training
        )
        np.testing.assert_array_equal(
            batched.learned_weights_by_application_[application],
            sequential.learned_weights_,
        )


def test_batched_gaknn_uniform_weights_without_learning(dataset, splits):
    applications = ["gcc", "mcf"]
    expected = _sequential_scores(
        dataset, splits[0], applications, k=10, ga_config=SMALL_GA, seed=0,
        learn_weights=False,
    )
    batched = BatchedGAKNN(
        k=10, ga_config=SMALL_GA, seed=0, learn_weights=False
    ).predict_all_applications(dataset, splits[0], applications)
    for application in applications:
        np.testing.assert_array_equal(batched[application], expected[application])


# ----------------------------------------------------------------- engine fit
def test_batched_gaknn_is_dispatched_as_a_batched_method(dataset, splits):
    method = BatchedGAKNN(k=10, ga_config=SMALL_GA, seed=0)
    assert supports_batched_prediction(method)
    assert not supports_batched_prediction(GAKNNBaseline())

    applications = ["gcc", "namd"]
    scores = predict_split_scores(
        dataset, splits[0], {"GA-kNN": method}, applications
    )["GA-kNN"]
    expected = _sequential_scores(
        dataset, splits[0], applications, k=10, ga_config=SMALL_GA, seed=0
    )
    for application in applications:
        np.testing.assert_array_equal(scores[application], expected[application])


def test_batched_gaknn_rejects_unknown_applications(dataset, splits):
    method = BatchedGAKNN(k=10, ga_config=SMALL_GA, seed=0)
    with pytest.raises(ValueError, match="unknown applications"):
        method.predict_all_applications(dataset, splits[0], ["not-a-benchmark"])
    assert method.predict_all_applications(dataset, splits[0], []) == {}
