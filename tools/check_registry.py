#!/usr/bin/env python
"""Registry completeness checker: docs and the live method registry agree.

Run from the repository root (CI does)::

    PYTHONPATH=src python tools/check_registry.py

Parses the "Registered methods" table in ``docs/api.md`` (the first
backtick-quoted cell of each row is the method name) and compares it
against :func:`repro.core.engine.registered_methods`, in both directions:

* every method named in the docs must be registered — a stale doc row for
  a renamed/removed method fails the check; and
* every registered method must be documented — adding a method without a
  doc row fails it too.

Exit status is 0 on agreement, 1 otherwise, so the script slots directly
into a CI step (and ``tests/test_engine_registry.py`` runs it as part of
the tier-1 suite).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: A table row whose first cell is a backtick-quoted method name.
ROW = re.compile(r"^\|\s*`([^`]+)`")
HEADING = re.compile(r"^#{1,6}\s")
SECTION = "### Registered methods"


def documented_methods(text: str) -> set[str]:
    """Method names from the "Registered methods" table of *text*."""
    names: set[str] = set()
    in_section = False
    for line in text.splitlines():
        if line.strip() == SECTION:
            in_section = True
            continue
        if in_section and HEADING.match(line):
            break
        if in_section:
            match = ROW.match(line)
            if match:
                names.add(match.group(1))
    return names


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    from repro.core.engine import registered_methods

    api_doc = ROOT / "docs" / "api.md"
    documented = documented_methods(api_doc.read_text())
    registered = {spec.name for spec in registered_methods()}

    problems: list[str] = []
    if not documented:
        problems.append(f"{api_doc.name}: no '{SECTION}' table found")
    for name in sorted(documented - registered):
        problems.append(f"{api_doc.name}: documents unregistered method {name!r}")
    for name in sorted(registered - documented):
        problems.append(f"registry: method {name!r} is missing from {api_doc.name}")

    for problem in problems:
        print(problem)
    print(
        f"checked {len(documented)} documented vs {len(registered)} registered "
        f"method(s): {len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
