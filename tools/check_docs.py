#!/usr/bin/env python
"""Documentation checker: links must resolve, snippets must parse.

Run from the repository root (CI does)::

    python tools/check_docs.py

Checks, over ``README.md`` and every ``docs/*.md``:

* **relative links** — every ``[text](path)`` that is not an external URL
  or a pure anchor must point at an existing file or directory (anchors on
  existing files are accepted; anchor targets themselves are not checked);
* **python snippets** — every fenced ```` ```python ```` block must
  compile (syntax only, nothing is executed);
* **json snippets** — every fenced ```` ```json ```` block must parse.

Exit status is the number of problems found, capped at 1, so the script
slots directly into a CI step.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: [text](target) — excluding images and external/anchor-only targets.
LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
#: Opening fence: the language is the first word of the info string
#: (` ```python title="x" ` still opens a python block).
FENCE = re.compile(r"^```(\S*)")


def _display(path: Path) -> str:
    """Repo-relative rendering of *path* (verbatim when outside the repo)."""
    try:
        return str(path.relative_to(ROOT))
    except ValueError:
        return str(path)


def iter_documents() -> list[Path]:
    documents = [ROOT / "README.md"]
    documents.extend(sorted((ROOT / "docs").glob("*.md")))
    return [path for path in documents if path.exists()]


def check_links(path: Path, text: str, problems: list[str]) -> None:
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (path.parent / relative).exists():
            problems.append(f"{_display(path)}: broken link -> {target}")


def iter_fenced_blocks(text: str):
    """Yield (language, first line number, block source) per fenced block."""
    language = None
    block: list[str] = []
    start = 0
    for number, line in enumerate(text.splitlines(), start=1):
        if language is None:
            fence = FENCE.match(line)
            if fence:
                language = fence.group(1).lower()
                block = []
                start = number + 1
        elif line.strip() == "```":
            yield language, start, "\n".join(block)
            language = None
        else:
            block.append(line)


def check_snippets(path: Path, text: str, problems: list[str]) -> None:
    for language, line, source in iter_fenced_blocks(text):
        if language == "python":
            try:
                compile(source, f"{path.name}:{line}", "exec")
            except SyntaxError as exc:
                problems.append(
                    f"{_display(path)}:{line}: python snippet does not parse: {exc.msg}"
                )
        elif language == "json":
            try:
                json.loads(source)
            except json.JSONDecodeError as exc:
                problems.append(
                    f"{_display(path)}:{line}: json snippet does not parse: {exc}"
                )


def main() -> int:
    problems: list[str] = []
    documents = iter_documents()
    for path in documents:
        text = path.read_text()
        check_links(path, text, problems)
        check_snippets(path, text, problems)
    for problem in problems:
        print(problem)
    print(f"checked {len(documents)} document(s): {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
