"""Load bench: replay traffic at a live server and enforce the SLO contracts.

Unlike the other benches, which time library calls in-process, this one
hosts the real TCP front end (``serve_tcp`` on a background event loop) and
drives it with :mod:`repro.loadgen` — the same open-loop replay the CI
load-smoke leg runs against ``repro-serve``.  Three contracts are enforced:

* **warm SLO** — under a warm Zipf-skewed mix at ``RATE`` rps, client-side
  p99 stays under :data:`SLO_P99_MS`, the cache hit rate stays above
  :data:`MIN_WARM_HIT_RATE`, and the server's own ``{"op": "metrics"}``
  counters/percentiles reconcile with what the client measured;
* **cold sweep** — a pure cold mix (every arrival trains a fresh split)
  completes with every request answered and typed;
* **chaos** — under scheduled faults (backend errors, latency, cache
  eviction/corruption, connection drops) every failure is a *typed* error
  code; zero untyped failures.

Full :class:`~repro.loadgen.LoadReport` payloads are persisted into
``BENCH_load.json`` (via :func:`conftest.record_bench_extra`) so the
latency/throughput trajectory is tracked across PRs next to the timing
numbers.
"""

import asyncio
import threading

from repro.core import BatchedLinearTransposition
from repro.loadgen import MIXES, run_load
from repro.service import (
    ERROR_CODES,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    PredictionService,
    ResilientBackend,
    SplitContextCache,
    serve_tcp,
)

from conftest import record_bench_extra, run_once

#: Client-side p99 ceiling (ms) for the warm mix — the serving SLO.
SLO_P99_MS = 250.0
#: Cache hit-rate floor for the warm mix (warmed pool, zero cold arrivals).
MIN_WARM_HIT_RATE = 0.9
#: Offered arrival rate (arrivals/s) for the warm SLO run.
RATE = 120.0
#: Measured run length (seconds).
DURATION = 2.0
#: Slack (ms) between the server's bucketed p99 estimate and the client's
#: exact one; the server times less of the path, so it must not exceed the
#: client's figure by more than estimator error.
P99_ESTIMATE_SLACK_MS = 10.0

CHAOS_SPEC = (
    "seed=1307,backend_error=0.3,latency=0.2,latency_ms=2,"
    "cache_evict=0.25,cache_corrupt=0.15,conn_drop=0.2"
)


class _LiveServer:
    """Host ``serve_tcp(service)`` on a background loop thread."""

    def __init__(self, service):
        self.service = service
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.port = None
        self._server = None

    def __enter__(self):
        self.thread.start()
        self._server = asyncio.run_coroutine_threadsafe(
            serve_tcp(self.service, "127.0.0.1", 0, window=0.001), self.loop
        ).result(timeout=30)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def __exit__(self, *exc):
        asyncio.run_coroutine_threadsafe(self._close(), self.loop).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()
        return False

    async def _close(self):
        self._server.close()
        await self._server.wait_closed()


def _warm_service(dataset):
    return PredictionService(dataset, {"NN^T": BatchedLinearTransposition()})


def _chaos_service(dataset, spec=CHAOS_SPEC):
    injector = FaultInjector(FaultPlan.parse(spec))
    backend = ResilientBackend(
        breaker=CircuitBreaker(failure_threshold=2, cooldown=0.05),
        injector=injector,
    )
    cache = SplitContextCache(capacity=8, n_shards=2, fault_injector=injector)
    service = PredictionService(
        dataset,
        {"NN^T": BatchedLinearTransposition(backend=backend)},
        cache=cache,
        fault_injector=injector,
    )
    service.resilient_backend = backend
    return service


def _replay(port, **kwargs):
    return asyncio.run(run_load(port=port, **kwargs))


def test_bench_load_warm_slo(benchmark, dataset):
    """Warm Zipf mix at RATE rps: p99, hit-rate floor, metrics reconcile."""
    service = _warm_service(dataset)
    mix = MIXES["warm-skewed"]
    with _LiveServer(service) as live:
        report = run_once(
            benchmark,
            _replay,
            live.port,
            mix=mix,
            rate=RATE,
            duration=DURATION,
            connections=2,
            seed=11,
            dataset=dataset,
            warmup=True,
            fetch_metrics=True,
        )
    record_bench_extra("load", "warm_slo", report.to_payload())

    # Every request answered, nothing failed, nothing was shed.
    assert report.untyped_failures == 0
    assert report.error_total == 0
    assert report.ok == report.requests

    # The SLO contracts.
    assert report.latency_ms["p99"] <= SLO_P99_MS, report.latency_ms
    assert report.cache_hit_rate is not None
    assert report.cache_hit_rate >= MIN_WARM_HIT_RATE

    # Server-side metrics reconcile with the client's own measurements:
    # warmup trains one request per pool split before measurement starts.
    metrics = report.server_metrics
    assert metrics is not None
    counters = metrics["counters"]
    assert counters["server.requests"] == report.requests + mix.n_splits
    assert counters["server.ok"] == counters["server.requests"]
    assert counters["service.warm_hits"] >= report.cache_hits

    # The server times a strict subset of the client-observed path, so its
    # (bucket-estimated, max-clamped) p99 cannot exceed the client's exact
    # p99 by more than estimator slack.
    server_p99 = metrics["histograms"]["server.request_ms"]["p99"]
    assert server_p99 <= report.latency_ms["p99"] + P99_ESTIMATE_SLACK_MS
    assert metrics["histograms"]["server.request_ms"]["count"] == (
        counters["server.requests"]
    )

    # Cache block mirrors the hit rate the client inferred from replies.
    cache = metrics["cache"]
    assert cache["hits"] >= report.cache_hits


def test_bench_load_cold_sweep_completes(benchmark, dataset):
    """Pure cold mix: every arrival trains a fresh split, all answered typed."""
    service = _warm_service(dataset)
    with _LiveServer(service) as live:
        report = run_once(
            benchmark,
            _replay,
            live.port,
            mix=MIXES["cold-sweep"],
            rate=20.0,
            duration=1.0,
            connections=2,
            seed=13,
            dataset=dataset,
            fetch_metrics=True,
        )
    record_bench_extra("load", "cold_sweep", report.to_payload())

    assert report.untyped_failures == 0
    assert report.ok + report.error_total == report.requests
    assert report.ok >= 1
    # Cold arrivals must actually be cold: the service saw training passes.
    counters = report.server_metrics["counters"]
    assert counters.get("service.cold_passes", 0) >= 1


def test_load_chaos_all_failures_typed(dataset):
    """Scheduled faults (incl. connection drops): zero untyped failures."""
    service = _chaos_service(dataset)
    with _LiveServer(service) as live:
        report = asyncio.run(
            run_load(
                port=live.port,
                mix=MIXES["mixed"],
                rate=60.0,
                duration=1.5,
                connections=2,
                seed=17,
                dataset=dataset,
                fetch_metrics=True,
            )
        )
    record_bench_extra("load", "chaos", report.to_payload())

    # The resilience contract under chaos: every request ends in a reply —
    # success or a *typed* error — even across severed connections.
    assert report.untyped_failures == 0
    assert report.ok + report.error_total == report.requests
    assert set(report.errors) <= set(ERROR_CODES)
    assert report.ok >= 1
