"""Bench: Figures 6 and 7 — per-benchmark breakdown of the Table 2 experiment.

Figure 6 plots the Spearman rank correlation per benchmark; Figure 7 the
top-1 prediction error.  The paper's qualitative findings checked here:
data transposition is more robust than GA-kNN on the outlier benchmarks it
highlights, and MLPᵀ keeps the worst-case top-1 error far below the >100%
failures of the similarity-based approaches.
"""

import numpy as np
import pytest

from repro.experiments import (
    GAKNN,
    MLPT,
    NNT,
    figure6_series,
    figure7_series,
    format_figure_series,
    run_table2,
)

from conftest import run_once

#: The memory-bound outlier benchmarks called out in Section 6.2.
OUTLIERS = ("leslie3d", "cactusADM", "libquantum")


@pytest.fixture(scope="module")
def table2_result(dataset, config):
    return run_table2(dataset, config)


def test_figure6_rank_correlation_per_benchmark(benchmark, table2_result):
    series = run_once(benchmark, figure6_series, None, None, table2_result)
    print()
    print(format_figure_series(series, "Figure 6 - Spearman rank correlation", higher_is_better=True))

    evaluated = set(series.benchmarks)
    outliers = [name for name in OUTLIERS if name in evaluated]
    assert outliers, "the fast preset must include the paper's outlier benchmarks"

    # Data transposition keeps a usable ranking even on the outlier
    # benchmarks (the paper's robustness claim).  Note: on the synthetic
    # dataset GA-kNN's *ranking* does not collapse on outliers the way it
    # does on real SPEC data (see EXPERIMENTS.md); its error magnitude does.
    transposition_on_outliers = np.mean(
        [max(series.value(NNT, name), series.value(MLPT, name)) for name in outliers]
    )
    assert transposition_on_outliers > 0.6

    # Averages stay in a sensible band for every method.
    for method in (NNT, MLPT, GAKNN):
        assert series.average(method) > 0.5
        assert series.minimum(method) >= -1.0


def test_figure7_top1_error_per_benchmark(benchmark, table2_result):
    series = run_once(benchmark, figure7_series, None, None, table2_result)
    print()
    print(format_figure_series(series, "Figure 7 - top-1 prediction error (%)", higher_is_better=False))

    for method in (NNT, MLPT, GAKNN):
        # top-1 deficiencies are non-negative percentages
        assert all(value >= 0.0 for value in series.series[method])

    # The best data-transposition flavour keeps the average purchasing loss
    # small in absolute terms and in the same band as the prior art.
    best_transposition = min(series.average(NNT), series.average(MLPT))
    assert best_transposition <= max(series.average(GAKNN) + 2.0, 5.0)
