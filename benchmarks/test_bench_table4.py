"""Bench: Table 4 — limited number of predictive machines.

The paper's finding: accuracy decreases only mildly when the predictive set
shrinks from 10 to 3 machines, which is what makes the method practical.
"""

from repro.experiments import GAKNN, MLPT, NNT, format_table4, run_table4

from conftest import run_once


def test_table4_limited_predictive_machines(benchmark, dataset, config):
    result = run_once(benchmark, run_table4, dataset, config)
    print()
    print(format_table4(result))

    assert set(result.summaries) == {10, 5, 3}
    for size in (10, 5, 3):
        assert set(result.summaries[size]) == {NNT, MLPT, GAKNN}
        # rankings stay far better than chance even with few machines
        for method in (NNT, MLPT):
            assert result.rank_correlation(size, method) > 0.5, (size, method)

    # Degradation from 10 to 3 predictive machines stays moderate for the
    # data-transposition methods (the paper reports ~0.01 for MLP^T and
    # ~0.06 for NN^T).
    for method in (NNT, MLPT):
        drop = result.rank_correlation(10, method) - result.rank_correlation(3, method)
        assert drop < 0.25, (method, drop)
