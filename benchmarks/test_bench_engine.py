"""Benches for the batched cross-validation engine.

Each vectorised path is timed next to the per-cell path it replaces, so the
pytest-benchmark trajectory records the speedup (and catches regressions):

* stacked-network MLP training vs one ``MLPRegressor.fit`` per network,
* rank-one leave-one-out NNᵀ vs one refit per application, and
* ``run_cross_validation`` end-to-end with the batched method line-up vs
  the historical per-cell adapters (transposition methods only — GA-kNN has
  no batched entry point and would time identically in both engines).

The MLP micro benches cap the epoch budget so default runs stay quick; the
end-to-end benches use the preset's configured budget (set
``REPRO_BENCH_PRESET=full`` for the paper-faithful measurement).
"""

import numpy as np

from repro.core import (
    BatchedLinearTransposition,
    BatchedMLPTransposition,
    LinearTranspositionPredictor,
    TranspositionMethod,
    run_cross_validation,
)
from repro.core.mlp_predictor import MLPTranspositionPredictor
from repro.data import family_cross_validation_splits

from conftest import run_once


def _mlp_training_stack(dataset, n_networks=8, n_samples=40, n_queries=12):
    """Stacked leave-one-out style training blocks carved from the matrix."""
    scores = dataset.matrix.scores
    n_benchmarks = scores.shape[0]
    features = np.stack(
        [scores[np.arange(n_benchmarks) != row, :n_samples].T for row in range(n_networks)]
    )
    targets = scores[:n_networks, :n_samples]
    queries = np.stack(
        [
            scores[np.arange(n_benchmarks) != row, n_samples : n_samples + n_queries].T
            for row in range(n_networks)
        ]
    )
    return features, targets, queries


def test_bench_batched_mlp_fit(benchmark, dataset, config):
    """Training a stack of leave-one-out networks in one tensor pass."""
    from repro.ml import BatchedMLPRegressor

    features, targets, queries = _mlp_training_stack(dataset)
    epochs = min(config.mlp_epochs, 60)

    def run():
        model = BatchedMLPRegressor(epochs=epochs, seed=0).fit(features, targets)
        return model.predict(queries)

    predictions = benchmark.pedantic(run, rounds=3, iterations=1)
    assert predictions.shape == (features.shape[0], queries.shape[1])


def test_bench_sequential_mlp_fit(benchmark, dataset, config):
    """The same network stack trained one ``MLPRegressor`` at a time."""
    from repro.ml import MLPRegressor

    features, targets, queries = _mlp_training_stack(dataset)
    epochs = min(config.mlp_epochs, 60)

    def run():
        return np.stack(
            [
                MLPRegressor(epochs=epochs, seed=0).fit(features[n], targets[n]).predict(queries[n])
                for n in range(features.shape[0])
            ]
        )

    predictions = run_once(benchmark, run)
    assert predictions.shape == (features.shape[0], queries.shape[1])


def test_bench_nnt_leave_one_out(benchmark, dataset):
    """All 29 leave-one-out NNᵀ fits of a split by sufficient-statistic downdating."""
    split = family_cross_validation_splits(dataset)[0]
    predictive = dataset.matrix.select_machines(split.predictive_ids).scores
    target = dataset.matrix.select_machines(split.target_ids).scores

    def run():
        return LinearTranspositionPredictor().predict_leave_one_out(predictive, target)

    predictions = benchmark(run)
    assert predictions.shape == (dataset.matrix.shape[0], split.n_target)


def test_bench_nnt_per_cell_refit(benchmark, dataset):
    """The same 29 leave-one-out NNᵀ fits, re-centred and refit per application."""
    split = family_cross_validation_splits(dataset)[0]
    predictive = dataset.matrix.select_machines(split.predictive_ids).scores
    target = dataset.matrix.select_machines(split.target_ids).scores
    n_benchmarks = predictive.shape[0]

    def run():
        rows = np.arange(n_benchmarks)
        return np.stack(
            [
                LinearTranspositionPredictor().predict(
                    predictive[rows != row], predictive[row], target[rows != row]
                )
                for row in range(n_benchmarks)
            ]
        )

    predictions = benchmark(run)
    assert predictions.shape == (n_benchmarks, split.n_target)


def _engine_methods(config, batched):
    """The two transposition methods under either engine, same hyper-parameters."""
    if batched:
        return {
            "NN^T": BatchedLinearTransposition(),
            "MLP^T": BatchedMLPTransposition(epochs=config.mlp_epochs, seed=config.seed),
        }
    return {
        "NN^T": TranspositionMethod(LinearTranspositionPredictor, "NN^T"),
        "MLP^T": TranspositionMethod(
            lambda: MLPTranspositionPredictor(epochs=config.mlp_epochs, seed=config.seed),
            "MLP^T",
        ),
    }


def test_bench_cross_validation_batched(benchmark, dataset, config):
    """End-to-end cross-validation over two family splits, batched engine."""
    splits = family_cross_validation_splits(dataset)[:2]
    applications = list(config.applications) if config.applications else None
    results = run_once(
        benchmark,
        run_cross_validation,
        dataset,
        splits,
        _engine_methods(config, batched=True),
        applications,
    )
    expected = len(splits) * (len(applications) if applications else dataset.matrix.shape[0])
    assert all(len(r.cells) == expected for r in results.values())


def test_bench_cross_validation_per_cell(benchmark, dataset, config):
    """The same end-to-end sweep through the historical per-cell loop."""
    splits = family_cross_validation_splits(dataset)[:2]
    applications = list(config.applications) if config.applications else None
    results = run_once(
        benchmark,
        run_cross_validation,
        dataset,
        splits,
        _engine_methods(config, batched=False),
        applications,
    )
    expected = len(splits) * (len(applications) if applications else dataset.matrix.shape[0])
    assert all(len(r.cells) == expected for r in results.values())
