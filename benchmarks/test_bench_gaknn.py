"""Benches for the batched GA-kNN path, with its speedup contract.

Times a full split's GA fitness work — every leave-one-out cell's GA —
under both engines:

* sequential (``GAKNNBaseline``): one identically-seeded GA per cell, each
  rebuilding its standardised working set from scratch; and
* batched (``BatchedGAKNN``): the per-cell working sets built once per
  split (the cells differ by a single benchmark row — structural dedup of
  the standardised feature statistics), all GAs evolved in lockstep with
  one stacked fitness tensor pass per generation and elite fitnesses
  reused across generations.

The contract test pins the acceptance criterion: on one core, the batched
full-split evaluation must be ``>= 3x`` faster than the sequential loop it
replaces, while returning bit-identical predictions.
"""

import time

import numpy as np

from repro.baselines.ga_knn import BatchedGAKNN, GAKNNBaseline
from repro.data import family_cross_validation_splits
from repro.ml.genetic import GAConfig

from conftest import run_once

#: Full-split speedup the batched GA-kNN path must deliver on one core
#: (acceptance criterion: shared-statistics dedup + lockstep GA >= 3x).
MIN_BATCHED_GAKNN_SPEEDUP = 3.0

#: The contract is measured at a fixed GA budget (the paper-faithful
#: ``full``-preset budget), independent of REPRO_BENCH_PRESET: the smoke
#: preset's tiny budget leaves the ratio with no noise margin over the 3x
#: floor, which would make the contract flaky on shared CI runners.
CONTRACT_GA = GAConfig(population_size=30, generations=15)


def _sequential_split(dataset, split, applications, ga_config, k=10, seed=0):
    method = GAKNNBaseline(k=k, ga_config=ga_config, seed=seed)
    scores = {}
    for application in applications:
        training = [b for b in dataset.benchmark_names if b != application]
        scores[application] = method.predict_application_scores(
            dataset, split, application, training
        )
    return scores


def _batched_split(dataset, split, applications, ga_config, k=10, seed=0):
    method = BatchedGAKNN(k=k, ga_config=ga_config, seed=seed)
    return method.predict_all_applications(dataset, split, applications)


def test_bench_gaknn_batched_split(benchmark, dataset, config):
    """All 29 leave-one-out GA-kNN cells of a split as one lockstep pass."""
    split = family_cross_validation_splits(dataset)[0]
    applications = dataset.benchmark_names
    scores = run_once(
        benchmark, _batched_split, dataset, split, applications,
        config.ga_config(), config.knn_neighbours, config.seed,
    )
    assert sorted(scores) == sorted(applications)


def test_bench_gaknn_sequential_split(benchmark, dataset, config):
    """The same 29 cells through the historical one-GA-per-cell loop."""
    split = family_cross_validation_splits(dataset)[0]
    applications = dataset.benchmark_names
    scores = run_once(
        benchmark, _sequential_split, dataset, split, applications,
        config.ga_config(), config.knn_neighbours, config.seed,
    )
    assert sorted(scores) == sorted(applications)


def _median_of(repeats, func, *args):
    """(median wall-clock over *repeats* runs, last result).

    One untimed warmup first (allocator/page-cache effects dominate the
    first call), then the median — not best-of: a single anomalously fast
    (cache-lucky) or slow (scheduler-preempted) run on a busy 1-core box
    must not decide the contract in either direction.
    """
    func(*args)
    timings = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func(*args)
        timings.append(time.perf_counter() - start)
    return float(np.median(timings)), result


def test_gaknn_batched_split_meets_speedup_contract(dataset):
    """Acceptance: batched full-split GA fitness >= 3x the sequential loop."""
    split = family_cross_validation_splits(dataset)[0]
    applications = dataset.benchmark_names

    sequential_elapsed, sequential = _median_of(
        3, _sequential_split, dataset, split, applications, CONTRACT_GA
    )
    batched_elapsed, batched = _median_of(
        3, _batched_split, dataset, split, applications, CONTRACT_GA
    )

    # Identical answers either way; only the cost differs.
    for application in applications:
        np.testing.assert_array_equal(batched[application], sequential[application])
    speedup = sequential_elapsed / batched_elapsed
    print(
        f"\nGA-kNN full split: sequential {sequential_elapsed * 1e3:.0f} ms, "
        f"batched {batched_elapsed * 1e3:.0f} ms, {speedup:.1f}x"
    )
    assert speedup >= MIN_BATCHED_GAKNN_SPEEDUP
