"""Bench: Table 2 — processor-family cross-validation.

Paper numbers (mean, worst case): rank correlation 0.85/0.93/0.86, top-1
error 11.9/1.21/7.30, mean error 4.04/1.59/6.25 for NNᵀ/MLPᵀ/GA-kNN.  The
reproduction asserts the *shape*: all methods achieve a strong average rank
correlation, data transposition's mean prediction error is competitive with
or better than GA-kNN, and the hard benchmarks are the outliers the paper
names.
"""

from repro.experiments import GAKNN, MLPT, NNT, format_table2, run_table2

from conftest import run_once


def test_table2_family_cross_validation(benchmark, dataset, config):
    result = run_once(benchmark, run_table2, dataset, config)
    print()
    print(format_table2(result))

    assert result.n_splits == 17
    summaries = result.summaries
    assert set(summaries) == {NNT, MLPT, GAKNN}

    # Every method ranks machines far better than chance on average.
    for method in (NNT, MLPT, GAKNN):
        assert summaries[method].rank_correlation.mean > 0.55

    # Data transposition (best of NN^T / MLP^T) matches or beats the prior
    # art on mean prediction error, the paper's central quantitative claim.
    best_transposition_error = min(
        summaries[NNT].mean_error.mean, summaries[MLPT].mean_error.mean
    )
    assert best_transposition_error <= summaries[GAKNN].mean_error.mean * 1.1

    # And on worst-case (outlier-benchmark) prediction error.
    best_transposition_worst = min(
        summaries[NNT].mean_error.worst, summaries[MLPT].mean_error.worst
    )
    assert best_transposition_worst <= summaries[GAKNN].mean_error.worst
