"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  They run the
experiments once per bench (``rounds=1``) because the quantity of interest
is the reproduced result, not micro-timing stability; pytest-benchmark still
records the wall-clock cost of regenerating each artefact.

The default configuration is the ``fast`` preset (all 17 family splits /
all machine splits, a 10-benchmark application subset including the paper's
outliers, reduced training budgets).  Set ``REPRO_BENCH_PRESET=full`` to run
the paper-faithful configuration (much slower).

Besides pytest-benchmark's own ``--benchmark-json`` artefact, a session
that ran benches persists per-module summaries at the repository root —
``BENCH_service.json``, ``BENCH_engine.json``, ... (one per
``test_bench_<module>.py`` that ran) — so the perf trajectory is tracked
across PRs in-tree (ROADMAP open item 3).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.data import build_default_dataset
from repro.experiments import ExperimentConfig


def _preset() -> ExperimentConfig:
    name = os.environ.get("REPRO_BENCH_PRESET", "fast").lower()
    if name == "full":
        return ExperimentConfig.full()
    if name == "smoke":
        return ExperimentConfig.smoke()
    return ExperimentConfig.fast()


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """Experiment configuration used by all benches."""
    return _preset()


@pytest.fixture(scope="session")
def dataset(config):
    """The 29-benchmark x 117-machine study dataset."""
    return build_default_dataset(noise_sigma=config.noise_sigma, seed=config.seed)


def run_once(benchmark, func, *args, **kwargs):
    """Run *func* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


#: Extra per-module payloads merged into BENCH_<module>.json at session end.
#: Keyed module -> name -> JSON-safe payload; see :func:`record_bench_extra`.
_BENCH_EXTRAS: dict[str, dict[str, object]] = {}


def record_bench_extra(module: str, name: str, payload) -> None:
    """Attach a JSON-safe *payload* to ``BENCH_<module>.json`` under ``extra``.

    Lets benches persist richer results than pytest-benchmark timing —
    e.g. the load bench stores full :class:`repro.loadgen.LoadReport`
    payloads (client percentiles, error counts, server metrics snapshot)
    alongside the wall-clock numbers.  A module with only extras (no
    timed benches) still gets its file written.
    """
    _BENCH_EXTRAS.setdefault(module, {})[name] = payload


def pytest_sessionfinish(session, exitstatus):
    """Persist per-module bench summaries as BENCH_<module>.json at the root.

    ``benchmarks/test_bench_service.py`` writes ``BENCH_service.json`` and
    so on, but only for modules whose benches actually ran (a filtered run
    never truncates another module's history).  Errored benches are
    skipped so a red run cannot poison the trajectory.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    by_module: dict[str, dict[str, dict[str, float]]] = {}
    for bench in getattr(bench_session, "benchmarks", []):
        if getattr(bench, "has_error", False):
            continue
        stem = Path(str(getattr(bench, "fullname", "")).split("::")[0]).stem
        if not stem.startswith("test_bench_"):
            continue
        stats = bench.stats
        by_module.setdefault(stem.removeprefix("test_bench_"), {})[bench.name] = {
            "mean_s": stats.mean,
            "min_s": stats.min,
            "max_s": stats.max,
            "stddev_s": stats.stddev,
            "rounds": stats.rounds,
        }
    modules = sorted(set(by_module) | set(_BENCH_EXTRAS))
    if not modules:
        return
    root = Path(__file__).resolve().parent.parent
    preset = os.environ.get("REPRO_BENCH_PRESET", "fast").lower()
    for module in modules:
        results = by_module.get(module, {})
        payload = {
            "preset": preset,
            "results": {name: results[name] for name in sorted(results)},
        }
        extras = _BENCH_EXTRAS.get(module)
        if extras:
            payload["extra"] = {name: extras[name] for name in sorted(extras)}
        (root / f"BENCH_{module}.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
