"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  They run the
experiments once per bench (``rounds=1``) because the quantity of interest
is the reproduced result, not micro-timing stability; pytest-benchmark still
records the wall-clock cost of regenerating each artefact.

The default configuration is the ``fast`` preset (all 17 family splits /
all machine splits, a 10-benchmark application subset including the paper's
outliers, reduced training budgets).  Set ``REPRO_BENCH_PRESET=full`` to run
the paper-faithful configuration (much slower).
"""

from __future__ import annotations

import os

import pytest

from repro.data import build_default_dataset
from repro.experiments import ExperimentConfig


def _preset() -> ExperimentConfig:
    name = os.environ.get("REPRO_BENCH_PRESET", "fast").lower()
    if name == "full":
        return ExperimentConfig.full()
    if name == "smoke":
        return ExperimentConfig.smoke()
    return ExperimentConfig.fast()


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """Experiment configuration used by all benches."""
    return _preset()


@pytest.fixture(scope="session")
def dataset(config):
    """The 29-benchmark x 117-machine study dataset."""
    return build_default_dataset(noise_sigma=config.noise_sigma, seed=config.seed)


def run_once(benchmark, func, *args, **kwargs):
    """Run *func* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
