"""Bench: Figure 8 — k-medoids vs. random predictive-machine selection.

The paper's finding: choosing predictive machines as k-medoid cluster
centres gives a better model fit than choosing them at random, by enough
that two clustered machines beat five random ones.
"""

import numpy as np

from repro.experiments import format_figure8, run_figure8

from conftest import run_once


def test_figure8_selection_strategies(benchmark, dataset, config):
    result = run_once(benchmark, run_figure8, dataset, config)
    print()
    print(format_figure8(result))

    assert len(result.sizes) == len(result.kmedoids_r2) == len(result.random_r2)
    assert result.sizes[0] == 2

    # k-medoid selection is at least as good as random selection on average
    # across the sweep (the paper reports a factor-two advantage in the
    # number of machines needed for a given fit).
    assert result.mean_advantage() > -0.02

    # The fit improves as machines are added, for both strategies.  Absolute
    # R² values are lower than the paper's because the synthetic 2008->2009
    # generation gap forces the MLP to extrapolate (see EXPERIMENTS.md); the
    # relative k-medoids-vs-random conclusion is what is asserted here.
    assert result.kmedoids_r2[-1] > result.kmedoids_r2[0]
    assert result.random_r2[-1] > result.random_r2[0]
    assert np.all(np.isfinite(result.kmedoids_r2))
    assert np.all(np.isfinite(result.random_r2))
