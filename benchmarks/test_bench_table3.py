"""Bench: Table 3 — predicting the 2009 machines from older predictive sets.

The paper's finding: predicting one year ahead (2008 predictive set) is the
easy case for data transposition, and usefulness degrades the further back
the predictive machines were released.
"""

from repro.experiments import GAKNN, MLPT, NNT, format_table3, run_table3

from conftest import run_once


def test_table3_future_machines(benchmark, dataset, config):
    result = run_once(benchmark, run_table3, dataset, config)
    print()
    print(format_table3(result))

    assert set(result.summaries) == {"2008", "2007", "older"}
    for era in ("2008", "2007", "older"):
        assert set(result.summaries[era]) == {NNT, MLPT, GAKNN}

    # Data transposition remains accurate when predicting one year ahead
    # (the paper's easiest setting) and stays usable for every era.  The
    # paper's monotone 2008 > 2007 > older trend is not asserted: on the
    # synthetic dataset the pre-2007 era contains the most ISA-diverse
    # predictive machines and ages better than on real SPEC data (see
    # EXPERIMENTS.md).
    for method in (NNT, MLPT):
        assert result.rank_correlation("2008", method) > 0.7, method
        for era in ("2008", "2007", "older"):
            assert result.rank_correlation(era, method) > 0.5, (method, era)

    # All methods remain usable one year out.
    for method in (NNT, MLPT, GAKNN):
        assert result.rank_correlation("2008", method) > 0.5
