"""Ablation benches for the design choices listed in DESIGN.md.

These are not paper tables; they quantify the impact of implementation
choices the paper leaves open: the NNᵀ fit-selection criterion and top-k
ensemble, the MLPᵀ hidden-layer size and training budget, the GA-kNN
neighbour count, and the predictive-machine selection strategy.
"""

import numpy as np
import pytest

from repro.core import (
    LinearTranspositionPredictor,
    MLPTranspositionPredictor,
    TranspositionMethod,
    run_cross_validation,
    select_farthest_point,
    select_k_medoids,
    select_random,
)
from repro.baselines import GAKNNBaseline
from repro.data import family_cross_validation_splits, temporal_split
from repro.ml import GAConfig

from conftest import run_once

#: Applications used by the ablations: two outliers plus two typical codes.
ABLATION_APPS = ["leslie3d", "libquantum", "gcc", "povray"]


@pytest.fixture(scope="module")
def xeon_split(dataset):
    return [s for s in family_cross_validation_splits(dataset) if "Intel Xeon" in s.name]


def _mean_rank(results):
    return {name: res.summary().rank_correlation.mean for name, res in results.items()}


def test_ablation_nnt_selection_criterion_and_topk(benchmark, dataset, xeon_split):
    """NNᵀ variants: RSS vs correlation fit selection, single vs top-3 machines."""
    methods = {
        "rss-top1": TranspositionMethod(lambda: LinearTranspositionPredictor("rss", 1), "rss-top1"),
        "corr-top1": TranspositionMethod(
            lambda: LinearTranspositionPredictor("correlation", 1), "corr-top1"
        ),
        "rss-top3": TranspositionMethod(lambda: LinearTranspositionPredictor("rss", 3), "rss-top3"),
    }
    results = run_once(
        benchmark, run_cross_validation, dataset, xeon_split, methods, ABLATION_APPS
    )
    ranks = _mean_rank(results)
    print()
    print("NN^T ablation (mean rank correlation):", {k: round(v, 3) for k, v in ranks.items()})
    assert all(value > 0.5 for value in ranks.values())


def test_ablation_mlp_hidden_units(benchmark, dataset, xeon_split, config):
    """MLPᵀ hidden-layer size: WEKA's automatic rule vs smaller/larger layers."""
    def method(units):
        return TranspositionMethod(
            lambda: MLPTranspositionPredictor(
                hidden_units=units, epochs=config.mlp_epochs, seed=config.seed
            ),
            f"hidden-{units}",
        )

    methods = {"hidden-4": method(4), "hidden-14": method(14), "hidden-28": method(28)}
    results = run_once(
        benchmark, run_cross_validation, dataset, xeon_split, methods, ABLATION_APPS
    )
    ranks = _mean_rank(results)
    print()
    print("MLP^T hidden-units ablation:", {k: round(v, 3) for k, v in ranks.items()})
    assert all(value > 0.4 for value in ranks.values())


def test_ablation_ga_knn_neighbour_count(benchmark, dataset, xeon_split):
    """GA-kNN sensitivity to k (the paper fixes k = 10)."""
    fast_ga = GAConfig(population_size=12, generations=6)
    methods = {
        f"k={k}": GAKNNBaseline(k=k, ga_config=fast_ga, seed=0) for k in (3, 10, 20)
    }
    results = run_once(
        benchmark, run_cross_validation, dataset, xeon_split, methods, ABLATION_APPS
    )
    ranks = _mean_rank(results)
    print()
    print("GA-kNN neighbour-count ablation:", {k: round(v, 3) for k, v in ranks.items()})
    assert all(value > 0.3 for value in ranks.values())


def test_ablation_selection_strategies(benchmark, dataset, config):
    """Predictive-machine selection: random vs k-medoids vs farthest-point."""
    base = temporal_split(dataset, target_year=2009, predictive_years=[2008])
    candidates = list(base.predictive_ids)

    def run_strategies():
        chosen = {
            "random": select_random(candidates, 5, seed=config.seed),
            "k-medoids": select_k_medoids(dataset, candidates, 5, seed=config.seed),
            "farthest": select_farthest_point(dataset, candidates, 5, seed=config.seed),
        }
        diversity = {
            name: len({dataset.machine(mid).family for mid in ids})
            for name, ids in chosen.items()
        }
        return chosen, diversity

    chosen, diversity = run_once(benchmark, run_strategies)
    print()
    print("selection diversity (distinct families out of 5 picks):", diversity)
    for ids in chosen.values():
        assert len(ids) == 5
    # the diversity-seeking strategies never select fewer families than random
    assert diversity["k-medoids"] >= 2
    assert diversity["farthest"] >= 2
