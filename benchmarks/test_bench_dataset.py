"""Bench: dataset generation and the Table 1 catalogue.

Regenerates the study dataset (the substitute for the paper's spec.org
snapshot) and checks the structural properties the evaluation depends on.
"""

import numpy as np

from repro.data import build_machine_catalogue, generate_performance_matrix

from conftest import run_once


def test_table1_catalogue(benchmark):
    """Table 1: 117 machines, 39 CPU nicknames, 17 processor families."""
    catalogue = run_once(benchmark, build_machine_catalogue)
    assert len(catalogue) == 117
    assert len({(m.family, m.nickname) for m in catalogue}) == 39
    assert len({m.family for m in catalogue}) == 17


def test_dataset_generation(benchmark):
    """Full 29 x 117 score-matrix generation through the interval model."""
    matrix = run_once(benchmark, generate_performance_matrix)
    assert matrix.shape == (29, 117)
    assert np.all(matrix.scores > 0)
    # memory-bound outliers score above the suite average, as on real SPEC data
    suite_mean = matrix.scores.mean()
    assert matrix.benchmark_scores("lbm").mean() > suite_mean
    assert matrix.benchmark_scores("hmmer").mean() < suite_mean
