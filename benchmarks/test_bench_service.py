"""Benches for the prediction service layer.

Times the serving path next to the acceptance contract it must honour:

* **cold single queries** — 29 applications asked one at a time against an
  empty cache, each paying for its own split training pass;
* **warm bulk query** — the same 29 applications as one
  :meth:`~repro.service.api.PredictionService.rank_many` batch against
  trained split state (dictionary lookups); the speedup assertion pins the
  ``>= 5x`` bulk-over-cold contract from the serving docs, and in practice
  the ratio is well above it;
* **micro-batch throughput** — a smoke-level queries/second figure for the
  asyncio coalescing front end, recorded so the pytest-benchmark
  trajectory keeps serving throughput visible PR to PR.

All benches use NNᵀ so the numbers track the serving machinery rather than
the configured MLP epoch budget.
"""

import asyncio
import time

from repro.core import BatchedLinearTransposition
from repro.service import MicroBatcher, PredictionService, RankingQuery

from conftest import run_once

#: Bulk speedup the serving layer must deliver (acceptance criterion).
MIN_WARM_BULK_SPEEDUP = 5.0


def _service(dataset):
    return PredictionService(dataset, {"NN^T": BatchedLinearTransposition()})


def _queries(dataset):
    predictive = tuple(dataset.machine_ids[:8])
    return [RankingQuery(app, predictive) for app in dataset.benchmark_names]


def _cold_singles(service, queries):
    replies = []
    for query in queries:
        service.cache.clear()
        replies.append(service.rank(query))
    return replies


def test_bench_service_cold_single_queries(benchmark, dataset):
    """29 applications, one query at a time, every query against a cold cache."""
    service = _service(dataset)
    replies = run_once(benchmark, _cold_singles, service, _queries(dataset))
    assert len(replies) == len(dataset.benchmark_names)
    assert not any(reply.cache_hit for reply in replies)


def test_bench_service_warm_bulk_query(benchmark, dataset):
    """The same 29 applications as one bulk call against trained split state."""
    service = _service(dataset)
    queries = _queries(dataset)
    service.rank(queries[0])  # warm the split

    replies = benchmark(service.rank_many, queries)
    assert len(replies) == len(queries)
    assert all(reply.cache_hit for reply in replies)


def test_service_warm_bulk_meets_speedup_contract(dataset):
    """Acceptance: warm bulk of 29 apps is >= 5x faster than 29 cold singles."""
    service = _service(dataset)
    queries = _queries(dataset)

    start = time.perf_counter()
    cold_replies = _cold_singles(service, queries)
    cold_elapsed = time.perf_counter() - start

    service.rank(queries[0])  # ensure trained state is resident
    start = time.perf_counter()
    warm_replies = service.rank_many(queries)
    warm_elapsed = time.perf_counter() - start

    # Identical answers either way; only the cost differs.
    for cold, warm in zip(cold_replies, warm_replies):
        assert cold.machine_ids == warm.machine_ids
        assert cold.scores == warm.scores
    speedup = cold_elapsed / warm_elapsed
    print(
        f"\nservice speedup: cold singles {cold_elapsed * 1e3:.1f} ms, "
        f"warm bulk {warm_elapsed * 1e3:.1f} ms, {speedup:.1f}x"
    )
    assert speedup >= MIN_WARM_BULK_SPEEDUP


def test_bench_service_microbatch_throughput(benchmark, dataset):
    """Concurrent submissions through the asyncio coalescing front end."""
    service = _service(dataset)
    queries = _queries(dataset)
    service.rank(queries[0])  # warm the split

    async def drive():
        batcher = MicroBatcher(service, window=0.001, max_batch=len(queries))
        replies = await asyncio.gather(*(batcher.submit(query) for query in queries))
        return batcher, replies

    batcher, replies = run_once(benchmark, lambda: asyncio.run(drive()))
    assert len(replies) == len(queries)
    assert batcher.batches_dispatched < batcher.requests_served
