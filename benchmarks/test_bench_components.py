"""Micro-benchmarks of the individual components.

Unlike the table/figure benches these measure steady-state throughput of
the building blocks (simulator scoring, the two predictors, the GA), so the
pytest-benchmark statistics are meaningful here and default rounds are used.
"""

import numpy as np

from repro.core import LinearTranspositionPredictor, MLPTranspositionPredictor
from repro.data import benchmark_by_name, build_machine_catalogue
from repro.ml import GAConfig, GeneticAlgorithm, KMedoids
from repro.simulator import MachineSimulator


def test_bench_simulator_score_suite(benchmark, dataset):
    """Scoring the whole 29-benchmark suite on one machine."""
    machine = build_machine_catalogue()[0]
    simulator = MachineSimulator(machine.config, noise_sigma=0.03)
    workloads = list(dataset.benchmarks)
    scores = benchmark(simulator.score_suite, workloads)
    assert scores.shape == (29,)


def test_bench_linear_predictor(benchmark, dataset):
    """One NNᵀ prediction over ~100 predictive and 39 target machines."""
    matrix = dataset.matrix
    predictive = matrix.scores[:, :78]
    target = matrix.scores[:, 78:]
    app = matrix.benchmark_scores("gcc")[:78]
    train_rows = np.array([i for i, name in enumerate(matrix.benchmarks) if name != "gcc"])

    def run():
        return LinearTranspositionPredictor().predict(
            predictive[train_rows], app, target[train_rows]
        )

    predictions = benchmark(run)
    assert predictions.shape == (matrix.shape[1] - 78,)


def test_bench_mlp_predictor(benchmark, dataset):
    """One MLPᵀ training + prediction with a reduced epoch budget."""
    matrix = dataset.matrix
    predictive = matrix.scores[:, :40]
    target = matrix.scores[:, 40:60]
    app = matrix.benchmark_scores("gcc")[:40]
    train_rows = np.array([i for i, name in enumerate(matrix.benchmarks) if name != "gcc"])

    def run():
        predictor = MLPTranspositionPredictor(epochs=40, seed=0)
        return predictor.predict(predictive[train_rows], app, target[train_rows])

    predictions = benchmark.pedantic(run, rounds=3, iterations=1)
    assert predictions.shape == (20,)


def test_bench_genetic_algorithm(benchmark):
    """A GA run of the size the GA-kNN baseline uses per experiment cell."""
    def fitness(genome):
        return float(((genome - 0.5) ** 2).sum())

    def run():
        return GeneticAlgorithm(
            genome_length=10,
            fitness=fitness,
            config=GAConfig(population_size=16, generations=8),
            seed=0,
        ).run()

    best = benchmark.pedantic(run, rounds=3, iterations=1)
    assert best.shape == (10,)


def test_bench_kmedoids_selection(benchmark, dataset):
    """k-medoids clustering of all 117 machines into 5 clusters."""
    features = dataset.matrix.scores.T

    def run():
        return KMedoids(n_clusters=5, seed=0).fit(features)

    model = benchmark(run)
    assert model.medoid_indices_.shape == (5,)


def test_bench_spec_score_single(benchmark):
    """Single (machine, benchmark) score evaluation."""
    machine = build_machine_catalogue()[50]
    workload = benchmark_by_name("mcf")
    simulator = MachineSimulator(machine.config, noise_sigma=0.0)
    score = benchmark(simulator.score, workload)
    assert score > 0
